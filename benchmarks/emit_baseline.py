#!/usr/bin/env python
"""Perf-baseline pipeline: host-normalized engine throughput per revision.

The campaign summaries are deliberately wall-clock-free (determinism
contract); *this* script is where wall clocks live.  It runs a pinned
set of quick-scale experiments and records, per experiment:

* ``events``      — simulated events popped, counted by a traced run
  (deterministic: identical across hosts and repeats, because tracing
  schedules no events of its own);
* ``wall_s``      — the best-of-N wall time of *untraced* runs (the
  configuration users actually pay for);
* ``events_per_s`` — raw engine throughput on this host;
* ``normalized``  — events_per_s divided by a host calibration score
  (a fixed pure-Python workload timed on the same machine), so
  baselines recorded on different hosts are comparable.

Output is ``BENCH_<rev>.json``.  ``--check BASELINE`` re-measures and
fails (exit 1) when any experiment's normalized throughput fell more
than ``--tolerance`` below the committed baseline; ``--slowdown-canary
F`` divides the measured throughput by F first, proving the gate trips.

Usage::

    python benchmarks/emit_baseline.py --out benchmarks/baselines
    python benchmarks/emit_baseline.py --check benchmarks/baselines
    python benchmarks/emit_baseline.py --check benchmarks/baselines \
        --slowdown-canary 4.0     # must exit 1
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SCHEMA_VERSION = 1

#: The pinned measurement set: quick-scale experiments that finish in a
#: few seconds yet exercise distinct engine workloads (STREAM-style
#: memory traffic, the multi-link fabric, UTS work stealing + faults).
PINNED_EXPERIMENTS = ("t3_1", "f4_2", "r1")

#: Untraced wall-time repeats; best-of is robust to scheduler noise.
DEFAULT_REPEATS = 3


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def calibrate(target_s: float = 0.2) -> float:
    """Host speed score: iterations/second of a fixed pure-Python kernel.

    The kernel (dict churn + integer arithmetic) approximates what the
    simulator's hot loop does; the score divides out host speed so a
    baseline from a fast workstation still gates a slow CI runner.
    """
    def kernel(n: int) -> int:
        table: Dict[int, int] = {}
        acc = 0
        for i in range(n):
            table[i & 1023] = acc
            acc += table.get((i * 7) & 1023, 0) & 0xFFFF
        return acc

    n = 10_000
    while True:
        t0 = time.perf_counter()
        kernel(n)
        elapsed = time.perf_counter() - t0
        if elapsed >= target_s:
            return n / elapsed
        n *= 2


def _count_events(experiment_id: str):
    """Deterministic event count + top-sites digest, via a traced+profiled run.

    Returns ``(events, profile_top)`` where ``profile_top`` ranks the
    top 5 sites by costed cycles (see :mod:`repro.obs.profile`) — like
    the event count it is a pure function of the simulation, so the
    digest is comparable across hosts and pins *where* a revision's
    cycles went, not just how many there were.
    """
    from repro.harness.campaign import Campaign
    from repro.harness.runner import get_experiment
    from repro.obs import names
    from repro.obs.profile import cost_document, merge_snapshots

    outcome = Campaign(get_experiment(experiment_id),
                       scale="quick").run(trace=True, profile=True)
    events = sum(t.engine_metrics.get(names.ENGINE_EVENTS_POPPED, 0)
                 for t in outcome.batch.tracers)
    _host, tallies, runs = merge_snapshots(outcome.batch.profiles)
    doc = cost_document(experiment_id, tallies, runs)
    return events, doc["top"][:5]


def _measure_wall(experiment_id: str, repeats: int) -> float:
    """Best-of-N untraced wall time (the full-speed configuration)."""
    from repro.harness.campaign import Campaign
    from repro.harness.runner import get_experiment

    experiment = get_experiment(experiment_id)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        Campaign(experiment, scale="quick").run()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(repeats: int = DEFAULT_REPEATS) -> Dict[str, object]:
    calibration = calibrate()
    experiments: Dict[str, Dict[str, object]] = {}
    for experiment_id in PINNED_EXPERIMENTS:
        events, profile_top = _count_events(experiment_id)
        wall = _measure_wall(experiment_id, repeats)
        events_per_s = events / wall if wall > 0 else 0.0
        experiments[experiment_id] = {
            "events": events,
            "wall_s": round(wall, 6),
            "events_per_s": round(events_per_s, 3),
            "normalized": round(events_per_s / calibration, 9),
            "profile_top": profile_top,
        }
        print(f"{experiment_id}: {events} events, best wall "
              f"{wall:.3f}s, {events_per_s:,.0f} ev/s", file=sys.stderr)
    return {
        "schema": SCHEMA_VERSION,
        "rev": git_revision(),
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "calibration": {"ops_per_s": round(calibration, 3)},
        "experiments": experiments,
    }


def find_baseline(path: Path) -> Path:
    """A baseline file, or the newest ``BENCH_*.json`` in a directory."""
    if path.is_file():
        return path
    candidates = sorted(path.glob("BENCH_*.json")) if path.is_dir() else []
    if not candidates:
        raise FileNotFoundError(
            f"no BENCH_*.json baseline under {path} (run emit_baseline.py "
            "--out first)"
        )
    return max(candidates, key=lambda p: p.stat().st_mtime)


def check(baseline_path: Path, tolerance: float, repeats: int,
          slowdown_canary: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != SCHEMA_VERSION:
        print(f"error: baseline schema {baseline.get('schema')!r} != "
              f"{SCHEMA_VERSION}", file=sys.stderr)
        return 2
    current = measure(repeats=repeats)
    failures: List[str] = []
    print(f"gate: current rev {current['rev']} vs baseline "
          f"{baseline.get('rev', '?')} ({baseline_path})")
    for experiment_id, recorded in baseline["experiments"].items():
        measured = current["experiments"].get(experiment_id)
        if measured is None:
            failures.append(f"{experiment_id}: missing from current run")
            continue
        now = measured["normalized"] / slowdown_canary
        then = recorded["normalized"]
        ratio = now / then if then > 0 else 1.0
        verdict = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(f"  {experiment_id}: normalized {then:.6f} -> {now:.6f} "
              f"(x{ratio:.2f}) [{verdict}]")
        if verdict != "ok":
            failures.append(
                f"{experiment_id}: normalized throughput fell to "
                f"{ratio:.2f}x of baseline (tolerance {1.0 - tolerance:.2f}x)"
            )
        if measured["events"] != recorded.get("events"):
            print(f"  note: {experiment_id} event count changed "
                  f"{recorded.get('events')} -> {measured['events']} "
                  "(simulator behavior changed; re-emit the baseline)")
    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Emit or gate the host-normalized perf baseline.")
    parser.add_argument("--out", metavar="DIR",
                        help="write BENCH_<rev>.json into DIR")
    parser.add_argument("--check", metavar="PATH",
                        help="re-measure and gate against this baseline "
                             "file (or the newest BENCH_*.json in a dir)")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional drop in normalized "
                             "throughput before failing (default 0.5)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help=f"untraced wall-time repeats (default "
                             f"{DEFAULT_REPEATS})")
    parser.add_argument("--slowdown-canary", type=float, default=1.0,
                        metavar="F",
                        help="divide measured throughput by F before "
                             "gating — F big enough must fail the gate "
                             "(self-test of the gate itself)")
    args = parser.parse_args(argv)
    if not args.out and not args.check:
        parser.error("nothing to do: pass --out and/or --check")
    if args.tolerance <= 0 or args.tolerance >= 1:
        parser.error("--tolerance must be in (0, 1)")
    if args.check:
        try:
            baseline_path = find_baseline(Path(args.check))
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return check(baseline_path, args.tolerance, args.repeats,
                     args.slowdown_canary)
    record = measure(repeats=args.repeats)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{record['rev']}.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"baseline written to {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
