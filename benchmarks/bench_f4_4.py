"""Benchmark: regenerate Fig 4.4 (FT runtime breakdown) (experiment f4_4) and check its shape."""


def test_f4_4(run_paper_experiment):
    run_paper_experiment("f4_4")
