"""Benchmark: regenerate Fig 4.5 (FT communication time) (experiment f4_5) and check its shape."""


def test_f4_5(run_paper_experiment):
    run_paper_experiment("f4_5")
