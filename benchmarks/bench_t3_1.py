"""Benchmark: regenerate Table 3.1 (twisted STREAM triad) (experiment t3_1) and check its shape."""


def test_t3_1(run_paper_experiment):
    run_paper_experiment("t3_1")
