"""Ablation D4 — processor-sharing vs FIFO link service.

Under FIFO service, concurrent equal flows complete in sequence rather
than degrading gracefully together; the multi-link flood's per-flow
completion spread shows the difference directly.
"""

import dataclasses

from repro.machine import MachineSpec, MachineTopology, NodeSpec
from repro.network import Fabric, NetworkParams
from repro.sim import Simulator

GB = 1e9


def _completion_spread(fifo: bool, flows: int = 4, nbytes: float = 64e6):
    sim = Simulator()
    topo = MachineTopology(MachineSpec(name="t", nodes=2, node=NodeSpec(2, 4, 1)))
    params = NetworkParams(
        gap=0.0, connection_bw=4 * GB, nic_bw=2 * GB, qp_penalty=0.0,
        fifo_links=fifo,
    )
    fab = Fabric(sim, topo, params)
    ends = []
    for i in range(flows):
        fab.register_endpoint(i, 0)
        fab.register_endpoint(100 + i, 1)

    def sender(sim, fab, i):
        yield from fab.transmit(i, 100 + i, nbytes)
        ends.append(sim.now)

    for i in range(flows):
        sim.spawn(sender(sim, fab, i))
    sim.run()
    sim.raise_failures()
    return min(ends), max(ends)


def test_fabric_service_ablation(benchmark):
    def run():
        ps = _completion_spread(fifo=False)
        ff = _completion_spread(fifo=True)
        return {"ps": ps, "fifo": ff}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["first_last_completion"] = out
    ps_first, ps_last = out["ps"]
    ff_first, ff_last = out["fifo"]
    # processor sharing: all equal flows finish together
    assert abs(ps_last - ps_first) < 0.01 * ps_last
    # FIFO: the first flow finishes 4x earlier than the last
    assert ff_first < 0.35 * ff_last
    # both are work-conserving: same final completion time
    assert abs(ps_last - ff_last) < 0.01 * ps_last
