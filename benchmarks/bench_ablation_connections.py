"""Ablation D2 — per-connection NIC contention (QP thrashing).

With ``qp_penalty`` zeroed, the class-B all-to-all no longer decays when
thread density rises past 2 per node — removing the very effect that
motivates the hierarchical sub-thread approach in Figs 4.4/4.5.
"""

import dataclasses

from repro.apps.ft import run_ft
from repro.machine.presets import lehman
from repro.network.conduits import conduit
from repro.upc import UpcProgram

NODES = 4


def _decay(qp_penalty: float) -> float:
    """comm(8/node) / comm(2/node) for split-phase class B."""
    import repro.network.conduits as conduits

    params = dataclasses.replace(conduit("ib-qdr"), qp_penalty=qp_penalty)
    original = conduits.CONDUITS["ib-qdr"]
    conduits.CONDUITS["ib-qdr"] = params
    try:
        c2 = run_ft("B", threads=2 * NODES, threads_per_node=2,
                    preset=lehman(nodes=NODES), backing="virtual",
                    iterations=4)["comm_s"]
        c8 = run_ft("B", threads=8 * NODES, threads_per_node=8,
                    preset=lehman(nodes=NODES), backing="virtual",
                    iterations=4)["comm_s"]
    finally:
        conduits.CONDUITS["ib-qdr"] = original
    return c8 / c2


def test_connection_contention_ablation(benchmark):
    def run():
        return {"with_penalty": _decay(0.05), "ablated": _decay(0.0)}

    decay = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["comm_8pn_over_2pn"] = decay
    assert decay["with_penalty"] > 1.15   # density hurts
    assert decay["ablated"] < decay["with_penalty"]
    assert decay["ablated"] < 1.10        # without QP thrash, no decay
