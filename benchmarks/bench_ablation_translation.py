"""Ablation D1 — shared-pointer translation cost.

Zeroing the per-access translation charge must collapse Table 3.1's
baseline/cast gap: the whole effect the castability extension exists for
is runtime software overhead, not data movement.
"""

import dataclasses

from repro.apps.stream import run_twisted
from repro.machine.presets import lehman

N = 200_000


def _gap(translation_time: float) -> float:
    preset = lehman(nodes=1)
    memory = dataclasses.replace(
        preset.memory, pointer_translation_time=translation_time
    )
    preset = dataclasses.replace(preset, memory=memory)
    base = run_twisted("upc-baseline", preset=preset, elements_per_thread=N)
    cast = run_twisted("upc-cast", preset=preset, elements_per_thread=N)
    return cast["throughput_gbs"] / base["throughput_gbs"]


def test_translation_ablation(benchmark):
    def run():
        return {"with_cost": _gap(17e-9), "ablated": _gap(0.0)}

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cast_over_baseline"] = gaps
    # with the calibrated cost the gap is ~7x; ablated it vanishes
    assert gaps["with_cost"] > 4.0
    assert gaps["ablated"] < 1.1
