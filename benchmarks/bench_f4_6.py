"""Benchmark: regenerate Fig 4.6 (FT overall performance) (experiment f4_6) and check its shape."""


def test_f4_6(run_paper_experiment):
    run_paper_experiment("f4_6")
