"""Ablation D5 — the MPI eager/rendezvous threshold.

A rendezvous send cannot start until the receiver arrives; pushing the
eager threshold up lets late receivers stop hurting senders, moving the
MPI-vs-UPC comparison of Fig 4.5.  This bench measures a send to a
deliberately late receiver on both sides of the threshold.
"""

from repro.machine.presets import generic_smp
from repro.mpi import MpiParams, MpiProgram

LATE = 5e-3
SIZE = 128 << 10  # between the two thresholds below


def _sender_time(eager_threshold: int) -> float:
    prog = MpiProgram(
        generic_smp(nodes=2), ranks=2, ranks_per_node=1,
        params=MpiParams(eager_threshold=eager_threshold),
    )

    def main(r):
        if r.rank == 0:
            t0 = r.wtime()
            yield from r.send(1, SIZE)
            return r.wtime() - t0
        yield from r.compute(LATE)
        yield from r.recv(0)
        return None

    return prog.run(main).returns[0]


def test_rendezvous_ablation(benchmark):
    def run():
        return {
            "rendezvous": _sender_time(eager_threshold=64 << 10),
            "eager": _sender_time(eager_threshold=256 << 10),
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sender_blocked_s"] = t
    assert t["rendezvous"] >= LATE          # blocked on the late receiver
    assert t["eager"] < LATE / 2            # buffered send returns early
