"""Benchmark-suite plumbing.

Each ``bench_*`` file regenerates one paper table/figure at ``quick``
scale through pytest-benchmark (single round — the experiments are
deterministic simulations, so repetition adds nothing), asserts the
paper's qualitative shape held, and attaches the regenerated numbers as
benchmark extra info.
"""

import pytest


@pytest.fixture
def run_paper_experiment(benchmark):
    """Run a harness experiment under the benchmark timer; fail on shape."""

    def _run(experiment_id: str, scale: str = "quick"):
        from repro.harness import run_experiment

        result = benchmark.pedantic(
            run_experiment, args=(experiment_id,), kwargs={"scale": scale},
            rounds=1, iterations=1,
        )
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["title"] = result.title
        if result.rows:
            benchmark.extra_info["rows"] = result.rows[:20]
        if result.series:
            benchmark.extra_info["series"] = {
                k: v for k, v in list(result.series.items())[:10]
            }
        assert result.shape_ok, "\n".join(result.shape_failures)
        return result

    return _run
