"""Extension benchmark: RandomAccess (GUPS) under thread-group aggregation.

Not a thesis artifact — §4.4 names Random Access as a further thread-group
use case; this bench records the three-variant comparison and checks the
bucketing win.
"""

from repro.apps.randomaccess import GupsConfig, run_gups
from repro.machine.presets import lehman

CFG = dict(table_words=1 << 13, updates_per_thread=1024)


def test_gups_variants(benchmark):
    def run():
        out = {}
        for variant in ("fine-grained", "bucketed", "groups"):
            out[variant] = run_gups(
                config=GupsConfig(variant=variant, **CFG),
                threads=8, threads_per_node=4, preset=lehman(nodes=2),
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["gups"] = {k: v["gups"] for k, v in out.items()}
    assert all(v["verified"] for v in out.values())
    assert out["bucketed"]["gups"] > 2 * out["fine-grained"]["gups"]
    assert out["groups"]["gups"] >= out["bucketed"]["gups"]
    assert out["groups"]["bucket_flushes"] < out["bucketed"]["bucket_flushes"]
