"""Benchmark: regenerate Fig 3.4 (FT all-to-all runtime vs manual optimizations) (experiment f3_4) and check its shape."""


def test_f3_4(run_paper_experiment):
    run_paper_experiment("f3_4")
