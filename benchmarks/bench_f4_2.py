"""Benchmark: regenerate Fig 4.2 (multi-link microbenchmark) (experiment f4_2) and check its shape."""


def test_f4_2(run_paper_experiment):
    run_paper_experiment("f4_2")
