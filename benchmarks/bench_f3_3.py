"""Benchmark: regenerate Fig 3.3 (UTS scalability) (experiment f3_3) and check its shape."""


def test_f3_3(run_paper_experiment):
    run_paper_experiment("f3_3")
