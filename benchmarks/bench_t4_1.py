"""Benchmark: regenerate Table 4.1 (hybrid STREAM placement) (experiment t4_1) and check its shape."""


def test_t4_1(run_paper_experiment):
    run_paper_experiment("t4_1")
