"""Benchmark: regenerate Table 2.1 (platform characteristics) (experiment t2_1) and check its shape."""


def test_t2_1(run_paper_experiment):
    run_paper_experiment("t2_1")
