"""Benchmark: regenerate Table 3.2 (UTS profiling) (experiment t3_2) and check its shape."""


def test_t3_2(run_paper_experiment):
    run_paper_experiment("t3_2")
