"""Setup shim.

The offline environment has setuptools but not `wheel`, so PEP-660
editable wheels cannot be built.  This shim lets `python setup.py develop`
(and pip's legacy editable path) install the package from pyproject.toml
metadata.
"""

from setuptools import setup

setup()
