"""Splittable deterministic random number generation.

The Unbalanced Tree Search benchmark defines tree shape through a
*splittable* RNG: every tree node owns an RNG state, and child ``i``'s
state is a pure function of the parent state and ``i``.  The reference UTS
implementation uses SHA-1 for this; :class:`SplittableRNG` does the same
(via :mod:`hashlib`), so trees are reproducible across machines and match
the statistical properties the benchmark relies on.

A faster non-cryptographic mode (``algorithm="mix"``, splitmix64-based) is
provided for large benchmark runs where hashing dominates wall time; the
tree *shape distribution* is statistically equivalent, though individual
trees differ from the SHA-1 ones.
"""

from __future__ import annotations

import hashlib
import struct

__all__ = ["SplittableRNG", "splitmix64"]

_MASK64 = (1 << 64) - 1


def splitmix64(state: int) -> tuple[int, int]:
    """One step of the splitmix64 generator.

    Returns ``(new_state, output)``.  Both are 64-bit unsigned ints.
    """
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return state, z


class SplittableRNG:
    """A splittable RNG with SHA-1 (reference) and splitmix64 (fast) modes.

    >>> root = SplittableRNG(seed=42)
    >>> a, b = root.child(0), root.child(1)
    >>> a.random() != b.random()
    True
    >>> SplittableRNG(seed=42).child(0).random() == a.random()  # deterministic
    False

    (The last comparison is False only because ``random()`` advances state;
    fresh children always agree — see the test suite.)
    """

    __slots__ = ("_state", "algorithm")

    def __init__(self, seed: int = 0, algorithm: str = "sha1", _state=None):
        if algorithm not in ("sha1", "mix"):
            raise ValueError(f"unknown RNG algorithm {algorithm!r}")
        self.algorithm = algorithm
        if _state is not None:
            self._state = _state
        elif algorithm == "sha1":
            self._state = hashlib.sha1(
                b"uts-root" + struct.pack("<q", seed)
            ).digest()
        else:
            # Scramble the seed once so small seeds diverge immediately.
            _, mixed = splitmix64(seed & _MASK64)
            self._state = mixed

    def child(self, index: int) -> "SplittableRNG":
        """Derive an independent child RNG (pure function of state+index)."""
        if self.algorithm == "sha1":
            digest = hashlib.sha1(self._state + struct.pack("<q", index)).digest()
            return SplittableRNG(algorithm="sha1", _state=digest)
        state = (self._state ^ ((index + 1) * 0x9E3779B97F4A7C15)) & _MASK64
        _, mixed = splitmix64(state)
        return SplittableRNG(algorithm="mix", _state=mixed)

    def _next_u64(self) -> int:
        if self.algorithm == "sha1":
            self._state = hashlib.sha1(self._state).digest()
            return struct.unpack("<Q", self._state[:8])[0]
        self._state, out = splitmix64(self._state)
        return out

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self._next_u64() >> 11) * (1.0 / (1 << 53))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive (modulo bias is
        negligible for the small ranges used here)."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self._next_u64() % span

    def choice(self, seq):
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randint(0, i)
            seq[i], seq[j] = seq[j], seq[i]

    def fingerprint(self) -> int:
        """A stable 64-bit fingerprint of the current state (for tests)."""
        if self.algorithm == "sha1":
            return struct.unpack("<Q", self._state[:8])[0]
        return self._state
