"""Deterministic discrete-event simulation kernel.

Everything in :mod:`repro` runs on this kernel: UPC threads, sub-threads,
network transfers and memory traffic are all simulated processes that
advance a single virtual clock.  The kernel is single-threaded and orders
events by ``(time, priority, sequence)``, so a seeded run is bit-for-bit
reproducible.

The public surface mirrors the classic process-based DES idiom:

>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.delay(1.5)
...     return "done at %.1f" % sim.now
>>> proc = sim.spawn(hello(sim))
>>> sim.run()
1.5
>>> proc.result
'done at 1.5'
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Awaitable,
    Delay,
    Event,
    Process,
    ProcessFailure,
    SimulationError,
    Simulator,
    StalledProcessError,
)
from repro.sim.resources import Resource, SharedBandwidth, Store
from repro.sim.sync import Condition, SimBarrier
from repro.sim.rng import SplittableRNG, splitmix64
from repro.sim.trace import PhaseTimer, StatsCollector

__all__ = [
    "AllOf",
    "AnyOf",
    "Awaitable",
    "Condition",
    "Delay",
    "Event",
    "PhaseTimer",
    "Process",
    "ProcessFailure",
    "Resource",
    "SharedBandwidth",
    "SimBarrier",
    "SimulationError",
    "Simulator",
    "SplittableRNG",
    "StalledProcessError",
    "StatsCollector",
    "Store",
    "splitmix64",
]
