"""Process synchronization: broadcast conditions and counted barriers."""

from __future__ import annotations

from typing import Any

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Condition", "SimBarrier"]


class Condition:
    """A broadcast condition: many waiters, woken all at once.

    Unlike :class:`~repro.sim.engine.Event` a condition can be notified
    repeatedly; each ``wait()`` call returns a fresh one-shot event tied to
    the *next* notification.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []
        self.notify_count = 0

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._waiters.append(ev)
        return ev

    def notify_all(self, value: Any = None) -> int:
        """Wake every current waiter; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        self.notify_count += 1
        woken = 0
        for ev in waiters:
            if not ev.cancelled:
                ev.succeed(value)
                woken += 1
        return woken


class SimBarrier:
    """A reusable barrier for exactly ``parties`` simulated processes.

    The implementation is *sense-reversing*: each generation hands out a
    fresh event, so a fast process re-entering the barrier cannot consume
    the previous generation's release.  Matches the semantics UPC requires
    of ``upc_barrier``.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._arrived_parties: set = set()
        self._generation = 0
        self._release = Event(sim)
        self._arrival_times: list[float] = []
        # Statistics: cumulative time processes spent blocked in the barrier.
        self.total_wait_time = 0.0
        self.crossings = 0
        #: Party whose arrival completed the most recent generation (None
        #: when a :meth:`drop_party` released it, or before any release).
        #: Observability reads this to attribute barrier waits to the
        #: straggler that ended them.
        self.last_arriver: Any = None

    @property
    def generation(self) -> int:
        return self._generation

    def arrive(self, party: Any = None) -> Event:
        """Arrive at the barrier; the returned event fires at full arrival.

        The event's value is the generation number that was completed.
        ``party`` optionally identifies the arriver so a fail-stopped
        participant can later be withdrawn via :meth:`drop_party`.
        """
        self._arrived += 1
        if self._arrived > self.parties:
            raise SimulationError(
                f"barrier {self.name!r}: {self._arrived} arrivals for "
                f"{self.parties} parties (reuse before release?)"
            )
        if party is not None:
            self._arrived_parties.add(party)
        release = self._release
        if self._arrived == self.parties:
            self.last_arriver = party
            completed = self._release_generation()
            done = Event(self.sim)
            done.succeed(completed)
            return done
        self._arrival_times.append(self.sim.now)
        # Each waiter gets its own event chained off the shared release:
        # killing one blocked process then cancels only that process's
        # event, not the generation everyone else still waits on.
        # (succeed() on a cancelled event is a documented no-op.)
        waiter = Event(self.sim)
        release.add_callback(lambda ev: waiter.succeed(ev.value))
        return waiter

    def drop_party(self, party: Any = None) -> None:
        """Fail-stop support: permanently remove one participant.

        The barrier now needs one fewer arrival per generation.  If the
        dropped party had already arrived this generation (it died while
        blocked), its arrival is withdrawn too.  When the drop makes the
        current generation complete, waiters are released immediately —
        without this, survivors at the barrier would hang forever.
        """
        if self.parties <= 1:
            raise SimulationError(
                f"barrier {self.name!r}: cannot drop the last party"
            )
        self.parties -= 1
        if party is not None and party in self._arrived_parties:
            self._arrived_parties.discard(party)
            self._arrived -= 1
            if self._arrival_times:
                self._arrival_times.pop()
        if self._arrived == self.parties:
            self.last_arriver = None  # released by a death, not an arrival
            self._release_generation()

    def _release_generation(self) -> int:
        """Complete the current generation, waking everyone blocked."""
        release = self._release
        completed = self._generation
        self._generation += 1
        self._arrived = 0
        self._arrived_parties.clear()
        self._release = Event(self.sim)
        self.crossings += 1
        now = self.sim.now
        self.total_wait_time += sum(now - t for t in self._arrival_times)
        self._arrival_times.clear()
        release.succeed(completed)
        return completed
