"""Process synchronization: broadcast conditions and counted barriers."""

from __future__ import annotations

from typing import Any

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Condition", "SimBarrier"]


class Condition:
    """A broadcast condition: many waiters, woken all at once.

    Unlike :class:`~repro.sim.engine.Event` a condition can be notified
    repeatedly; each ``wait()`` call returns a fresh one-shot event tied to
    the *next* notification.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []
        self.notify_count = 0

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._waiters.append(ev)
        return ev

    def notify_all(self, value: Any = None) -> int:
        """Wake every current waiter; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        self.notify_count += 1
        woken = 0
        for ev in waiters:
            if not ev.cancelled:
                ev.succeed(value)
                woken += 1
        return woken


class SimBarrier:
    """A reusable barrier for exactly ``parties`` simulated processes.

    The implementation is *sense-reversing*: each generation hands out a
    fresh event, so a fast process re-entering the barrier cannot consume
    the previous generation's release.  Matches the semantics UPC requires
    of ``upc_barrier``.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._generation = 0
        self._release = Event(sim)
        self._arrival_times: list[float] = []
        # Statistics: cumulative time processes spent blocked in the barrier.
        self.total_wait_time = 0.0
        self.crossings = 0

    @property
    def generation(self) -> int:
        return self._generation

    def arrive(self) -> Event:
        """Arrive at the barrier; the returned event fires at full arrival.

        The event's value is the generation number that was completed.
        """
        self._arrived += 1
        if self._arrived > self.parties:
            raise SimulationError(
                f"barrier {self.name!r}: {self._arrived} arrivals for "
                f"{self.parties} parties (reuse before release?)"
            )
        release = self._release
        if self._arrived == self.parties:
            completed = self._generation
            self._generation += 1
            self._arrived = 0
            self._release = Event(self.sim)
            self.crossings += 1
            now = self.sim.now
            self.total_wait_time += sum(now - t for t in self._arrival_times)
            self._arrival_times.clear()
            release.succeed(completed)
            done = Event(self.sim)
            done.succeed(completed)
            return done
        self._arrival_times.append(self.sim.now)
        return release
