"""Measurement utilities: counters, accumulators and phase timers.

Every experiment in the harness reads its numbers out of a
:class:`StatsCollector`; keeping measurement in one place means apps never
grow ad-hoc globals and runs stay comparable.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.obs import names as metric_names
from repro.obs.tracer import META_TRACK, thread_track
from repro.sim.engine import Simulator

__all__ = ["StatsCollector", "PhaseTimer", "summarize"]


def summarize(values: Iterable[float]) -> dict:
    """Return min/max/mean/median/stdev of ``values`` (empty-safe)."""
    data = sorted(values)
    n = len(data)
    if n == 0:
        return {"n": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0, "stdev": 0.0}
    mean = sum(data) / n
    if n % 2:
        median = data[n // 2]
    else:
        median = 0.5 * (data[n // 2 - 1] + data[n // 2])
    var = sum((x - mean) ** 2 for x in data) / n
    return {
        "n": n,
        "min": data[0],
        "max": data[-1],
        "mean": mean,
        "median": median,
        "stdev": math.sqrt(var),
    }


class StatsCollector:
    """Named counters, value accumulators and per-thread timers.

    * ``count(name)`` — increment an integer counter.
    * ``add(name, v)`` — accumulate a float (e.g. bytes moved).
    * ``record(name, v)`` — append to a value series (for distributions).
    * ``time_block`` — accumulate per-(name, key) elapsed simulated time
      via explicit ``enter``/``exit`` pairs (see :class:`PhaseTimer`).
    """

    def __init__(self, sim: Optional[Simulator] = None):
        self.sim = sim
        self.counters: Dict[str, int] = {}
        self.accumulators: Dict[str, float] = {}
        self.series: Dict[str, List[float]] = {}
        self.timers: Dict[tuple, float] = {}
        self._open_timers: Dict[tuple, float] = {}
        self._open_spans: Dict[tuple, int] = {}

    # -- counters -----------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def add(self, name: str, value: float) -> None:
        self.accumulators[name] = self.accumulators.get(name, 0.0) + value

    def record(self, name: str, value: float) -> None:
        self.series.setdefault(name, []).append(value)

    def get_count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def get_sum(self, name: str) -> float:
        return self.accumulators.get(name, 0.0)

    def get_series(self, name: str) -> List[float]:
        return self.series.get(name, [])

    def summary(self, name: str) -> dict:
        return summarize(self.series.get(name, []))

    # -- timers ---------------------------------------------------------

    def timer_enter(self, name: str, key=None) -> None:
        if self.sim is None:
            raise ValueError("StatsCollector needs a Simulator for timers")
        tk = (name, key)
        if tk in self._open_timers:
            raise ValueError(f"timer {tk!r} already open")
        self._open_timers[tk] = self.sim.now
        if self.sim.profiler.enabled:
            self.sim.profiler.phase_started(name)
        tracer = self.sim.tracer
        if tracer.enabled:
            track = thread_track(key) if isinstance(key, int) else META_TRACK
            self._open_spans[tk] = tracer.begin(
                track, name, metric_names.CAT_PHASE
            )

    def timer_exit(self, name: str, key=None) -> float:
        tk = (name, key)
        start = self._open_timers.pop(tk, None)
        if start is None:
            raise ValueError(f"timer {tk!r} was not opened")
        elapsed = self.sim.now - start
        self.timers[tk] = self.timers.get(tk, 0.0) + elapsed
        if self.sim.profiler.enabled:
            self.sim.profiler.phase_ended(name)
        span = self._open_spans.pop(tk, None)
        if span is not None:
            self.sim.tracer.end(span)
        return elapsed

    def open_timers(self) -> List[tuple]:
        """In-flight ``(name, key)`` timer keys, in canonical order.

        A non-empty result at end of run means a phase died without
        stopping its timer — its elapsed time is missing from
        :attr:`timers`, so totals read from this collector are wrong.
        """
        return sorted(self._open_timers, key=repr)

    def timer_total(self, name: str, key=None) -> float:
        """Total time for (name, key); with key=Ellipsis, sum over all keys."""
        if key is Ellipsis:
            return sum(v for (n, _k), v in self.timers.items() if n == name)
        return self.timers.get((name, key), 0.0)

    def timer_max(self, name: str) -> float:
        """Max over keys — the critical-path view of a parallel phase."""
        values = [v for (n, _k), v in self.timers.items() if n == name]
        return max(values) if values else 0.0

    def phase(self, name: str, key=None) -> "PhaseTimer":
        return PhaseTimer(self, name, key)

    def snapshot(self) -> str:
        """Canonical text serialization of every counter/sum/series/timer.

        Deterministic (keys sorted, floats via ``repr``) so two runs can
        be compared byte-for-byte — the fault-injection determinism tests
        assert equality of snapshots across seeded runs.

        Raises :class:`ValueError` while timers are still open: their
        elapsed time is not in :attr:`timers` yet, so a snapshot taken
        now would silently under-report the leaked phases.
        """
        leaked = self.open_timers()
        if leaked:
            raise ValueError(
                "snapshot with in-flight phase timers (a phase died "
                f"without stopping its timer?): {leaked!r}"
            )
        lines = []
        for k in sorted(self.counters):
            lines.append(f"count {k} {self.counters[k]}")
        for k in sorted(self.accumulators):
            lines.append(f"sum {k} {self.accumulators[k]!r}")
        for k in sorted(self.series):
            lines.append(f"series {k} {self.series[k]!r}")
        for tk in sorted(self.timers, key=repr):
            lines.append(f"timer {tk!r} {self.timers[tk]!r}")
        return "\n".join(lines)

    def merge(self, other: "StatsCollector") -> None:
        leaked = other.open_timers()
        if leaked:
            raise ValueError(
                "cannot merge a collector with in-flight timers (their "
                f"elapsed time would be lost): {leaked!r}"
            )
        for k, v in other.counters.items():
            self.count(k, v)
        for k, v in other.accumulators.items():
            self.add(k, v)
        for k, vs in other.series.items():
            self.series.setdefault(k, []).extend(vs)
        for tk, v in other.timers.items():
            self.timers[tk] = self.timers.get(tk, 0.0) + v


class PhaseTimer:
    """Scoped phase timing for simulated code.

    Because simulated processes are generators, Python's ``with`` blocks
    cannot span a ``yield`` boundary safely on failure; apps instead write::

        timer = stats.phase("fft1d", key=mythread)
        timer.start()
        yield ...                 # simulated work
        timer.stop()
    """

    def __init__(self, stats: StatsCollector, name: str, key=None):
        self.stats = stats
        self.name = name
        self.key = key

    def start(self) -> "PhaseTimer":
        self.stats.timer_enter(self.name, self.key)
        return self

    def stop(self) -> float:
        return self.stats.timer_exit(self.name, self.key)
