"""Core event loop and process machinery.

The engine schedules callbacks on a binary heap keyed by
``(time, priority, sequence)``.  Simulated *processes* are plain Python
generators that ``yield`` :class:`Awaitable` objects — delays, one-shot
events, other processes, or ``AllOf``/``AnyOf`` combinators — and are
resumed with the awaitable's value once it completes.  Failures propagate
by throwing into the generator, so ordinary ``try/except`` works inside
simulated code.

Design notes
------------
* Time is a ``float`` in seconds.  The engine never compares times for
  equality; ties are broken by priority then a monotonically increasing
  sequence number, which keeps runs deterministic.
* ``yield from`` composes simulated subroutines with zero overhead in the
  engine; only top-level ``yield`` values reach the scheduler.
* Cancellation is cooperative: ``Delay.cancel()`` and ``Event.cancel()``
  mark the awaitable dead so a pending heap entry becomes a no-op.  This
  is what lets ``AnyOf`` race a timeout against an event without leaking
  callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.analyze.sanitizer import NULL_SANITIZER
from repro.obs import names as _metric_names
from repro.obs.profile.cost import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "Awaitable",
    "Event",
    "Delay",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "SimulationError",
    "ProcessFailure",
    "StalledProcessError",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StalledProcessError(SimulationError):
    """The event heap drained while processes were still waiting.

    This is the quiescence/deadlock diagnostic: an injected fault (or a
    plain bug) orphaned a waiter, so the run ended early instead of
    completing.  ``processes`` holds the stuck :class:`Process` objects.
    """

    def __init__(self, processes: list):
        names = [p.name for p in processes]
        shown = ", ".join(repr(n) for n in names[:8])
        extra = f" (+{len(names) - 8} more)" if len(names) > 8 else ""
        super().__init__(
            f"simulation quiesced with {len(names)} stalled process(es): "
            f"{shown}{extra}"
        )
        self.processes = processes


class ProcessFailure(SimulationError):
    """Raised when joining a process that terminated with an exception.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, process: "Process", cause: BaseException):
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.__cause__ = cause


class Awaitable:
    """Base class for everything a simulated process may ``yield``.

    An awaitable completes at most once, with either a value or an
    exception, and then invokes its registered callbacks in registration
    order.
    """

    __slots__ = ("sim", "_callbacks", "_done", "_cancelled", "value", "exc")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: list[Callable[[Awaitable], None]] = []
        self._done = False
        self._cancelled = False
        self.value: Any = None
        self.exc: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._done

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def add_callback(self, fn: Callable[["Awaitable"], None]) -> None:
        """Register ``fn`` to run when this awaitable completes.

        If already complete, ``fn`` runs immediately (synchronously).
        """
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _complete(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self._done or self._cancelled:
            return
        self._done = True
        self.value = value
        self.exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def cancel(self) -> None:
        """Mark the awaitable dead; a later completion becomes a no-op."""
        if not self._done:
            self._cancelled = True
            self._callbacks.clear()


class Event(Awaitable):
    """A one-shot trigger that processes can wait on.

    ``succeed(value)`` wakes all waiters with ``value``; ``fail(exc)``
    throws ``exc`` into them.

    Completing a **cancelled** event is an explicit, documented no-op:
    cancellation means every waiter has already withdrawn (a lost
    ``AnyOf`` race, a killed process), so there is nobody left to wake
    and the completion value is discarded.  This lets completers fire
    unconditionally without tracking who lost which race.  Completing an
    event that already *completed* is still an error.
    """

    __slots__ = ()

    def succeed(self, value: Any = None) -> "Event":
        if self._done:
            raise SimulationError("event already completed")
        if self._cancelled:
            return self  # documented no-op: all waiters withdrew
        self._complete(value=value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._done:
            raise SimulationError("event already completed")
        if self._cancelled:
            return self  # documented no-op: all waiters withdrew
        self._complete(exc=exc)
        return self


class Delay(Awaitable):
    """Completes ``dt`` simulated seconds after creation."""

    __slots__ = ("dt",)

    def __init__(self, sim: "Simulator", dt: float, priority: int = 0):
        if dt < 0:
            raise ValueError(f"negative delay: {dt}")
        super().__init__(sim)
        self.dt = dt
        sim.schedule_after(dt, self._fire, priority=priority)

    def _fire(self) -> None:
        self._complete(value=self.dt)


class Process(Awaitable):
    """A running simulated process wrapping a generator.

    A process is itself awaitable: ``yield other_process`` joins it and
    evaluates to its return value.  If the joined process raised, a
    :class:`ProcessFailure` is thrown into the joiner.
    """

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(
                f"sim.spawn() needs a generator; got {type(gen).__name__}. "
                "Did you forget to call the generator function?"
            )
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Awaitable] = None
        sim._register_process(self)
        if sim.tracer.enabled:
            sim.tracer.process_spawned(self)
        sim.schedule_after(0.0, self._step, None, None)

    @property
    def result(self) -> Any:
        """Return value of the process; raises if it failed or is running."""
        if not self._done:
            raise SimulationError(f"process {self.name!r} has not finished")
        if self.exc is not None:
            raise ProcessFailure(self, self.exc)
        return self.value

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self._done or self._cancelled:
            return
        self._waiting_on = None
        if self.sim.tracer.enabled:
            self.sim.engine_metrics[_metric_names.ENGINE_CONTEXT_SWITCHES] += 1
        if self.sim.profiler.enabled:
            self.sim.profiler.context_switch(self)
        try:
            if throw_exc is not None:
                target = self.gen.throw(throw_exc)
            else:
                target = self.gen.send(send_value)
        except StopIteration as stop:
            self._complete(value=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            self.sim._record_failure(self, exc)
            self._complete(exc=exc)
            return
        try:
            self._wait_for(target)
        except TypeError as exc:
            self.gen.close()
            self.sim._record_failure(self, exc)
            self._complete(exc=exc)

    def _wait_for(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            target = Delay(self.sim, float(target))
        if not isinstance(target, Awaitable):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected an "
                "Awaitable or a number of seconds"
            )
        self._waiting_on = target
        if self.sim.tracer.enabled:
            self.sim.tracer.process_blocked(self, target)
        target.add_callback(self._resume)

    def _resume(self, awaited: Awaitable) -> None:
        if self._done or self._cancelled:
            return
        if self.sim.tracer.enabled:
            self.sim.tracer.process_resumed(self)
        if awaited.exc is not None:
            if isinstance(awaited, Process):
                exc: BaseException = ProcessFailure(awaited, awaited.exc)
            else:
                exc = awaited.exc
            self.sim.schedule_after(0.0, self._step, None, exc)
        else:
            self.sim.schedule_after(0.0, self._step, awaited.value, None)

    def kill(self) -> None:
        """Terminate the process without running any more of its code."""
        if self._done:
            return
        if self._waiting_on is not None:
            self._waiting_on.cancel()
        if self.sim.tracer.enabled:
            self.sim.tracer.process_killed(self)
        self.gen.close()
        self._complete(value=None)


class AllOf(Awaitable):
    """Completes when *all* children complete; value is the list of values.

    Fails fast with the first child failure (remaining children keep
    running — this combinator only observes them).
    """

    __slots__ = ("children", "_pending")

    def __init__(self, sim: "Simulator", children: Iterable[Awaitable]):
        super().__init__(sim)
        self.children = list(children)
        self._pending = len(self.children)
        if self._pending == 0:
            sim.schedule_after(0.0, self._complete, [])
            return
        for child in self.children:
            child.add_callback(self._child_done)

    def _child_done(self, child: Awaitable) -> None:
        if self._done or self._cancelled:
            return
        if child.exc is not None:
            self._complete(exc=child.exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self._complete(value=[c.value for c in self.children])


class AnyOf(Awaitable):
    """Completes when the *first* child completes; value is ``(index, value)``.

    Losing *passive* children (delays, events) are **cancelled** so a
    timeout race leaves no pending wakeup behind.  Losing **processes**
    are left running — AnyOf withdraws its observation, it does not kill
    them (use :meth:`Process.kill` for that).
    """

    __slots__ = ("children",)

    def __init__(self, sim: "Simulator", children: Iterable[Awaitable]):
        super().__init__(sim)
        self.children = list(children)
        if not self.children:
            raise ValueError("AnyOf needs at least one child")
        for child in self.children:
            child.add_callback(self._child_done)

    def _child_done(self, child: Awaitable) -> None:
        if self._done or self._cancelled:
            return
        for other in self.children:
            if other is not child and not isinstance(other, Process):
                other.cancel()
        if child.exc is not None:
            self._complete(exc=child.exc)
        else:
            self._complete(value=(self.children.index(child), child.value))


class Simulator:
    """The event loop: a clock plus a heap of pending callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Callable, tuple]] = []
        self._seq = itertools.count()
        self._running = False
        self.failures: list[tuple[Process, BaseException]] = []
        self._processes: list[Process] = []
        #: Set to a callable to be notified of unhandled process failures.
        self.failure_hook: Optional[Callable[[Process, BaseException], None]] = None
        #: Observability sink; defaults to the shared no-op tracer so hook
        #: sites can stay unconditional (`if self.tracer.enabled:` guards
        #: the hot paths).
        self.tracer = NULL_TRACER
        #: Correctness sink (repro.analyze); same NULL-object discipline —
        #: `if self.sanitizer.enabled:` keeps unsanitized runs at full speed.
        self.sanitizer = NULL_SANITIZER
        #: Cost profiler (repro.obs.profile); third consumer of the same
        #: NULL-object discipline — unprofiled runs pay one guarded branch.
        self.profiler = NULL_PROFILER
        #: Engine self-measurement, tallied only while a tracer is armed
        #: (the untraced hot path keeps its single-branch guard) and
        #: published as counter samples by ``Tracer.finalize``.
        self.engine_metrics: dict = {n: 0 for n in _metric_names.ENGINE_METRICS}

    # -- scheduling --------------------------------------------------

    def schedule_at(
        self, time: float, fn: Callable, *args: Any, priority: int = 0
    ) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}"
            )
        heapq.heappush(self._heap, (time, priority, next(self._seq), fn, args))
        if self.tracer.enabled:
            metrics = self.engine_metrics
            if len(self._heap) > metrics[_metric_names.ENGINE_HEAP_PEAK]:
                metrics[_metric_names.ENGINE_HEAP_PEAK] = len(self._heap)
            if time > self.now:
                # Every event at a *future* instant is one charged
                # simulated cost — delays, resource transfers, network
                # latencies; same-instant wakeups are scheduling
                # artifacts and stay free.
                metrics[_metric_names.ENGINE_COSTED_CYCLES] += 1
        if self.profiler.enabled:
            # Same costed/free split as the tracer's tally above, but
            # attributed to the scheduling site rather than summed.
            self.profiler.event_scheduled(fn, time > self.now)

    def schedule_after(
        self, dt: float, fn: Callable, *args: Any, priority: int = 0
    ) -> None:
        self.schedule_at(self.now + dt, fn, *args, priority=priority)

    # -- awaitable factories -----------------------------------------

    def event(self) -> Event:
        return Event(self)

    def delay(self, dt: float) -> Delay:
        return Delay(self, dt)

    #: Alias matching the common DES vocabulary.
    timeout = delay

    def all_of(self, children: Iterable[Awaitable]) -> AllOf:
        return AllOf(self, children)

    def any_of(self, children: Iterable[Awaitable]) -> AnyOf:
        return AnyOf(self, children)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    # -- execution ---------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap; return the final simulated time.

        With ``until`` the clock stops advancing past that time (pending
        later events remain queued).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while self._heap:
                time, _prio, _seq, fn, args = self._heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                self.now = time
                if self.tracer.enabled:
                    self.engine_metrics[_metric_names.ENGINE_EVENTS_POPPED] += 1
                fn(*args)
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Execute a single event; return False when the heap is empty."""
        if not self._heap:
            return False
        time, _prio, _seq, fn, args = heapq.heappop(self._heap)
        self.now = time
        if self.tracer.enabled:
            self.engine_metrics[_metric_names.ENGINE_EVENTS_POPPED] += 1
        fn(*args)
        return True

    @property
    def pending(self) -> int:
        return len(self._heap)

    # -- diagnostics -------------------------------------------------

    def _record_failure(self, process: Process, exc: BaseException) -> None:
        self.failures.append((process, exc))
        if self.tracer.enabled:
            self.tracer.process_failed(process, exc)
        if self.failure_hook is not None:
            self.failure_hook(process, exc)

    def _register_process(self, process: Process) -> None:
        self._processes.append(process)

    def forgive_failure(self, process: Process) -> None:
        """Drop recorded failures of ``process``: a supervisor handled them.

        Retry layers spawn an attempt, observe its failure through a
        combinator, and recover; without forgiveness the handled
        exception would still trip :meth:`raise_failures` at run end.
        """
        self.failures = [(p, e) for (p, e) in self.failures if p is not process]

    def stalled_processes(self) -> list:
        """Processes still waiting after the event heap drained.

        Only meaningful once :attr:`pending` is zero: with nothing left
        on the heap, a live process can never be resumed again, so every
        entry returned here is deadlocked (typically a waiter orphaned by
        an injected fault or by a kill).  With events still pending the
        result is merely "not finished yet", not a diagnosis.
        """
        return [p for p in self._processes if not p.done and not p.cancelled]

    def raise_failures(self, check_stalled: bool = False) -> None:
        """Re-raise the first unhandled process failure, if any.

        Harness code calls this after :meth:`run` so programming errors in
        simulated code do not silently produce bogus timings.  With
        ``check_stalled=True`` it additionally raises
        :class:`StalledProcessError` when the heap drained while spawned
        processes were still waiting on never-completed events.
        """
        if self.failures:
            process, exc = self.failures[0]
            raise ProcessFailure(process, exc)
        if check_stalled and not self._heap:
            stalled = self.stalled_processes()
            if stalled:
                if self.tracer.enabled:
                    self.tracer.quiescence(stalled)
                raise StalledProcessError(stalled)
