"""Shared resources: FIFO resources, message stores, and shared bandwidth.

:class:`SharedBandwidth` is the workhorse of the fabric and memory models.
It implements *processor sharing*: ``n`` concurrent transfers each progress
at ``rate / n``.  This is the standard first-order model for links, NICs
and memory controllers under contention, and is what produces the graceful
saturation curves in the paper's Figures 4.2, 4.4 and 4.5.
"""

from __future__ import annotations

import collections
import math
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "SharedBandwidth"]

#: Bytes below this remainder count as finished (guards float drift).
_EPSILON_BYTES = 1e-9


class Resource:
    """A counted FIFO resource (capacity ``k`` concurrent holders).

    >>> res = Resource(sim, capacity=1)
    >>> def user(sim, res):
    ...     yield res.acquire()
    ...     try:
    ...         yield sim.delay(1.0)    # critical section
    ...     finally:
    ...         res.release()

    Cancelled waiters (e.g. the losing side of an ``AnyOf`` timeout race)
    are skipped at grant time and never count as holders.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Event] = collections.deque()
        # Statistics.
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self._enqueue_times: dict[int, float] = {}

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> Event:
        """Return an event that succeeds once the caller holds the resource."""
        ev = Event(self.sim)
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            self.total_acquisitions += 1
            ev.succeed()
        else:
            self._enqueue_times[id(ev)] = self.sim.now
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        self._grant_next()

    def _grant_next(self) -> None:
        while self._queue and self._in_use < self.capacity:
            ev = self._queue.popleft()
            enqueued = self._enqueue_times.pop(id(ev), self.sim.now)
            if ev.cancelled:
                continue
            self._in_use += 1
            self.total_acquisitions += 1
            self.total_wait_time += self.sim.now - enqueued
            ev.succeed()


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    Used for message queues (active-message delivery, MPI match queues).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = collections.deque()
        self._getters: Deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.cancelled:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class _Transfer:
    __slots__ = ("remaining", "event", "nbytes", "start")

    def __init__(self, nbytes: float, event: Event, start: float):
        self.remaining = float(nbytes)
        self.nbytes = float(nbytes)
        self.event = event
        self.start = start


class SharedBandwidth:
    """A processor-sharing pipe of fixed aggregate ``rate`` (bytes/s).

    ``transfer(nbytes)`` returns an event that succeeds once the bytes have
    drained.  With ``n`` concurrent transfers each progresses at
    ``rate / n`` (optionally capped at ``per_stream_rate``), so a transfer's
    finish time depends on what else is in flight — exactly the contention
    behaviour of a shared NIC or memory controller.

    Setting ``fifo=True`` degrades the pipe to strict FIFO service, used by
    the D4 ablation in DESIGN.md.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        name: str = "",
        per_stream_rate: Optional[float] = None,
        fifo: bool = False,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if per_stream_rate is not None and per_stream_rate <= 0:
            raise ValueError(f"per_stream_rate must be positive, got {per_stream_rate}")
        self.sim = sim
        self.rate = float(rate)
        self.per_stream_rate = per_stream_rate
        self.name = name
        self.fifo = fifo
        self._active: list[_Transfer] = []
        self._last_update = sim.now
        self._timer_generation = 0
        # FIFO mode state.
        self._fifo_queue: Deque[_Transfer] = collections.deque()
        self._fifo_busy = False
        # Statistics.
        self.total_bytes = 0.0
        self.total_transfers = 0
        self.busy_time = 0.0

    # -- public API ---------------------------------------------------

    @property
    def active_transfers(self) -> int:
        return len(self._active) + len(self._fifo_queue) + (1 if self._fifo_busy else 0)

    def transfer(self, nbytes: float) -> Event:
        """Start moving ``nbytes`` through the pipe; returns completion event."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        ev = Event(self.sim)
        self.total_transfers += 1
        self.total_bytes += nbytes
        if nbytes == 0:
            self.sim.schedule_after(0.0, ev.succeed, None)
            return ev
        tr = _Transfer(nbytes, ev, self.sim.now)
        if self.fifo:
            self._fifo_queue.append(tr)
            self._fifo_pump()
        else:
            self._advance()
            self._active.append(tr)
            self._reschedule()
        return ev

    def time_for(self, nbytes: float) -> float:
        """Uncontended service time for ``nbytes`` (for analytic checks)."""
        stream_rate = self.rate
        if self.per_stream_rate is not None:
            stream_rate = min(stream_rate, self.per_stream_rate)
        return nbytes / stream_rate

    # -- processor-sharing internals -----------------------------------

    def _aggregate_rate(self, n: int) -> float:
        """Aggregate service rate with ``n`` active transfers.

        Subclasses override this for occupancy-dependent throughput, e.g.
        an SMT core whose two hardware threads together exceed the
        single-thread rate but each run slower than alone.
        """
        return self.rate

    def _current_stream_rate(self) -> float:
        n = len(self._active)
        if n == 0:
            return self.rate
        rate = self._aggregate_rate(n) / n
        if self.per_stream_rate is not None:
            rate = min(rate, self.per_stream_rate)
        return rate

    def _advance(self) -> None:
        """Drain progress made since ``_last_update`` into each transfer."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        self.busy_time += dt
        drained = self._current_stream_rate() * dt
        for tr in self._active:
            tr.remaining -= drained

    def _reschedule(self) -> None:
        """Schedule a timer for the next completion among active transfers.

        The timer target is snapped forward to the next representable
        float after ``now`` when the remaining service time underflows —
        without this, a transfer whose tail rounds below the clock's ULP
        would re-fire forever at the same instant.
        """
        self._timer_generation += 1
        if not self._active:
            return
        stream_rate = self._current_stream_rate()
        min_remaining = min(tr.remaining for tr in self._active)
        now = self.sim.now
        target = now + max(min_remaining, 0.0) / stream_rate
        if target <= now:
            target = math.nextafter(now, math.inf)
        self.sim.schedule_at(target, self._on_timer, self._timer_generation)

    @staticmethod
    def _finished(tr: "_Transfer") -> bool:
        # Relative tolerance guards against float drift on large transfers.
        return tr.remaining <= max(_EPSILON_BYTES, 1e-12 * tr.nbytes)

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a newer arrival/completion
        self._advance()
        still_active = []
        for tr in self._active:
            if self._finished(tr):
                if not tr.event.cancelled:
                    tr.event.succeed(tr.nbytes)
            else:
                still_active.append(tr)
        self._active = still_active
        self._reschedule()

    # -- FIFO-mode internals --------------------------------------------

    def _fifo_pump(self) -> None:
        if self._fifo_busy or not self._fifo_queue:
            return
        tr = self._fifo_queue.popleft()
        self._fifo_busy = True
        stream_rate = self.rate
        if self.per_stream_rate is not None:
            stream_rate = min(stream_rate, self.per_stream_rate)
        dt = tr.remaining / stream_rate
        self.busy_time += dt
        self.sim.schedule_after(dt, self._fifo_done, tr)

    def _fifo_done(self, tr: _Transfer) -> None:
        self._fifo_busy = False
        if not tr.event.cancelled:
            tr.event.succeed(tr.nbytes)
        self._fifo_pump()
