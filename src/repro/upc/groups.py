"""Thread groups: the Chapter-3 extension.

A :class:`ThreadGroup` wraps a GASNet team with hardware awareness: its
members, their locality relationship, a group barrier, and the privatized
pointer table that makes intra-group accesses cheap.  Groups may overlap
(a thread can hold a socket group *and* a node group simultaneously,
§3.2.1), and are built collectively:

* :func:`shared_memory_group` — peers reachable by load/store (the
  castability neighbourhood; a supernode under PSHM);
* :func:`node_group` / :func:`socket_group` — hardware-level groups;
* :func:`split` — arbitrary color/key grouping, the general mechanism.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.errors import UpcError
from repro.gasnet.team import Team
from repro.upc.pointers import PointerTable

__all__ = ["ThreadGroup", "shared_memory_group", "node_group", "socket_group", "split"]


class ThreadGroup:
    """A hardware-aware thread subset (see module docstring)."""

    def __init__(self, team: Team, upc, pointer_table: Optional[PointerTable] = None):
        self.team = team
        self.mythread = upc.MYTHREAD
        self.pointer_table = pointer_table
        self._upc = upc

    @property
    def members(self) -> tuple:
        return self.team.members

    @property
    def size(self) -> int:
        return len(self.team)

    @property
    def rank(self) -> int:
        return self.team.rank(self.mythread)

    def peers(self) -> tuple:
        """Members other than the calling thread."""
        return tuple(t for t in self.team.members if t != self.mythread)

    @property
    def is_shared_memory(self) -> bool:
        """True when every member pair can bypass the network."""
        gasnet = self._upc.gasnet
        me = self.mythread
        return all(gasnet.can_bypass(me, t) for t in self.team.members)

    def barrier(self) -> Generator:
        yield from self.team.barrier(self.mythread)

    def __repr__(self) -> str:
        return f"<ThreadGroup {self.team.name} members={self.team.members}>"


def split(upc, color: int, key: Optional[int] = None, build_table: bool = True):
    """Simulated generator: collectively split the world by color/key.

    All threads must call; threads sharing a color form one group.
    Returns this thread's :class:`ThreadGroup`.
    """
    tag_team = upc.program.world.op_tag(upc.MYTHREAD)

    def combine(payloads: Dict[int, tuple]):
        requests = [
            upc.program.world.split(t, color=c, key=k)
            for t, (c, k) in sorted(payloads.items())
        ]
        return Team.build_split(upc.sim, requests)

    key = key if key is not None else upc.MYTHREAD
    team_map = yield from upc.collective(f"group_split:{tag_team}", (color, key), combine)
    team = team_map[upc.MYTHREAD]
    table = None
    if build_table:
        table = yield from PointerTable.build(upc)
    return ThreadGroup(team, upc, pointer_table=table)


def shared_memory_group(upc, build_table: bool = True):
    """Simulated generator: group = my PSHM supernode (castable peers)."""
    peers = upc.peers_sharing_memory()
    color = min(peers)
    group = yield from split(upc, color=color, build_table=build_table)
    return group


def node_group(upc, build_table: bool = True):
    """Simulated generator: group = threads on my node."""
    group = yield from split(upc, color=upc.my_node, build_table=build_table)
    return group


def socket_group(upc, build_table: bool = True):
    """Simulated generator: group = threads on my socket (ccNUMA domain)."""
    group = yield from split(upc, color=upc.my_socket, build_table=build_table)
    return group
