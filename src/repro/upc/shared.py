"""Shared arrays: the partitioned global address space.

A :class:`SharedArray` is a 1-D global array distributed block-cyclically
over UPC threads (layout qualifier ``blocksize``; UPC's default is 1 —
pure cyclic — and ``"block"`` gives the ceil-divided block distribution).
Element *i* has affinity to thread ``(i // blocksize) % THREADS``, and its
bytes live on that thread's segment socket for costing purposes.

Two backings:

* ``"real"`` — a NumPy array actually holds the data, so applications
  compute real results through the PGAS machinery (used by the verified
  small-scale runs, e.g. FT class S against ``numpy.fft``).
* ``"virtual"`` — metadata only; reads return zeros and writes are
  dropped.  Timing behaviour is identical, which is what lets the
  harness run paper-scale problems (FT class B) without 0.5 GB arrays.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

import numpy as np

from repro.errors import UpcError

__all__ = ["SharedArray"]


class SharedArray:
    """A block-cyclically distributed global array (see module docstring)."""

    def __init__(
        self,
        program,
        nelems: int,
        dtype=None,
        blocksize: Optional[object] = None,
        backing: str = "real",
    ):
        if nelems < 1:
            raise UpcError(f"nelems must be >= 1, got {nelems}")
        if backing not in ("real", "virtual"):
            raise UpcError(f"unknown backing {backing!r}")
        self.program = program
        self.nelems = nelems
        self.dtype = np.dtype(dtype if dtype is not None else np.float64)
        self.threads = program.threads
        if blocksize is None:
            blocksize = 1
        elif blocksize == "block":
            blocksize = -(-nelems // self.threads)
        if not isinstance(blocksize, int) or blocksize < 1:
            raise UpcError(f"bad blocksize {blocksize!r}")
        self.blocksize = blocksize
        self.backing = backing
        self._data = (
            np.zeros(nelems, dtype=self.dtype) if backing == "real" else None
        )

    # -- layout ------------------------------------------------------------

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.nelems * self.itemsize

    def owner(self, index: int) -> int:
        """Thread with affinity to element ``index``."""
        self._check_index(index)
        return (index // self.blocksize) % self.threads

    def local_size(self, thread: int) -> int:
        """Number of elements with affinity to ``thread``."""
        full_cycles, rem = divmod(self.nelems, self.blocksize * self.threads)
        count = full_cycles * self.blocksize
        start = thread * self.blocksize
        count += max(0, min(rem - start, self.blocksize))
        return count

    def local_indices(self, thread: int) -> np.ndarray:
        """Global indices of elements with affinity to ``thread``."""
        idx = np.arange(self.nelems)
        return idx[(idx // self.blocksize) % self.threads == thread]

    def affinity_runs(self, start: int, count: int) -> Iterable[tuple]:
        """Yield ``(owner, run_start, run_len)`` over ``[start, start+count)``.

        Splits an index range into maximal contiguous single-owner runs —
        the unit at which bulk memory operations charge costs.
        """
        if count < 0:
            raise UpcError(f"negative count {count}")
        if count == 0:
            return
        self._check_index(start)
        self._check_index(start + count - 1)
        pos = start
        end = start + count
        while pos < end:
            block_end = (pos // self.blocksize + 1) * self.blocksize
            run_end = min(end, block_end)
            yield self.owner(pos), pos, run_end - pos
            pos = run_end

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.nelems:
            raise UpcError(f"index {index} out of range [0, {self.nelems})")

    # -- raw data access (no cost: the data plane is instantaneous) ---------

    def view(self) -> np.ndarray:
        """The full backing array (real backing only)."""
        if self._data is None:
            raise UpcError("virtual arrays have no data; use a real backing")
        return self._data

    def __getitem__(self, key):
        if self._data is None:
            raise UpcError("virtual arrays have no data; use a real backing")
        return self._data[key]

    def __setitem__(self, key, value):
        if self._data is None:
            raise UpcError("virtual arrays have no data; use a real backing")
        self._data[key] = value

    # -- costed operations ----------------------------------------------------

    def read_elem(self, upc, index: int, privatized: bool = False):
        """Simulated generator: one fine-grained shared read.

        Charges pointer translation (unless privatized) plus element
        traffic against the owner's socket; returns the value (real
        backing) or 0 (virtual).
        """
        owner = self.owner(index)
        sanitizer = upc.sim.sanitizer
        if sanitizer.enabled:
            sanitizer.on_access(upc.MYTHREAD, self, index, 1, False, "read_elem")
        if not privatized:
            yield from upc.charge_shared_accesses(1)
        if upc.gasnet.can_bypass(upc.MYTHREAD, owner):
            yield from upc.stream_from(owner, self.itemsize, 0)
        else:
            yield from upc.memget(owner, self.itemsize)
        return self._data[index] if self._data is not None else self.dtype.type(0)

    def write_elem(self, upc, index: int, value, privatized: bool = False) -> Generator:
        """Simulated generator: one fine-grained shared write."""
        owner = self.owner(index)
        sanitizer = upc.sim.sanitizer
        if sanitizer.enabled:
            sanitizer.on_access(upc.MYTHREAD, self, index, 1, True, "write_elem")
        if not privatized:
            yield from upc.charge_shared_accesses(1)
        if upc.gasnet.can_bypass(upc.MYTHREAD, owner):
            yield from upc.stream_from(owner, 0, self.itemsize)
        else:
            yield from upc.memput(owner, self.itemsize)
        if self._data is not None:
            self._data[index] = value

    def get_block(self, upc, start: int, count: int, privatized: bool = False):
        """Simulated generator: bulk ``upc_memget`` of a global range.

        Charges one operation per single-owner run; returns a NumPy copy
        (real backing) or ``None`` (virtual).
        """
        sanitizer = upc.sim.sanitizer
        if sanitizer.enabled and count > 0:
            sanitizer.on_access(upc.MYTHREAD, self, start, count, False, "get_block")
        for owner, run_start, run_len in self.affinity_runs(start, count):
            nbytes = run_len * self.itemsize
            if owner == upc.MYTHREAD:
                yield from upc.local_stream(nbytes, nbytes)
            else:
                yield from upc.memget(owner, nbytes, privatized=privatized and upc.can_cast(owner))
        if self._data is not None:
            return self._data[start:start + count].copy()
        return None

    def put_block(
        self, upc, start: int, data=None, privatized: bool = False,
        count: Optional[int] = None,
    ) -> Generator:
        """Simulated generator: bulk ``upc_memput`` into a global range.

        Real backing takes ``data`` (a sequence written into the range);
        virtual backing has nowhere to put values, so the range length
        must be an explicit ``count=`` — historically a scalar ``data``
        was silently reinterpreted as a count, which hid genuine
        data-vs-count call-site bugs.
        """
        if self._data is not None:
            if data is None:
                raise UpcError("put_block on a real-backed array needs data")
            data = np.asarray(data, dtype=self.dtype)
            if data.ndim == 0:
                raise UpcError(
                    "put_block data must be a sequence of elements; got a "
                    "scalar (pass count= to size a virtual-array put)"
                )
            if count is not None and count != len(data):
                raise UpcError(
                    f"put_block count={count} disagrees with len(data)={len(data)}"
                )
            count = len(data)
        elif count is None:
            if data is None or np.isscalar(data):
                raise UpcError(
                    "put_block on a virtual array needs an explicit count= "
                    "(a bare scalar is ambiguous: value or element count?)"
                )
            count = len(data)
        elif data is not None and not np.isscalar(data) and len(data) != count:
            raise UpcError(
                f"put_block count={count} disagrees with len(data)={len(data)}"
            )
        sanitizer = upc.sim.sanitizer
        if sanitizer.enabled and count > 0:
            sanitizer.on_access(upc.MYTHREAD, self, start, count, True, "put_block")
        for owner, run_start, run_len in self.affinity_runs(start, count):
            nbytes = run_len * self.itemsize
            if owner == upc.MYTHREAD:
                yield from upc.local_stream(nbytes, nbytes)
            else:
                yield from upc.memput(owner, nbytes, privatized=privatized and upc.can_cast(owner))
        if self._data is not None:
            self._data[start:start + count] = data

    def __repr__(self) -> str:
        return (
            f"<SharedArray n={self.nelems} dtype={self.dtype} "
            f"bs={self.blocksize} {self.backing}>"
        )
