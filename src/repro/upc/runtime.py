"""UPC program launch and the per-thread execution context.

:class:`UpcProgram` assembles the whole simulated stack for one job —
topology, memory system, fabric, GASNet runtime, thread placement — and
runs an SPMD generator function on every UPC thread.  :class:`Upc` is the
per-thread context those functions receive: it carries ``MYTHREAD`` /
``THREADS`` and every runtime service (barriers, memory ops, collectives,
locks, thread groups, cost charging).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.analyze.sanitizer import sanitizer_for
from repro.errors import UpcError
from repro.gasnet import BackendConfig, GasnetRuntime, Team, ThreadLocation, extended
from repro.gasnet.extended import Handle
from repro.machine.affinity import (
    AffinityMask,
    assign_ranks_to_nodes,
    bind_compact,
    bind_round_robin_sockets,
    bind_unbound,
    subthread_pus,
)
from repro.machine.memory import MemorySystem
from repro.machine.presets import PlatformPreset, generic_smp
from repro.machine.topology import MachineTopology
from repro.network.conduits import conduit as lookup_conduit
from repro.obs import names
from repro.obs.profile.session import profiler_for
from repro.obs.session import tracer_for
from repro.obs.tracer import thread_track
from repro.sim import Event, SimBarrier, Simulator, SplittableRNG, StatsCollector

__all__ = ["UpcProgram", "Upc", "ProgramResult", "CollectiveGate"]

#: Base software cost of one upc_barrier call per thread.
BARRIER_BASE_COST = 0.5e-6
#: Additional per-round cost of the inter-node dissemination phase.
BARRIER_NETWORK_ROUND = 3.0e-6


class CollectiveGate:
    """A barrier-with-data: every thread submits, one function combines.

    Used for operations UPC performs collectively at runtime level
    (``upc_all_alloc``, team splits): each thread calls :meth:`submit`
    with its payload; once all ``parties`` payloads of one generation are
    in, ``combine(payloads_by_thread)`` runs once and every submitter's
    event completes with the combined result.
    """

    def __init__(self, sim: Simulator, parties: int):
        self.sim = sim
        self.parties = parties
        self._pending: Dict[str, dict] = {}

    def submit(
        self, tag: str, thread: int, payload: Any, combine: Callable[[dict], Any]
    ) -> Event:
        slot = self._pending.get(tag)
        if slot is None:
            slot = {"payloads": {}, "events": {}, "combine": combine}
            self._pending[tag] = slot
        if thread in slot["payloads"]:
            sanitizer = self.sim.sanitizer
            if sanitizer.enabled:
                sanitizer.record_collective_misuse(
                    thread,
                    f"submitted twice to collective {tag!r} (missing "
                    "barrier between collectives?)",
                )
            raise UpcError(
                f"thread {thread} submitted twice to collective {tag!r} "
                "(missing barrier between collectives?)"
            )
        ev = Event(self.sim)
        slot["payloads"][thread] = payload
        slot["events"][thread] = ev
        if len(slot["payloads"]) == self.parties:
            del self._pending[tag]
            result = slot["combine"](slot["payloads"])
            for t_ev in slot["events"].values():
                t_ev.succeed(result)
        return ev


@dataclass
class ProgramResult:
    """Outcome of one simulated UPC program run."""

    elapsed: float                 #: simulated wall-clock of the whole job
    returns: List[Any]             #: per-thread return values
    stats: StatsCollector
    sim: Simulator
    #: sanitizer findings (empty unless run under a sanitize_session)
    findings: List[Any] = field(default_factory=list)

    def timer_max(self, name: str) -> float:
        return self.stats.timer_max(name)


class UpcProgram:
    """One simulated UPC job: machine + runtime + SPMD launch.

    Parameters
    ----------
    preset:
        A :class:`~repro.machine.presets.PlatformPreset` (defaults to a
        small generic SMP cluster).
    threads:
        THREADS — total UPC thread count.
    threads_per_node:
        Node packing (defaults to an even spread over the preset's nodes).
    threads_per_process:
        1 reproduces the processes backend; >1 groups threads into
        multi-threaded processes (the pthreads backend) sharing one
        network connection.
    backend:
        GASNet :class:`~repro.gasnet.BackendConfig`; inferred from
        ``threads_per_process`` when omitted.
    conduit:
        Network conduit name; defaults to the preset's.
    binding:
        ``"compact"`` (default), ``"sockets"`` or ``"unbound"``.
    faults:
        A :class:`~repro.faults.FaultPlan` (or ``--faults`` spec string)
        injected into this run.  ``None`` or an empty plan keeps the
        seed-identical reliable path.
    retry:
        GASNet :class:`~repro.gasnet.RetryPolicy` override; only
        meaningful with ``faults``.
    """

    def __init__(
        self,
        preset: Optional[PlatformPreset] = None,
        threads: int = 4,
        threads_per_node: Optional[int] = None,
        threads_per_process: int = 1,
        backend: Optional[BackendConfig] = None,
        conduit: Optional[str] = None,
        binding: str = "compact",
        seed: int = 0,
        faults=None,
        retry=None,
    ):
        if threads < 1:
            raise UpcError(f"threads must be >= 1, got {threads}")
        if threads_per_process < 1:
            raise UpcError(f"threads_per_process must be >= 1")
        if threads % threads_per_process:
            raise UpcError(
                f"threads ({threads}) not divisible by threads_per_process "
                f"({threads_per_process})"
            )
        self.preset = preset or generic_smp(nodes=2)
        self.threads = threads
        self.threads_per_process = threads_per_process
        if backend is None:
            backend = BackendConfig(
                mode="processes" if threads_per_process == 1 else "pthreads",
                pshm=True,
            )
        self.backend = backend
        self.net_params = lookup_conduit(conduit or self.preset.default_conduit)
        self.binding = binding
        self.seed = seed

        self.sim = Simulator()
        # Attach the tracer before any stack layer is built so fabric and
        # runtime construction can declare their tracks (no-op when no
        # trace session is active).
        self.sim.tracer = tracer_for(
            self.sim, label=f"upc {self.backend.label} x{threads}"
        )
        if self.sim.tracer.enabled:
            for t in range(threads):
                self.sim.tracer.declare_track(thread_track(t))
        self.topo: MachineTopology = self.preset.topology()
        self.stats = StatsCollector(self.sim)
        # Arm the sanitizer (no-op outside a sanitize_session); like the
        # tracer it lives on the simulator so every layer reaches it.
        self.sim.sanitizer = sanitizer_for(self)
        # Arm the cost profiler (no-op outside a profile_session).
        self.sim.profiler = profiler_for(self.sim)
        self.mem = MemorySystem(self.sim, self.topo, self.preset.memory)

        if threads_per_node is None:
            threads_per_node = -(-threads // self.topo.total_nodes)
        if threads_per_node % threads_per_process:
            raise UpcError(
                f"threads_per_node ({threads_per_node}) not divisible by "
                f"threads_per_process ({threads_per_process})"
            )
        self.threads_per_node = threads_per_node
        locations = self._place_threads()
        self.gasnet = GasnetRuntime(
            self.sim, self.topo, self.mem, self.net_params,
            locations, backend=self.backend, stats=self.stats,
        )
        from repro.faults import FaultInjector, FaultPlan

        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        if faults is not None and faults.is_empty:
            faults = None  # empty plan == no faults: stay seed-identical
        self.fault_plan: Optional[FaultPlan] = faults
        self.faults: Optional[FaultInjector] = None
        self._thread_procs: Optional[List] = None
        if faults is not None:
            self.faults = FaultInjector(self.sim, faults, stats=self.stats)
            self.gasnet.attach_faults(self.faults, retry=retry)
            self.faults.on_crash(self._on_node_crash)

        self.world = Team(self.sim, range(threads), name="world")
        from repro.upc.sync import SplitPhaseBarrier

        self.split_barrier = SplitPhaseBarrier(self.sim, threads, name="upc_notify")
        self.gate = CollectiveGate(self.sim, threads)
        self._locks: Dict[object, Any] = {}
        self._shared_heap: List[Any] = []
        self._flags: Dict[object, Event] = {}
        self._contexts = [Upc(self, t) for t in range(threads)]

    # -- placement -------------------------------------------------------

    def _place_threads(self) -> List[ThreadLocation]:
        """Place processes and threads; also fills ``self.masks`` (the
        per-UPC-thread affinity mask that sub-threads inherit)."""
        topo, threads = self.topo, self.threads
        tpn, tpp = self.threads_per_node, self.threads_per_process
        node_of = assign_ranks_to_nodes(topo, threads, per_node=tpn)
        nprocs = threads // tpp
        procs_per_node = tpn // tpp
        proc_masks = self._place_processes(nprocs, procs_per_node)
        locations: List[ThreadLocation] = []
        self.masks: List[AffinityMask] = []
        per_node_proc: Dict[int, int] = {}
        for p in range(nprocs):
            mask = proc_masks[p]
            node = node_of[p * tpp]
            local_proc = per_node_proc.get(node, 0)
            per_node_proc[node] = local_proc + 1
            ordered = subthread_pus(topo, mask, len(mask.pus))
            if self.binding == "unbound":
                # distinct start PUs for co-resident unbound processes
                start = (local_proc * tpp) % len(ordered)
                ordered = ordered[start:] + ordered[:start]
            pus = [ordered[i % len(ordered)] for i in range(tpp)]
            for i, pu in enumerate(pus):
                t = p * tpp + i
                locations.append(ThreadLocation(t, node_of[t], pu, process_id=p))
                self.masks.append(mask)
        return locations

    def _place_processes(self, nprocs: int, procs_per_node: int) -> List[AffinityMask]:
        """One affinity mask per OS process, by binding policy.

        * ``compact`` — one core's PUs per process (cores first, SMT
          siblings on oversubscription), pure-UPC style.
        * ``sockets`` — numactl round-robin over sockets; processes
          sharing a socket partition its cores so their sub-threads never
          collide.
        * ``unbound`` — the whole node; first-touch then lands all of a
          process's memory on its (arbitrary) starting socket, the
          Table 4.1 anti-pattern.
        """
        topo = self.topo
        node_of = assign_ranks_to_nodes(topo, nprocs, per_node=procs_per_node)
        if self.binding == "compact":
            # one core's PU per process, distributing consecutive local
            # ranks round-robin over sockets — the thesis pins processes
            # "cyclically ... on independent ccNUMA nodes (CPU sockets)
            # using numactl by default" (§4.3.2)
            masks = []
            per_node_count: Dict[int, int] = {}
            nsock = topo.spec.node.sockets
            cps = topo.spec.node.cores_per_socket
            for p in range(nprocs):
                node = topo.nodes[node_of[p]]
                lr = per_node_count.get(node.index, 0)
                per_node_count[node.index] = lr + 1
                sock_slot = lr % nsock
                core_slot = (lr // nsock) % cps
                smt = lr // (nsock * cps)
                socket = topo.sockets[node.socket_indices[sock_slot]]
                core = topo.cores[socket.core_indices[core_slot]]
                if smt >= len(core.pu_indices):
                    raise UpcError(
                        f"node {node.index} oversubscribed: {lr + 1} processes "
                        f"for {len(node.pu_indices)} PUs"
                    )
                masks.append(AffinityMask((core.pu_indices[smt],)))
            return masks
        if self.binding == "unbound":
            masks = []
            per_node_count = {}
            for p in range(nprocs):
                node = topo.nodes[node_of[p]]
                lr = per_node_count.get(node.index, 0)
                per_node_count[node.index] = lr + 1
                # OS lands the process anywhere; model round-robin start PU
                # but allow migration over the whole node.
                pus = list(node.pu_indices)
                start = pus[lr % len(pus)]
                ordered = (start,) + tuple(pu for pu in pus if pu != start)
                masks.append(AffinityMask(ordered))
            return masks
        if self.binding != "sockets":
            raise UpcError(f"unknown binding {self.binding!r}")

        # sockets: round-robin, partitioning each socket's cores among the
        # processes that land on it.
        sockets_per_node = topo.spec.node.sockets
        by_socket: Dict[int, list] = {}
        sock_of_proc: List[int] = []
        per_node_count = {}
        for p in range(nprocs):
            node = topo.nodes[node_of[p]]
            lr = per_node_count.get(node.index, 0)
            per_node_count[node.index] = lr + 1
            sock = node.socket_indices[lr % sockets_per_node]
            sock_of_proc.append(sock)
            by_socket.setdefault(sock, []).append(p)
        masks: List[Optional[AffinityMask]] = [None] * nprocs
        for sock, procs in by_socket.items():
            socket = topo.sockets[sock]
            cores = list(socket.core_indices)
            k = len(procs)
            if k <= len(cores):
                # contiguous chunks of cores per process
                chunk = len(cores) // k
                extra = len(cores) % k
                pos = 0
                for i, p in enumerate(procs):
                    take = chunk + (1 if i < extra else 0)
                    my_cores = cores[pos:pos + take]
                    pos += take
                    pus = tuple(
                        pu for c in my_cores for pu in topo.cores[c].pu_indices
                    )
                    masks[p] = AffinityMask(pus)
            else:
                # more processes than cores: round-robin PUs
                pus = list(socket.pu_indices)
                for i, p in enumerate(procs):
                    masks[p] = AffinityMask((pus[i % len(pus)],))
        return [m for m in masks]  # type: ignore[return-value]

    # -- fault handling ----------------------------------------------------

    def dead_threads(self) -> set:
        """UPC thread ids living on crashed nodes (empty without faults)."""
        if self.faults is None:
            return set()
        return {
            loc.thread_id
            for loc in self.gasnet.locations
            if loc.node in self.faults.dead_nodes
        }

    def _on_node_crash(self, crash) -> None:
        dead = [
            loc.thread_id
            for loc in self.gasnet.locations
            if loc.node == crash.node
        ]
        if self._thread_procs is not None:
            for t in dead:
                proc = self._thread_procs[t]
                if not proc.done:
                    proc.kill()
                    self.stats.count(names.FAULTS_THREADS_KILLED)
        # Lock recovery: break locks whose holder died so survivors
        # queued at the home are granted instead of waiting forever.
        dead_set = set(dead)
        for lock in self._locks.values():
            if lock.break_dead_holder(dead_set):
                self.stats.count(names.FAULTS_LOCKS_RECOVERED)
        # Barrier recovery: the world barrier and the split-phase pair
        # stop counting the dead, releasing survivors blocked there.
        # (Live threads < 1 means the whole job is gone; nothing to do.)
        alive = self.threads - len(self.dead_threads())
        for t in dead:
            if alive >= 1 and self.world.drop_dead(t):
                self.stats.count(names.FAULTS_BARRIER_SEATS_DROPPED)
            self.split_barrier.mark_dead(t)
        sanitizer = self.sim.sanitizer
        if sanitizer.enabled:
            # Dead threads are excused from collective-matching checks.
            for t in dead:
                sanitizer.mark_dead(t)

    # -- execution ---------------------------------------------------------

    def run(self, main: Callable, *args: Any, **kwargs: Any) -> ProgramResult:
        """Run ``main(upc, *args, **kwargs)`` on every thread to completion."""
        procs = []
        for t in range(self.threads):
            gen = main(self._contexts[t], *args, **kwargs)
            procs.append(self.sim.spawn(gen, name=f"upc{t}"))
        self._thread_procs = procs
        self.sim.run()
        if self.sim.tracer.enabled:
            # Close still-open spans (transfers cut short by kills) so the
            # trace is complete even when the checks below raise.
            self.sim.tracer.finalize(self.sim.now)
        sanitizer = self.sim.sanitizer
        if sanitizer.enabled:
            # End-of-run matching checks must run before the deadlock /
            # failure raises below: the findings usually explain them.
            sanitizer.finalize()
        self.sim.raise_failures()
        unfinished = [p.name for p in procs if not p.done]
        if unfinished:
            stalled = [p.name for p in self.sim.stalled_processes()]
            raise UpcError(
                f"deadlock: threads never finished: {unfinished[:8]} "
                f"({len(unfinished)} total); stalled processes: "
                f"{stalled[:12]} ({len(stalled)} total)"
            )
        leaked = self.stats.open_timers()
        if leaked:
            raise UpcError(
                "phase timers still open at end of run — their elapsed "
                "time was never recorded (a thread died mid-phase?): "
                f"{leaked!r}"
            )
        return ProgramResult(
            elapsed=self.sim.now,
            returns=[p.result for p in procs],
            stats=self.stats,
            sim=self.sim,
            findings=list(sanitizer.findings),
        )

    def context(self, thread: int) -> "Upc":
        return self._contexts[thread]

    # -- services shared by contexts ----------------------------------------

    def barrier_cost(self) -> float:
        nodes_in_use = max(1, -(-self.threads // self.threads_per_node))
        rounds = math.ceil(math.log2(nodes_in_use)) if nodes_in_use > 1 else 0
        return BARRIER_BASE_COST + rounds * BARRIER_NETWORK_ROUND

    def get_lock(self, key: object, affinity_thread: int = 0):
        from repro.upc.sync import UpcLock

        lock = self._locks.get(key)
        if lock is None:
            lock = UpcLock(self, key=key, affinity_thread=affinity_thread)
            self._locks[key] = lock
        return lock

    def flag(self, key: object) -> Event:
        """One-shot point-to-point flag (collectives' pairwise rendezvous).

        Both the signaller and the waiter may create the flag; keys must
        be unique per use (collectives embed a per-team op counter).
        """
        ev = self._flags.get(key)
        if ev is None:
            ev = self._flags[key] = Event(self.sim)
        return ev


class Upc:
    """Per-thread UPC context — what a UPC program sees.

    All blocking operations are simulated generators used with
    ``yield from``; non-blocking ops return handles.
    """

    def __init__(self, program: UpcProgram, mythread: int):
        self.program = program
        self.MYTHREAD = mythread
        self.THREADS = program.threads
        self.sim = program.sim
        self.stats = program.stats
        self.gasnet = program.gasnet
        self.mem = program.mem
        self.topo = program.topo
        self.rng = SplittableRNG(seed=program.seed).child(mythread)
        self.location = program.gasnet.location(mythread)
        self.pu = self.location.pu

    # -- identity / queries ------------------------------------------------

    @property
    def my_socket(self) -> int:
        return self.gasnet.segment_socket(self.MYTHREAD)

    @property
    def my_node(self) -> int:
        return self.location.node

    def wtime(self) -> float:
        return self.sim.now

    def peers_sharing_memory(self) -> tuple:
        """Castability query: threads whose memory I can read directly."""
        return self.gasnet.supernode_peers(self.MYTHREAD)

    # -- synchronization ------------------------------------------------------

    def barrier(self) -> Generator:
        """``upc_barrier``: software cost + world-team arrival."""
        yield self.mem.compute(self.pu, self.program.barrier_cost())
        yield from self.program.world.barrier(self.MYTHREAD)

    def barrier_notify(self) -> Generator:
        """``upc_notify``: signal arrival, return immediately."""
        yield self.mem.compute(self.pu, BARRIER_BASE_COST)
        self.program.split_barrier.notify(self.MYTHREAD)

    def barrier_wait(self) -> Generator:
        """``upc_wait``: block until every thread has notified this phase."""
        yield self.mem.compute(self.pu, self.program.barrier_cost())
        tracer = self.sim.tracer
        if not tracer.enabled:
            yield self.program.split_barrier.wait(self.MYTHREAD)
            sanitizer = self.sim.sanitizer
            if sanitizer.enabled:
                sanitizer.wait_join(self.MYTHREAD)
            return
        span = tracer.begin(
            thread_track(self.MYTHREAD), "upc_wait", names.CAT_BARRIER
        )
        try:
            yield self.program.split_barrier.wait(self.MYTHREAD)
        finally:
            tracer.end(
                span, args={"releaser": self.program.split_barrier.last_releaser}
            )
        sanitizer = self.sim.sanitizer
        if sanitizer.enabled:
            sanitizer.wait_join(self.MYTHREAD)

    def lock(self, key: object, affinity_thread: int = 0):
        """Get (creating on first use) the named global lock."""
        return self.program.get_lock(key, affinity_thread)

    # -- compute & memory cost charging ---------------------------------------

    def compute(self, seconds: float) -> Generator:
        """Execute ``seconds`` of single-thread CPU work."""
        yield self.mem.compute(self.pu, seconds)

    def compute_flops(self, flops: float, efficiency: float = 0.25) -> Generator:
        """Execute a flop count at a sustained fraction of core peak."""
        rate = self.mem.params.core_flops * efficiency
        yield self.mem.compute(self.pu, flops / rate)

    def local_stream(self, bytes_read: float, bytes_written: float) -> Generator:
        """Stream traffic against this thread's own segment."""
        yield from self.mem.stream(self.pu, bytes_read, bytes_written, self.my_socket)

    def stream_from(
        self, owner_thread: int, bytes_read: float, bytes_written: float
    ) -> Generator:
        """Stream traffic against ``owner_thread``'s segment (must share a node)."""
        home = self.gasnet.segment_socket(owner_thread)
        yield from self.mem.stream(self.pu, bytes_read, bytes_written, home)

    def charge_shared_accesses(self, accesses: int) -> Generator:
        """Shared-pointer translation cost for ``accesses`` dereferences."""
        yield self.mem.charge_translation(self.pu, accesses)

    # -- point-to-point memory ops ----------------------------------------------

    def memput(self, dst_thread: int, nbytes: float, privatized: bool = False) -> Generator:
        yield from extended.put(self.gasnet, self.MYTHREAD, dst_thread, nbytes, privatized)

    def memget(self, src_thread: int, nbytes: float, privatized: bool = False) -> Generator:
        yield from extended.get(self.gasnet, self.MYTHREAD, src_thread, nbytes, privatized)

    def memput_nb(self, dst_thread: int, nbytes: float, privatized: bool = False) -> Handle:
        return extended.put_nb(self.gasnet, self.MYTHREAD, dst_thread, nbytes, privatized)

    def memget_nb(self, src_thread: int, nbytes: float, privatized: bool = False) -> Handle:
        return extended.get_nb(self.gasnet, self.MYTHREAD, src_thread, nbytes, privatized)

    def can_cast(self, other_thread: int) -> bool:
        """True when ``bupc_cast`` of a pointer into other's memory works."""
        return self.gasnet.can_bypass(self.MYTHREAD, other_thread)

    # -- collective runtime services ----------------------------------------------

    def collective(self, tag: str, payload: Any, combine: Callable[[dict], Any]) -> Generator:
        """Low-level barrier-with-data (used by allocs and group splits)."""
        sanitizer = self.sim.sanitizer
        if sanitizer.enabled:
            sanitizer.barrier_arrive(
                ("collective", tag), self.MYTHREAD, range(self.THREADS)
            )
        ev = self.program.gate.submit(tag, self.MYTHREAD, payload, combine)
        result = yield ev
        if sanitizer.enabled:
            sanitizer.barrier_pass(("collective", tag), self.MYTHREAD)
        return result

    def all_alloc(self, nelems: int, dtype=None, blocksize: Optional[int] = None,
                  backing: str = "real"):
        """``upc_all_alloc``: collectively create a shared array (generator)."""
        from repro.upc.shared import SharedArray

        tag = f"all_alloc:{len(self.program._shared_heap)}:gen"

        def combine(payloads: dict):
            spec = payloads[min(payloads)]
            arr = SharedArray(
                self.program, nelems=spec["nelems"], dtype=spec["dtype"],
                blocksize=spec["blocksize"], backing=spec["backing"],
            )
            self.program._shared_heap.append(arr)
            return arr

        spec = {
            "nelems": nelems, "dtype": dtype,
            "blocksize": blocksize, "backing": backing,
        }
        arr = yield from self.collective(tag, spec, combine)
        return arr
