"""UPC synchronization: locks and the split-phase barrier.

``upc_lock_t`` objects live in shared memory with affinity to one thread;
acquiring from elsewhere is an active-message round to that thread (or a
cache-coherent atomic round when the contender shares memory with the
lock's home).  Contended waiters queue FIFO at the home, like the
Berkeley runtime's list locks.

:class:`SplitPhaseBarrier` implements ``upc_notify`` / ``upc_wait``: a
thread signals arrival without blocking, computes, and only blocks in
``wait`` — the language-level tool for hiding barrier latency that the
overlap implementations build on.
"""

from __future__ import annotations

from typing import Generator, List

from repro.errors import UpcError
from repro.obs import names
from repro.obs.tracer import thread_track
from repro.sim import Event, Resource, Simulator

__all__ = ["UpcLock", "SplitPhaseBarrier"]


class UpcLock:
    """A global lock with affinity (see module docstring).

    Obtain instances through ``upc.lock(key, affinity_thread=...)`` so
    that all threads share one object per key.
    """

    def __init__(self, program, key: object, affinity_thread: int = 0):
        if not 0 <= affinity_thread < program.threads:
            raise UpcError(f"lock affinity thread {affinity_thread} out of range")
        self.program = program
        self.key = key
        self.affinity_thread = affinity_thread
        self._resource = Resource(program.sim, 1, name=f"upc_lock:{key}")
        self._holder = None
        self._hold_span = None
        self.contended_acquires = 0

    @property
    def holder(self):
        return self._holder

    def acquire(self, upc) -> Generator:
        """Simulated generator: blocking ``upc_lock``."""
        # The acquisition request travels to the lock's home...
        yield from upc.gasnet.am_roundtrip(upc.MYTHREAD, self.affinity_thread)
        # ...and the contender queues there until granted.
        grant = self._resource.acquire()
        if not grant.done:
            self.contended_acquires += 1
        yield grant
        self._holder = upc.MYTHREAD
        sanitizer = self.program.sim.sanitizer
        if sanitizer.enabled:
            # acquire joins the previous releaser's clock: accesses under
            # the lock are ordered across threads.
            sanitizer.lock_acquire(self.key, upc.MYTHREAD)
        tracer = self.program.sim.tracer
        if tracer.enabled:
            self._hold_span = tracer.begin(
                thread_track(upc.MYTHREAD), f"hold {self.key}", names.CAT_LOCK
            )

    def release(self, upc) -> Generator:
        """Simulated generator: ``upc_unlock``."""
        if self._holder != upc.MYTHREAD:
            raise UpcError(
                f"thread {upc.MYTHREAD} releasing lock {self.key!r} held by "
                f"{self._holder}"
            )
        self._holder = None
        sanitizer = self.program.sim.sanitizer
        if sanitizer.enabled:
            sanitizer.lock_release(self.key, upc.MYTHREAD)
        # Releasing notifies the home; a shared-memory round when local.
        # The hand-off to queued waiters must happen even if the round
        # fails (dead home) or the releaser is killed mid-round —
        # otherwise the lock is leaked and every queued thief deadlocks.
        try:
            yield from upc.gasnet.am_roundtrip(upc.MYTHREAD, self.affinity_thread)
        finally:
            self._resource.release()
            self._end_hold_span()

    def abandon(self, thread: int) -> bool:
        """Force-release ``thread``'s hold without the unlock AM round.

        The failover path: a holder that cannot reach the lock's home
        (dead affinity thread) still must hand the lock to queued
        waiters, or they block forever.
        """
        if self._holder != thread:
            return False
        self._holder = None
        self._resource.release()
        self._end_hold_span()
        return True

    def _end_hold_span(self) -> None:
        if self._hold_span is not None:
            self.program.sim.tracer.end(self._hold_span)
            self._hold_span = None

    def break_dead_holder(self, dead_threads: set) -> bool:
        """Crash recovery: force-release when the holder fail-stopped.

        Without this, survivors queued at the lock's home would wait
        forever for a release that can never come.  Models the runtime
        reclaiming a lock after its owner's node is declared dead.
        """
        if self._holder is None or self._holder not in dead_threads:
            return False
        return self.abandon(self._holder)


class SplitPhaseBarrier:
    """``upc_notify`` / ``upc_wait``: a barrier you can compute through.

    Each thread must strictly alternate ``notify`` then ``wait`` (UPC
    semantics; violations raise).  A phase's release event fires when the
    last party notifies; waiters that arrive afterwards pass straight
    through.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = ""):
        if parties < 1:
            raise UpcError(f"parties must be >= 1, got {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name or "split-barrier"
        #: per-thread phase: even = expecting notify, odd = expecting wait
        self._thread_state: List[int] = [0] * parties
        self._notified = 0
        self._phase = 0
        self._release = Event(sim)
        self._dead: set = set()
        #: live participants the phase waits for (parties minus the dead)
        self._required = parties
        #: Thread whose notify released the most recent phase (None when a
        #: :meth:`mark_dead` released it).  Read by observability to
        #: attribute split-phase waits to the straggler.
        self.last_releaser = None

    def notify(self, thread: int) -> None:
        """Non-blocking arrival (``upc_notify``)."""
        self._check_thread(thread)
        sanitizer = self.sim.sanitizer
        if self._thread_state[thread] % 2 != 0:
            if sanitizer.enabled:
                sanitizer.record_collective_misuse(
                    thread, "upc_notify before matching upc_wait"
                )
            raise UpcError(
                f"thread {thread}: upc_notify before matching upc_wait"
            )
        if sanitizer.enabled:
            sanitizer.notify(thread)
        self._thread_state[thread] += 1
        self._notified += 1
        self._maybe_release(releaser=thread)

    def mark_dead(self, thread: int) -> bool:
        """Fail-stop a participant: phases stop waiting for its notify.

        If the dead thread had notified the current phase, its
        contribution is withdrawn (it can never wait, and the next phase
        must not count it).  Survivors blocked in ``wait`` are released
        when the dead thread was the last one missing.  Returns False
        when already marked.
        """
        self._check_thread(thread)
        if thread in self._dead:
            return False
        self._dead.add(thread)
        self._required -= 1
        state = self._thread_state[thread]
        # Withdraw its notify only if it belongs to the *current* phase;
        # a notify for an already-released phase was consumed long ago.
        if state % 2 == 1 and state // 2 == self._phase:
            self._notified -= 1
        self._maybe_release(releaser=None)
        return True

    def _maybe_release(self, releaser=None) -> None:
        if self._required > 0 and self._notified == self._required:
            self.last_releaser = releaser
            release, self._release = self._release, Event(self.sim)
            self._notified = 0
            self._phase += 1
            release.succeed(self._phase - 1)

    def wait(self, thread: int) -> Event:
        """Completion event for this thread's phase (``upc_wait``).

        Already complete if every other thread has notified.
        """
        self._check_thread(thread)
        sanitizer = self.sim.sanitizer
        if self._thread_state[thread] % 2 != 1:
            if sanitizer.enabled:
                sanitizer.record_collective_misuse(
                    thread, "upc_wait without upc_notify"
                )
            raise UpcError(f"thread {thread}: upc_wait without upc_notify")
        if sanitizer.enabled:
            sanitizer.wait_begin(thread)
        my_phase = self._thread_state[thread] // 2
        self._thread_state[thread] += 1
        if my_phase < self._phase:
            done = Event(self.sim)
            done.succeed(my_phase)
            return done
        # Per-waiter event chained off the shared release (a killed
        # waiter must not cancel the phase out from under the others).
        waiter = Event(self.sim)
        self._release.add_callback(lambda ev: waiter.succeed(ev.value))
        return waiter

    def _check_thread(self, thread: int) -> None:
        if not 0 <= thread < self.parties:
            raise UpcError(f"thread {thread} out of range for {self.parties}")
