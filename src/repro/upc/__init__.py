"""The UPC/PGAS runtime on the simulated cluster.

This package models Unified Parallel C's memory and execution model
(Fig 2.4): SPMD threads with private memory plus a partitioned global
address space, shared arrays with affinity and blocking factors, shared
pointers (with their translation cost and the ``bupc_cast`` privatization
extension), barriers/locks, collectives, ``upc_forall``, and the thesis's
Chapter-3 *thread groups* extension.

Programs are written as generator functions taking a per-thread
:class:`~repro.upc.runtime.Upc` context::

    def main(upc):
        if upc.MYTHREAD == 0:
            ...
        yield from upc.barrier()

and launched with :class:`~repro.upc.runtime.UpcProgram`.
"""

from repro.upc.runtime import ProgramResult, Upc, UpcProgram
from repro.upc.shared import SharedArray
from repro.upc.pointers import SharedPointer, PointerTable
from repro.upc.sync import SplitPhaseBarrier, UpcLock
from repro.upc.groups import ThreadGroup
from repro.upc import collectives, forall

__all__ = [
    "PointerTable",
    "ProgramResult",
    "SharedArray",
    "SharedPointer",
    "SplitPhaseBarrier",
    "ThreadGroup",
    "Upc",
    "UpcLock",
    "UpcProgram",
    "collectives",
    "forall",
]
