"""UPC collective operations over teams.

All functions here are *SPMD collectives*: every member of the team calls
the same function in the same order, passing its own ``upc`` context.
Pairwise dependencies are expressed through one-shot program flags keyed
by the team's per-op tag, so timing emerges from the same fabric the
point-to-point operations use.

``exchange`` (the all-to-all of NAS FT) is implemented with point-to-point
memory copies in a staggered peer order — the thesis's implementations use
p2p ``upc_memcpy`` rather than library collectives (§3.3.3, §4.3.3.1).
The ``reduce``/``broadcast`` trees are binomial, matching the scale of
log-P software collectives.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import UpcError
from repro.gasnet.team import Team

__all__ = ["broadcast", "reduce", "allreduce", "exchange", "gather", "scatter"]


def broadcast(upc, team: Team, nbytes: float, root_rank: int = 0, value: Any = None):
    """Binomial-tree broadcast of ``nbytes`` (and optionally a value).

    Returns the broadcast value on every member.
    """
    size = len(team)
    me = team.rank(upc.MYTHREAD)
    if not 0 <= root_rank < size:
        raise UpcError(f"root rank {root_rank} out of range for team of {size}")
    tag = team.op_tag(upc.MYTHREAD)
    rel = (me - root_rank) % size
    sanitizer = upc.sim.sanitizer

    box = upc.program.flag((tag, "value"))
    if rel == 0 and not box.done:
        if sanitizer.enabled:
            sanitizer.flag_signal((tag, "value"), upc.MYTHREAD)
        box.succeed(value)

    # Standard binomial tree: receive from the parent below my lowest
    # set bit, then fan out to children at decreasing strides.
    mask = 1
    while mask < size:
        if rel & mask:
            flag = upc.program.flag((tag, rel))
            yield flag
            if sanitizer.enabled:
                sanitizer.flag_join((tag, rel), upc.MYTHREAD)
            upc.program._flags.pop((tag, rel), None)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child_rel = rel + mask
        if child_rel < size:
            dst = team.thread_at((child_rel + root_rank) % size)
            yield from upc.memput(dst, nbytes)
            if sanitizer.enabled:
                sanitizer.flag_signal((tag, child_rel), upc.MYTHREAD)
            upc.program.flag((tag, child_rel)).succeed()
        mask >>= 1

    result = yield box
    if sanitizer.enabled:
        sanitizer.flag_join((tag, "value"), upc.MYTHREAD)
    return result


def reduce(
    upc,
    team: Team,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: float = 8.0,
    root_rank: int = 0,
):
    """Binomial-tree reduction to ``root_rank``; returns the result there
    (``None`` elsewhere)."""
    size = len(team)
    me = team.rank(upc.MYTHREAD)
    tag = team.op_tag(upc.MYTHREAD)
    rel = (me - root_rank) % size
    sanitizer = upc.sim.sanitizer

    acc = value
    bit = 1
    while bit < size:
        if rel & bit:
            # Send my accumulator to the partner below and stop.
            dst_rel = rel & ~bit
            dst = team.thread_at((dst_rel + root_rank) % size)
            yield from upc.memput(dst, nbytes)
            flag = upc.program.flag((tag, rel))
            if sanitizer.enabled:
                sanitizer.flag_signal((tag, rel), upc.MYTHREAD)
            flag.succeed(acc)
            return None
        partner_rel = rel | bit
        if partner_rel < size:
            flag = upc.program.flag((tag, partner_rel))
            other = yield flag
            if sanitizer.enabled:
                sanitizer.flag_join((tag, partner_rel), upc.MYTHREAD)
            upc.program._flags.pop((tag, partner_rel), None)
            acc = op(acc, other)
        bit <<= 1
    return acc


def allreduce(
    upc,
    team: Team,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: float = 8.0,
):
    """Reduce to rank 0 then broadcast; returns the result on every member."""
    partial = yield from reduce(upc, team, value, op, nbytes=nbytes, root_rank=0)
    result = yield from broadcast(upc, team, nbytes, root_rank=0, value=partial)
    return result


def exchange(
    upc,
    team: Team,
    nbytes_per_pair: float,
    asynchronous: bool = False,
    privatized: bool = False,
    barrier: bool = True,
):
    """All-to-all: every member puts ``nbytes_per_pair`` to every other.

    Peer order is staggered (``(rank + i) % size``) to avoid hot spots.
    ``asynchronous=True`` issues all puts non-blocking then synchronizes
    (the Berkeley ``upc_memput_async`` pattern of Fig 3.4b); otherwise
    puts are blocking, the Fortran-MPI-like split-phase pattern.
    ``barrier=True`` closes with a team barrier so the exchange is usable
    directly as a synchronizing collective.
    """
    size = len(team)
    me = team.rank(upc.MYTHREAD)
    if asynchronous:
        handles = []
        for i in range(1, size):
            dst = team.thread_at((me + i) % size)
            priv = privatized and upc.can_cast(dst)
            handles.append(upc.memput_nb(dst, nbytes_per_pair, privatized=priv))
        for h in handles:
            yield from h.wait()
    else:
        for i in range(1, size):
            dst = team.thread_at((me + i) % size)
            priv = privatized and upc.can_cast(dst)
            yield from upc.memput(dst, nbytes_per_pair, privatized=priv)
    if barrier:
        yield from team.barrier(upc.MYTHREAD)


def gather(upc, team: Team, nbytes: float, root_rank: int = 0) -> Generator:
    """Every member puts its contribution to the root (flat gather)."""
    me = team.rank(upc.MYTHREAD)
    root = team.thread_at(root_rank)
    tag = team.op_tag(upc.MYTHREAD)
    sanitizer = upc.sim.sanitizer
    if me != root_rank:
        yield from upc.memput(root, nbytes)
        if sanitizer.enabled:
            sanitizer.flag_signal((tag, me), upc.MYTHREAD)
        upc.program.flag((tag, me)).succeed()
    else:
        for r in range(len(team)):
            if r == root_rank:
                continue
            flag = upc.program.flag((tag, r))
            yield flag
            if sanitizer.enabled:
                sanitizer.flag_join((tag, r), upc.MYTHREAD)
            upc.program._flags.pop((tag, r), None)


def scatter(upc, team: Team, nbytes: float, root_rank: int = 0) -> Generator:
    """Root puts a distinct ``nbytes`` chunk to every member (flat scatter)."""
    me = team.rank(upc.MYTHREAD)
    tag = team.op_tag(upc.MYTHREAD)
    sanitizer = upc.sim.sanitizer
    if me == root_rank:
        for r in range(len(team)):
            if r == root_rank:
                continue
            yield from upc.memput(team.thread_at(r), nbytes)
            if sanitizer.enabled:
                sanitizer.flag_signal((tag, r), upc.MYTHREAD)
            upc.program.flag((tag, r)).succeed()
    else:
        flag = upc.program.flag((tag, me))
        yield flag
        if sanitizer.enabled:
            sanitizer.flag_join((tag, me), upc.MYTHREAD)
        upc.program._flags.pop((tag, me), None)
