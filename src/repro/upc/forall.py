"""``upc_forall``: affinity-driven work distribution.

``upc_forall(init; cond; incr; affinity)`` runs each iteration on the
thread matching the affinity expression.  Here it is an index iterator —
cost-free, like the C construct's loop-control — used as::

    for i in forall.indices(upc, 0, n, affinity=lambda i: A.owner(i)):
        ...
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Union

from repro.errors import UpcError
from repro.upc.shared import SharedArray

__all__ = ["indices"]

AffinitySpec = Union[None, int, SharedArray, Callable[[int], int]]


def indices(
    upc,
    start: int,
    stop: int,
    step: int = 1,
    affinity: AffinitySpec = None,
) -> Iterator[int]:
    """Iterate the loop indices this thread owns.

    ``affinity`` may be:

    * ``None`` — round-robin by index (``i % THREADS == MYTHREAD``), the
      idiomatic ``upc_forall(...; i)``;
    * an ``int`` — that thread runs *every* iteration (``continue``-style
      affinity to a fixed thread);
    * a :class:`SharedArray` — iterations follow element affinity
      (``upc_forall(...; &A[i])``);
    * a callable ``i -> thread``.
    """
    if step == 0:
        raise UpcError("step must be nonzero")
    me, nthreads = upc.MYTHREAD, upc.THREADS
    if isinstance(affinity, SharedArray):
        owner = affinity.owner
    elif isinstance(affinity, int):
        if not 0 <= affinity < nthreads:
            raise UpcError(f"affinity thread {affinity} out of range")
        owner = None
    elif callable(affinity):
        owner = affinity
    elif affinity is None:
        owner = None
    else:
        raise UpcError(f"bad affinity spec {affinity!r}")

    for i in range(start, stop, step):
        if affinity is None:
            if i % nthreads == me:
                yield i
        elif isinstance(affinity, int):
            if affinity == me:
                yield i
        else:
            if owner(i) == me:
                yield i
