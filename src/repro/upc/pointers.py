"""Shared pointers, privatization (``bupc_cast``) and pointer tables.

A UPC *pointer-to-shared* carries (thread, phase, address); every
dereference pays an address-translation cost in the runtime (§3.1).  The
castability extension of [38] lets a program convert a pointer-to-shared
into a plain local pointer when the target memory is load/store-reachable
— eliminating the translation cost entirely.  Table 3.1's 3.2 → 23.2 GB/s
jump is exactly this.

:class:`PointerTable` reproduces the idiom of §3.3: at startup each
thread builds a table of privatized base pointers for every reachable
peer so later accesses never pay translation or lookup.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.errors import UpcError
from repro.upc.shared import SharedArray

__all__ = ["SharedPointer", "LocalPointer", "PointerTable"]


class SharedPointer:
    """A pointer-to-shared: array + element index, with costed dereference."""

    __slots__ = ("array", "index")

    def __init__(self, array: SharedArray, index: int = 0):
        array._check_index(index)
        self.array = array
        self.index = index

    @property
    def owner(self) -> int:
        return self.array.owner(self.index)

    @property
    def phase(self) -> int:
        """Position within the owner's current block (UPC pointer phase)."""
        return self.index % self.array.blocksize

    def __add__(self, offset: int) -> "SharedPointer":
        index = self.index + offset
        if not 0 <= index < self.array.nelems:
            raise UpcError(
                f"shared-pointer arithmetic out of bounds: {self.index} + "
                f"{offset} outside [0, {self.array.nelems})"
            )
        # The constructor re-derives phase from the new index, so phase
        # stays consistent with the blocksize across arithmetic.
        return SharedPointer(self.array, index)

    def __sub__(self, offset: int) -> "SharedPointer":
        return self.__add__(-offset)

    def get(self, upc) -> Generator:
        """Costed dereference (read) through the shared pointer."""
        value = yield from self.array.read_elem(upc, self.index, privatized=False)
        return value

    def put(self, upc, value) -> Generator:
        """Costed dereference (write) through the shared pointer."""
        yield from self.array.write_elem(upc, self.index, value, privatized=False)

    def privatize(self, upc) -> "LocalPointer":
        """``bupc_cast``: convert to a plain local pointer.

        Only legal when the calling thread shares memory with the target
        (same process, or same PSHM supernode).  The cast itself is free
        — the expensive mmap/discovery already happened at startup.
        """
        if not upc.can_cast(self.owner):
            raise UpcError(
                f"thread {upc.MYTHREAD} cannot cast a pointer into thread "
                f"{self.owner}'s memory (no shared-memory path)"
            )
        return LocalPointer(self.array, self.index, upc.MYTHREAD,
                            base_owner=self.owner)

    def __repr__(self) -> str:
        return f"<SharedPointer idx={self.index} owner={self.owner} phase={self.phase}>"


class LocalPointer:
    """A privatized pointer: direct load/store, no translation cost.

    ``base_owner`` remembers which thread's block the cast targeted;
    arithmetic carries it along so the sanitizer can flag dereferences
    that wandered across an affinity boundary (a cast is only valid
    within one thread's contiguous block — the next block belongs to a
    different thread whose segment may be mapped elsewhere).
    """

    __slots__ = ("array", "index", "holder", "base_owner")

    def __init__(self, array: SharedArray, index: int, holder: int,
                 base_owner: int = None):
        self.array = array
        self.index = index
        self.holder = holder
        self.base_owner = array.owner(index) if base_owner is None else base_owner

    @property
    def owner(self) -> int:
        return self.array.owner(self.index)

    def __add__(self, offset: int) -> "LocalPointer":
        self.array._check_index(self.index + offset)
        return LocalPointer(self.array, self.index + offset, self.holder,
                            base_owner=self.base_owner)

    def __sub__(self, offset: int) -> "LocalPointer":
        return self.__add__(-offset)

    def _check_deref(self, upc, op: str) -> None:
        sanitizer = upc.sim.sanitizer
        if sanitizer.enabled:
            sanitizer.on_private_access(
                upc.MYTHREAD, self.array, self.index, self.holder,
                self.base_owner, op,
            )
        owner = self.array.owner(self.index)
        if owner in upc.program.dead_threads():
            raise UpcError(
                f"stale privatized pointer: owner thread {owner} of element "
                f"{self.index} was killed by a fault plan"
            )

    def get(self, upc) -> Generator:
        self._check_deref(upc, "read")
        value = yield from self.array.read_elem(upc, self.index, privatized=True)
        return value

    def put(self, upc, value) -> Generator:
        self._check_deref(upc, "write")
        yield from self.array.write_elem(upc, self.index, value, privatized=True)

    def __repr__(self) -> str:
        return f"<LocalPointer idx={self.index} holder={self.holder}>"


class PointerTable:
    """Per-thread table of privatized segment bases for reachable peers.

    ``table.castable(t)`` answers the neighbourhood query; building the
    table charges one shared-memory round per reachable peer (the paper
    calls the total overhead "negligible" — the heavy lifting happened in
    the runtime's startup memory mapping).
    """

    def __init__(self, thread: int, castable: Dict[int, bool]):
        self.thread = thread
        self._castable = dict(castable)

    @classmethod
    def build(cls, upc) -> Generator:
        """Simulated generator: build the table on the calling thread."""
        castable: Dict[int, bool] = {}
        reachable = 0
        for t in range(upc.THREADS):
            ok = upc.can_cast(t)
            castable[t] = ok
            reachable += ok
        # One coherence round per reachable peer to exchange base addresses.
        yield from upc.compute(reachable * upc.gasnet.backend.shm_roundtrip)
        return cls(upc.MYTHREAD, castable)

    def castable(self, thread: int) -> bool:
        try:
            return self._castable[thread]
        except KeyError:
            raise UpcError(f"thread {thread} unknown to pointer table") from None

    def reachable_peers(self) -> list:
        """Peers (excluding self) with a direct load/store path."""
        return [t for t, ok in self._castable.items() if ok and t != self.thread]
