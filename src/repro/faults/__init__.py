"""Deterministic fault injection for the simulated PGAS stack.

``repro.faults`` turns the reproduction into a platform for studying how
hierarchical parallelism *degrades*: a :class:`FaultPlan` declares node
crashes, NIC degradation windows and per-message loss/corruption; a
:class:`FaultInjector` binds the plan to a run.  The fabric drops or
corrupts messages, GASNet retries with exponential backoff and surfaces
dead peers as :class:`~repro.errors.EndpointFailedError`, and the UTS
driver blacklists dead victims and keeps termination detection correct.

See the "Fault model" section of ``DESIGN.md`` for the layer contract
and determinism guarantees.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LinkDegradation,
    MessageFaultRule,
    NodeCrash,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "MessageFaultRule",
    "NodeCrash",
]
