"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a pure description — node crashes, NIC/link
degradation windows, and per-message loss/corruption rules — with no
reference to a simulator.  Binding a plan to a running stack is the
:class:`~repro.faults.injector.FaultInjector`'s job, which keeps plans
serializable, comparable, and reusable across runs.

Plans can be built programmatically or parsed from the compact spec
grammar the harness CLI accepts (``--faults``)::

    crash:node=1,at=2e-3
    degrade:node=0,start=1e-3,end=4e-3,factor=0.25
    loss:prob=0.05[,src=NODE][,dst=NODE][,start=T][,end=T]
    corrupt:prob=0.02[,src=NODE][,dst=NODE][,start=T][,end=T]
    seed=7

Clauses are separated by ``;``.  All times are simulated seconds; every
random draw comes from a dedicated splitmix64 stream seeded by ``seed``,
so a plan is deterministic and independent of application RNG streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import FaultError

__all__ = ["NodeCrash", "LinkDegradation", "MessageFaultRule", "FaultPlan"]


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` fail-stops at simulated time ``at``.

    Every endpoint on the node goes dark: messages to or from it become
    black holes, and runtimes kill the UPC threads it hosted.
    """

    node: int
    at: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError(f"crash node must be >= 0, got {self.node}")
        if self.at < 0:
            raise FaultError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class LinkDegradation:
    """Node ``node``'s NIC runs at ``factor`` of nominal rate in a window.

    Models a flapping link, cable errors forcing a lower negotiated
    rate, or congestion from a neighbouring job.  ``factor`` multiplies
    the NIC pipes' aggregate bandwidth for ``start <= now < end``.
    """

    node: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError(f"degradation node must be >= 0, got {self.node}")
        if not 0 < self.factor <= 1.0:
            raise FaultError(
                f"degradation factor must be in (0, 1], got {self.factor}"
            )
        if self.start < 0 or self.end <= self.start:
            raise FaultError(
                f"degradation window [{self.start}, {self.end}) is empty"
            )


@dataclass(frozen=True)
class MessageFaultRule:
    """Per-message loss or corruption with probability ``prob``.

    ``kind`` is ``"loss"`` (the message never arrives) or ``"corrupt"``
    (it arrives, fails its checksum, and must be retransmitted).  A rule
    matches a message when the optional source/destination node filters
    and the ``[start, end)`` time window all hold.
    """

    kind: str
    prob: float
    src_node: Optional[int] = None
    dst_node: Optional[int] = None
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.kind not in ("loss", "corrupt"):
            raise FaultError(f"rule kind must be loss|corrupt, got {self.kind!r}")
        if not 0 <= self.prob <= 1:
            raise FaultError(f"probability must be in [0, 1], got {self.prob}")
        if self.start < 0 or self.end <= self.start:
            raise FaultError(f"rule window [{self.start}, {self.end}) is empty")

    def matches(self, src_node: int, dst_node: int, now: float) -> bool:
        if self.src_node is not None and src_node != self.src_node:
            return False
        if self.dst_node is not None and dst_node != self.dst_node:
            return False
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultPlan:
    """One run's complete, deterministic failure schedule."""

    crashes: Tuple[NodeCrash, ...] = ()
    degradations: Tuple[LinkDegradation, ...] = ()
    message_rules: Tuple[MessageFaultRule, ...] = ()
    seed: int = 0

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing — equivalent to no plan.

        Runtimes treat an empty plan exactly like ``faults=None`` so a
        run with an empty plan is bit-identical to the seed behaviour.
        """
        return not (self.crashes or self.degradations or self.message_rules)

    def crash_time(self, node: int) -> Optional[float]:
        times = [c.at for c in self.crashes if c.node == node]
        return min(times) if times else None

    @staticmethod
    def parse(spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``--faults`` spec grammar (see module docstring)."""
        crashes: List[NodeCrash] = []
        degradations: List[LinkDegradation] = []
        rules: List[MessageFaultRule] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            head, _, body = clause.partition(":")
            head = head.strip()
            kv = _parse_kv(body, clause)
            if head == "crash":
                crashes.append(NodeCrash(
                    node=_take_int(kv, "node", clause),
                    at=_take_float(kv, "at", clause),
                ))
            elif head == "degrade":
                degradations.append(LinkDegradation(
                    node=_take_int(kv, "node", clause),
                    start=_take_float(kv, "start", clause),
                    end=_take_float(kv, "end", clause),
                    factor=_take_float(kv, "factor", clause),
                ))
            elif head in ("loss", "corrupt"):
                rules.append(MessageFaultRule(
                    kind=head,
                    prob=_take_float(kv, "prob", clause),
                    src_node=_take_int(kv, "src", clause, default=None),
                    dst_node=_take_int(kv, "dst", clause, default=None),
                    start=_take_float(kv, "start", clause, default=0.0),
                    end=_take_float(kv, "end", clause, default=math.inf),
                ))
            else:
                raise FaultError(
                    f"unknown fault clause {head!r} in {clause!r} "
                    "(expected crash|degrade|loss|corrupt|seed=N)"
                )
            if kv:
                raise FaultError(
                    f"unknown key(s) {sorted(kv)} in fault clause {clause!r}"
                )
        return FaultPlan(
            crashes=tuple(crashes),
            degradations=tuple(degradations),
            message_rules=tuple(rules),
            seed=seed,
        )


def _parse_kv(body: str, clause: str) -> dict:
    kv = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise FaultError(f"expected key=value, got {part!r} in {clause!r}")
        kv[key.strip()] = value.strip()
    return kv


_MISSING = object()


def _take_float(kv: dict, key: str, clause: str, default=_MISSING) -> float:
    raw = kv.pop(key, _MISSING)
    if raw is _MISSING:
        if default is _MISSING:
            raise FaultError(f"fault clause {clause!r} needs {key}=")
        return default
    try:
        return float(raw)
    except ValueError:
        raise FaultError(f"bad {key}={raw!r} in {clause!r}") from None


def _take_int(kv: dict, key: str, clause: str, default=_MISSING):
    raw = kv.pop(key, _MISSING)
    if raw is _MISSING:
        if default is _MISSING:
            raise FaultError(f"fault clause {clause!r} needs {key}=")
        return default
    try:
        return int(raw)
    except ValueError:
        raise FaultError(f"bad {key}={raw!r} in {clause!r}") from None
