"""Binding a :class:`FaultPlan` to a live simulated stack.

The injector is the single authority every layer consults:

* the **fabric** asks it for each message's fate (ok / lost / corrupt),
  whether endpoints' nodes are alive, and the current NIC degradation
  factor;
* **GASNet** checks for its presence to decide whether puts/gets/AM
  rounds run through the timeout+retransmit path;
* **runtimes and apps** register ``on_crash`` callbacks to kill the
  threads a crashed node hosted and to re-plan around the loss.

All randomness comes from one private splitmix64 stream seeded by the
plan, drawn in deterministic event order — two runs with the same seed
and plan are byte-identical, and the stream is independent of every
application RNG.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.errors import FaultError
from repro.faults.plan import FaultPlan, NodeCrash
from repro.obs import names
from repro.obs.tracer import node_track
from repro.sim import Simulator, SplittableRNG, StatsCollector

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic, seed-reproducible execution of one fault plan."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        stats: Optional[StatsCollector] = None,
    ):
        self.sim = sim
        self.plan = plan
        self.stats = stats if stats is not None else StatsCollector(sim)
        # A dedicated stream: fault draws never perturb app RNG state.
        self._rng = SplittableRNG(seed=plan.seed, algorithm="mix").child(-1)
        self.dead_nodes: Set[int] = set()
        self._crash_callbacks: List[Callable[[NodeCrash], None]] = []
        self._fabric = None
        self._scheduled = False

    # -- wiring ----------------------------------------------------------

    def attach(self, fabric) -> None:
        """Hook a :class:`~repro.network.fabric.Fabric` and arm the plan."""
        if self._fabric is not None:
            raise FaultError("injector already attached to a fabric")
        self._fabric = fabric
        fabric.set_injector(self)
        if not self._scheduled:
            self._schedule_plan()

    def on_crash(self, callback: Callable[[NodeCrash], None]) -> None:
        """Register ``callback(crash)`` to run when a node fail-stops."""
        self._crash_callbacks.append(callback)

    def _schedule_plan(self) -> None:
        self._scheduled = True
        for crash in self.plan.crashes:
            self.sim.schedule_at(crash.at, self._fire_crash, crash)
        for win in self.plan.degradations:
            # Reprice the node's NIC pipes at both window edges so
            # in-flight transfers finish at the correct mixed rate.
            self.sim.schedule_at(win.start, self._reprice, win.node)
            self.sim.schedule_at(win.end, self._reprice, win.node)
            self.stats.count(names.FAULTS_DEGRADE_WINDOWS)

    # -- crashes ---------------------------------------------------------

    def _fire_crash(self, crash: NodeCrash) -> None:
        if crash.node in self.dead_nodes:
            return
        self.dead_nodes.add(crash.node)
        self.stats.count(names.FAULTS_CRASHES)
        self.stats.record(names.FAULTS_CRASH_TIMES, self.sim.now)
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                node_track(crash.node), "node crash", names.CAT_FAULT
            )
        for callback in self._crash_callbacks:
            callback(crash)

    def node_alive(self, node: int) -> bool:
        return node not in self.dead_nodes

    # -- link degradation ------------------------------------------------

    def degrade_factor(self, node: int) -> float:
        """Bandwidth multiplier for ``node``'s NIC at the current time."""
        factor = 1.0
        now = self.sim.now
        for win in self.plan.degradations:
            if win.node == node and win.start <= now < win.end:
                factor *= win.factor
        return factor

    def _reprice(self, node: int) -> None:
        if self._fabric is not None:
            self._fabric.reprice_node(node)

    # -- per-message fate ------------------------------------------------

    def message_fate(self, src_node: int, dst_node: int) -> str:
        """Decide one message's fate: ``"ok"``, ``"lost"`` or ``"corrupt"``.

        Messages touching a dead node are black holes.  Otherwise the
        plan's rules are evaluated in order; the first matching rule
        whose probability draw hits decides.
        """
        if src_node in self.dead_nodes or dst_node in self.dead_nodes:
            self.stats.count(names.FAULTS_MESSAGES_BLACKHOLED)
            return "lost"
        now = self.sim.now
        for rule in self.plan.message_rules:
            if not rule.matches(src_node, dst_node, now):
                continue
            if rule.prob > 0 and self._rng.random() < rule.prob:
                if rule.kind == "loss":
                    self.stats.count(names.FAULTS_MESSAGES_LOST)
                    return "lost"
                self.stats.count(names.FAULTS_MESSAGES_CORRUPTED)
                return "corrupt"
        return "ok"
