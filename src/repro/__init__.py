"""repro — reproduction of *Exploiting Hierarchical Parallelism Using UPC*.

This package implements, in pure Python on a deterministic discrete-event
simulator, the full system stack of Lingyuan Wang's 2010 thesis:

* :mod:`repro.sim` — the discrete-event simulation kernel.
* :mod:`repro.machine` — hierarchical machine models (nodes, ccNUMA
  sockets, cores, SMT) with calibrated memory cost models.
* :mod:`repro.network` — LogGP-style interconnect fabric with NIC
  contention and connection sharing (InfiniBand QDR/DDR, GigE, SMP).
* :mod:`repro.gasnet` — a GASNet-like communication layer (segments,
  active messages, non-blocking put/get, PSHM supernodes, teams).
* :mod:`repro.upc` — the UPC/PGAS runtime: shared arrays, shared pointers
  with privatization (``bupc_cast``), barriers, collectives, thread groups.
* :mod:`repro.subthreads` — hierarchical sub-thread runtimes (OpenMP-like,
  Cilk-like, in-house thread pool) layered under UPC threads.
* :mod:`repro.mpi` — a simulated two-sided MPI baseline.
* :mod:`repro.apps` — the paper's workloads (STREAM, UTS, NAS FT,
  multi-link microbenchmarks).
* :mod:`repro.harness` — one experiment module per table/figure.

Quickstart::

    from repro.machine import presets
    from repro.upc import UpcProgram

    machine = presets.lehman(nodes=2)
    prog = UpcProgram(machine, threads=16)

    def main(upc):
        if upc.MYTHREAD == 0:
            print("hello from", upc.THREADS, "threads")
        yield from upc.barrier()

    prog.run(main)
"""

from repro._version import __version__

__all__ = ["__version__"]
