"""A GASNet-like communication layer for the simulated cluster.

Berkeley UPC translates shared accesses into GASNet calls; this package
plays that role for the simulated runtime:

* :mod:`~repro.gasnet.core` — thread attachment, backend modes
  (processes / pthreads, ± PSHM), segments, active-message rounds.
* :mod:`~repro.gasnet.pshm` — inter-Process SHared Memory: supernode
  discovery and the shared-memory bypass predicate (§3.1).
* :mod:`~repro.gasnet.extended` — blocking and non-blocking put/get with
  explicit handles (``upc_waitsync``-style completion).
* :mod:`~repro.gasnet.team` — thread teams for subset collectives.
"""

from repro.gasnet.core import (
    BackendConfig,
    GasnetRuntime,
    RetryPolicy,
    ThreadLocation,
)
from repro.gasnet.extended import Handle
from repro.gasnet.pshm import discover_supernodes
from repro.gasnet.team import Team

__all__ = [
    "BackendConfig",
    "GasnetRuntime",
    "Handle",
    "RetryPolicy",
    "Team",
    "ThreadLocation",
    "discover_supernodes",
]
