"""GASNet core: thread attachment, backends, segments, AM rounds.

A :class:`GasnetRuntime` binds a set of UPC threads (each with a node, a
processing unit, and an owning OS process) to the fabric and the memory
system.  The *backend* determines two things the whole thesis turns on:

* **connection sharing** — process-per-thread backends give every thread
  its own network connection; pthreads backends make all threads of a
  process share one (§4.3.1's processes-vs-pthreads trade-off);
* **shared-memory reach** — threads in one process always share memory;
  with PSHM enabled the reach extends to the whole node (§3.1), letting
  intra-node put/get bypass the network API entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.errors import EndpointFailedError, GasnetError, MessageCorruptedError
from repro.gasnet.pshm import discover_supernodes
from repro.machine.memory import MemorySystem
from repro.machine.topology import MachineTopology
from repro.network.fabric import Fabric
from repro.network.model import NetworkParams
from repro.obs import names
from repro.obs.tracer import META_TRACK, thread_track
from repro.sim import Simulator, StatsCollector

__all__ = ["ThreadLocation", "BackendConfig", "RetryPolicy", "GasnetRuntime"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + retransmit policy for network ops under fault injection.

    Each attempt races the operation against a timeout; the timeout
    starts at ``max(min_timeout, timeout_factor * expected)`` — where
    *expected* is the uncontended analytic time of the op — and grows by
    ``backoff``× per retry (exponential backoff, so a congested-but-alive
    peer is given progressively more slack before being declared dead).
    After ``max_attempts`` total tries the op raises
    :class:`~repro.errors.EndpointFailedError`.
    """

    max_attempts: int = 4
    timeout_factor: float = 8.0
    min_timeout: float = 100e-6
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise GasnetError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 1.0:
            raise GasnetError(f"backoff must be >= 1, got {self.backoff}")
        if self.min_timeout <= 0 or self.timeout_factor <= 0:
            raise GasnetError("timeouts must be positive")

    def timeout_for(self, expected: float, attempt: int) -> float:
        base = max(self.min_timeout, self.timeout_factor * expected)
        return base * self.backoff ** attempt


@dataclass(frozen=True)
class ThreadLocation:
    """Where one UPC thread lives."""

    thread_id: int
    node: int
    pu: int
    process_id: int


@dataclass(frozen=True)
class BackendConfig:
    """Backend mode plus the software-overhead calibration constants.

    ``mode`` is ``"processes"`` (one OS process per UPC thread) or
    ``"pthreads"`` (threads grouped into processes); ``pshm`` additionally
    cross-maps segments node-wide.  The overhead constants:

    * ``op_overhead`` — fixed software cost of one ``upc_mem*`` runtime
      call (dispatch, shared-pointer argument handling).
    * ``bypass_overhead`` — extra segment-lookup cost on the PSHM /
      pthreads shared-memory fast path.
    * ``shm_roundtrip`` — one cache-coherent atomic round (lock attempts,
      flag polling) between threads that share memory.
    * ``am_handler_time`` — CPU time an active-message handler occupies
      on the target core.
    """

    mode: str = "processes"
    pshm: bool = True
    op_overhead: float = 0.20e-6
    bypass_overhead: float = 0.05e-6
    shm_roundtrip: float = 0.20e-6
    am_handler_time: float = 0.30e-6

    def __post_init__(self) -> None:
        if self.mode not in ("processes", "pthreads"):
            raise GasnetError(f"unknown backend mode {self.mode!r}")

    @property
    def label(self) -> str:
        return f"{self.mode}{'+pshm' if self.pshm else ''}"


class GasnetRuntime:
    """The communication runtime for one simulated job."""

    def __init__(
        self,
        sim: Simulator,
        topo: MachineTopology,
        mem: MemorySystem,
        net_params: NetworkParams,
        locations: Sequence[ThreadLocation],
        backend: Optional[BackendConfig] = None,
        stats: Optional[StatsCollector] = None,
    ):
        self.sim = sim
        self.topo = topo
        self.mem = mem
        self.backend = backend or BackendConfig()
        self.stats = stats if stats is not None else StatsCollector(sim)
        self.fabric = Fabric(sim, topo, net_params, stats=self.stats)
        self.locations: List[ThreadLocation] = list(locations)
        if [loc.thread_id for loc in self.locations] != list(range(len(self.locations))):
            raise GasnetError("thread ids must be dense 0..n-1 in order")
        for loc in self.locations:
            if self.topo.pu(loc.pu).node_index != loc.node:
                raise GasnetError(
                    f"thread {loc.thread_id}: PU {loc.pu} is not on node {loc.node}"
                )
            self.fabric.register_endpoint(
                loc.thread_id, loc.node, connection_key=("proc", loc.process_id)
            )
        self._supernodes = discover_supernodes(
            [loc.node for loc in self.locations],
            [loc.process_id for loc in self.locations],
            pshm=self.backend.pshm,
        )
        self._supernode_of: Dict[int, int] = {}
        for gi, group in enumerate(self._supernodes):
            for t in group:
                self._supernode_of[t] = gi
        #: Fault injection: None means the reliable, seed-identical path.
        self.fault_injector = None
        self.retry = RetryPolicy()

    # -- fault injection ---------------------------------------------------

    def attach_faults(self, injector, retry: Optional[RetryPolicy] = None) -> None:
        """Arm fault injection: hook the fabric and enable retransmits.

        Without an injector every network op is the plain single-attempt
        path, byte-identical to seed behaviour; with one, puts/gets/AM
        rounds time out, retransmit with exponential backoff, and raise
        :class:`~repro.errors.EndpointFailedError` once the budget is
        spent — so upper layers see failures as exceptions, not hangs.
        """
        injector.attach(self.fabric)
        self.fault_injector = injector
        if retry is not None:
            self.retry = retry

    def _reliable(
        self,
        peer_thread: int,
        op_factory: Callable[[], Generator],
        expected: float,
        desc: str,
        src_thread: Optional[int] = None,
    ) -> Generator:
        """Run a network op with timeout + retransmit (injector present)."""
        policy = self.retry
        tracer = self.sim.tracer
        track = thread_track(src_thread) if src_thread is not None else META_TRACK
        for attempt in range(policy.max_attempts):
            if attempt:
                self.stats.count(names.GASNET_RETRANSMITS)
                if tracer.enabled:
                    tracer.instant(track, f"retransmit {desc}",
                                   names.CAT_NETWORK, args={"attempt": attempt})
            proc = self.sim.spawn(op_factory(), name=f"gasnet.try[{desc}]")
            timeout = self.sim.delay(policy.timeout_for(expected, attempt))
            try:
                index, _value = yield self.sim.any_of([proc, timeout])
            except MessageCorruptedError:
                # Delivered but mangled: the receiver NAKs, we retransmit.
                self.sim.forgive_failure(proc)
                self.stats.count(names.GASNET_CORRUPT_DETECTED)
                if tracer.enabled:
                    tracer.instant(track, f"corrupt {desc}", names.CAT_NETWORK)
                continue
            if index == 0:
                return
            proc.kill()
            self.stats.count(names.GASNET_TIMEOUTS)
            if tracer.enabled:
                tracer.instant(track, f"timeout {desc}", names.CAT_NETWORK,
                               args={"attempt": attempt})
        self.stats.count(names.GASNET_ENDPOINT_FAILURES)
        raise EndpointFailedError(
            peer_thread,
            f"{desc}: peer thread {peer_thread} unreachable after "
            f"{policy.max_attempts} attempts",
        )

    # -- queries -----------------------------------------------------------

    @property
    def nthreads(self) -> int:
        return len(self.locations)

    def location(self, thread_id: int) -> ThreadLocation:
        try:
            return self.locations[thread_id]
        except IndexError:
            raise GasnetError(f"unknown thread {thread_id}") from None

    def segment_socket(self, thread_id: int) -> int:
        """Socket holding a thread's shared segment (first-touch: its PU's)."""
        return self.topo.pu(self.location(thread_id).pu).socket_index

    def supernodes(self) -> List[tuple]:
        return list(self._supernodes)

    def supernode_peers(self, thread_id: int) -> tuple:
        """Threads whose memory ``thread_id`` can reach via load/store
        (including itself) — the castability query of §3.2.1."""
        self.location(thread_id)
        return self._supernodes[self._supernode_of[thread_id]]

    def can_bypass(self, src_thread: int, dst_thread: int) -> bool:
        """True when src can move data to/from dst's segment by memcpy."""
        self.location(src_thread)
        self.location(dst_thread)
        return self._supernode_of[src_thread] == self._supernode_of[dst_thread]

    # -- data movement ------------------------------------------------------

    def xfer(
        self,
        src_thread: int,
        dst_thread: int,
        nbytes: float,
        direction: str = "put",
        privatized: bool = False,
        initiator_pu: Optional[int] = None,
    ) -> Generator:
        """Move ``nbytes`` between src's and dst's segments (simulated).

        ``direction`` is ``"put"`` (initiator writes remote) or ``"get"``
        (initiator reads remote); the initiator is always ``src_thread``.
        ``privatized=True`` models a user-cast local pointer: the runtime
        call and segment lookup are skipped and the op is a plain memcpy
        (only legal when ``can_bypass``).  ``initiator_pu`` redirects the
        CPU-side costs to another core — how a *sub-thread* of the UPC
        thread issues communication under THREAD_MULTIPLE.
        """
        tracer = self.sim.tracer
        if not tracer.enabled:
            yield from self._xfer(
                src_thread, dst_thread, nbytes, direction, privatized,
                initiator_pu,
            )
            return
        span = tracer.begin(
            thread_track(src_thread), f"{direction}->{dst_thread}",
            names.CAT_NETWORK,
            args={"bytes": nbytes, "peer": dst_thread},
        )
        try:
            yield from self._xfer(
                src_thread, dst_thread, nbytes, direction, privatized,
                initiator_pu,
            )
        finally:
            tracer.end(span)

    def _xfer(
        self,
        src_thread: int,
        dst_thread: int,
        nbytes: float,
        direction: str,
        privatized: bool,
        initiator_pu: Optional[int],
    ) -> Generator:
        if direction not in ("put", "get"):
            raise GasnetError(f"bad direction {direction!r}")
        src = self.location(src_thread)
        if initiator_pu is None:
            initiator_pu = src.pu
        self.stats.count(names.gasnet_op(direction))
        self.stats.add(names.GASNET_BYTES, nbytes)

        if privatized:
            if not self.can_bypass(src_thread, dst_thread):
                raise GasnetError(
                    f"privatized access from {src_thread} to {dst_thread}: "
                    "threads do not share memory"
                )
            yield from self._bypass_copy(
                initiator_pu, src_thread, dst_thread, nbytes, direction,
                overhead=0.0,
            )
            return

        yield self.mem.compute(initiator_pu, self.backend.op_overhead)
        if self.can_bypass(src_thread, dst_thread):
            self.stats.count(names.GASNET_BYPASS)
            yield from self._bypass_copy(
                initiator_pu, src_thread, dst_thread, nbytes, direction,
                overhead=self.backend.bypass_overhead,
            )
            return

        yield self.mem.compute(initiator_pu, self.fabric.params.send_overhead)
        if direction == "put":
            op = lambda: self.fabric.transmit(src_thread, dst_thread, nbytes)
        else:
            op = lambda: self.fabric.fetch(src_thread, dst_thread, nbytes)
        if self.fault_injector is None:
            yield from op()
        else:
            expected = self.fabric.params.message_time(nbytes)
            if direction == "get":
                expected += self.fabric.params.latency
            yield from self._reliable(
                dst_thread, op, expected,
                f"{direction}[{src_thread}->{dst_thread}]",
                src_thread=src_thread,
            )

    def _bypass_copy(
        self,
        pu: int,
        src_thread: int,
        dst_thread: int,
        nbytes: float,
        direction: str,
        overhead: float,
    ) -> Generator:
        if overhead > 0:
            yield self.mem.compute(pu, overhead)
        local_socket = self.segment_socket(src_thread)
        remote_socket = self.segment_socket(dst_thread)
        if direction == "put":
            src_sock, dst_sock = local_socket, remote_socket
        else:
            src_sock, dst_sock = remote_socket, local_socket
        yield from self.mem.copy(pu, nbytes, src_sock, dst_sock)

    # -- active messages -----------------------------------------------------

    def am_roundtrip(
        self,
        src_thread: int,
        dst_thread: int,
        request_bytes: float = 64.0,
        reply_bytes: float = 64.0,
        handler_work: Optional[float] = None,
    ) -> Generator:
        """One request/reply active-message round (e.g. a lock attempt).

        Between shared-memory threads this is a cache-coherent atomic
        round; across the network it pays both message flights plus the
        handler's CPU time on the target core.
        """
        tracer = self.sim.tracer
        if not tracer.enabled:
            yield from self._am_roundtrip(
                src_thread, dst_thread, request_bytes, reply_bytes,
                handler_work,
            )
            return
        span = tracer.begin(
            thread_track(src_thread), f"am<->{dst_thread}", names.CAT_NETWORK,
            args={"peer": dst_thread},
        )
        try:
            yield from self._am_roundtrip(
                src_thread, dst_thread, request_bytes, reply_bytes,
                handler_work,
            )
        finally:
            tracer.end(span)

    def _am_roundtrip(
        self,
        src_thread: int,
        dst_thread: int,
        request_bytes: float,
        reply_bytes: float,
        handler_work: Optional[float],
    ) -> Generator:
        src = self.location(src_thread)
        dst = self.location(dst_thread)
        if handler_work is None:
            handler_work = self.backend.am_handler_time
        self.stats.count(names.GASNET_AM_ROUNDTRIPS)
        if self.can_bypass(src_thread, dst_thread):
            yield self.mem.compute(src.pu, self.backend.shm_roundtrip)
            return
        yield self.mem.compute(src.pu, self.fabric.params.send_overhead)

        def round_() -> Generator:
            yield from self.fabric.transmit(src_thread, dst_thread, request_bytes)
            yield self.mem.compute(dst.pu, handler_work)
            yield from self.fabric.transmit(dst_thread, src_thread, reply_bytes)

        if self.fault_injector is None:
            yield from round_()
        else:
            # A lost request or reply retries the whole round: AM
            # handlers must be (and here are) idempotent at-least-once.
            expected = (
                self.fabric.params.message_time(request_bytes)
                + handler_work
                + self.fabric.params.message_time(reply_bytes)
            )
            yield from self._reliable(
                dst_thread, round_, expected,
                f"am[{src_thread}<->{dst_thread}]",
                src_thread=src_thread,
            )
        yield self.mem.compute(src.pu, self.fabric.params.recv_overhead)
