"""GASNet extended API: non-blocking put/get with explicit handles.

Mirrors Berkeley UPC's ``bupc_memput_async``/``upc_waitsync`` pair used in
Fig 3.4(b): ``put_nb`` returns immediately with a :class:`Handle`; the
caller overlaps computation and later waits.  Timing statistics separate
*initiation* cost (charged inline before the handle is returned) from
*synchronization* wait time, so the harness can reproduce the paper's
init-vs-waitsync breakdown.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import GasnetError
from repro.gasnet.core import GasnetRuntime
from repro.obs import names
from repro.sim.engine import Process

__all__ = ["Handle", "put_nb", "get_nb", "put", "get"]


class Handle:
    """Completion handle for a non-blocking operation."""

    def __init__(self, runtime: GasnetRuntime, process: Process, issued_at: float):
        self._runtime = runtime
        self._process = process
        self.issued_at = issued_at
        self._synced = False

    @property
    def done(self) -> bool:
        return self._process.done

    def wait(self) -> Generator:
        """Simulated generator: block until the operation completes.

        Records the blocked time under ``gasnet.waitsync`` so harnesses
        can separate overlap wins from raw transfer time.
        """
        if self._synced:
            raise GasnetError("handle already synchronized")
        self._synced = True
        start = self._runtime.sim.now
        yield self._process
        self._runtime.stats.add(
            names.GASNET_WAITSYNC_TIME, self._runtime.sim.now - start
        )
        self._runtime.stats.count(names.GASNET_WAITSYNC)


def put_nb(
    runtime: GasnetRuntime,
    src_thread: int,
    dst_thread: int,
    nbytes: float,
    privatized: bool = False,
    initiator_pu: int | None = None,
) -> Handle:
    """Initiate a non-blocking put; returns a :class:`Handle` immediately.

    Note: initiation software cost is part of the spawned operation (the
    real call returns after injecting; the distinction is below the
    resolution the experiments need).
    """
    proc = runtime.sim.spawn(
        runtime.xfer(src_thread, dst_thread, nbytes, "put", privatized=privatized,
                     initiator_pu=initiator_pu),
        name=f"put_nb[{src_thread}->{dst_thread}]",
    )
    return Handle(runtime, proc, issued_at=runtime.sim.now)


def get_nb(
    runtime: GasnetRuntime,
    src_thread: int,
    dst_thread: int,
    nbytes: float,
    privatized: bool = False,
    initiator_pu: int | None = None,
) -> Handle:
    """Initiate a non-blocking get of ``nbytes`` from ``dst_thread``."""
    proc = runtime.sim.spawn(
        runtime.xfer(src_thread, dst_thread, nbytes, "get", privatized=privatized,
                     initiator_pu=initiator_pu),
        name=f"get_nb[{src_thread}<-{dst_thread}]",
    )
    return Handle(runtime, proc, issued_at=runtime.sim.now)


def put(
    runtime: GasnetRuntime,
    src_thread: int,
    dst_thread: int,
    nbytes: float,
    privatized: bool = False,
    initiator_pu: int | None = None,
) -> Generator:
    """Blocking put (``upc_memput``-shaped)."""
    yield from runtime.xfer(src_thread, dst_thread, nbytes, "put", privatized=privatized,
                            initiator_pu=initiator_pu)


def get(
    runtime: GasnetRuntime,
    src_thread: int,
    dst_thread: int,
    nbytes: float,
    privatized: bool = False,
    initiator_pu: int | None = None,
) -> Generator:
    """Blocking get (``upc_memget``-shaped)."""
    yield from runtime.xfer(src_thread, dst_thread, nbytes, "get", privatized=privatized,
                            initiator_pu=initiator_pu)
