"""GASNet teams: named thread subsets with their own barrier.

The thesis cites the (then-unreleased) GASNet team extension as the
natural substrate for UPC thread groups; here a :class:`Team` is an
ordered subset of threads carrying a team barrier and split support.
Collective *algorithms* (broadcast, exchange, reduce) live in
:mod:`repro.upc.collectives` and take a team argument.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.errors import GasnetError
from repro.obs import names
from repro.obs.tracer import thread_track
from repro.sim import SimBarrier, Simulator

__all__ = ["Team"]


class Team:
    """An ordered, immutable set of thread ids with a reusable barrier."""

    _counter = 0

    def __init__(self, sim: Simulator, members: Sequence[int], name: str = ""):
        members = tuple(members)
        if not members:
            raise GasnetError("team needs at least one member")
        if len(set(members)) != len(members):
            raise GasnetError(f"duplicate members in team: {members}")
        Team._counter += 1
        self.sim = sim
        self.members = members
        self.name = name or f"team{Team._counter}"
        self._rank_of = {t: i for i, t in enumerate(members)}
        self._barrier = SimBarrier(sim, parties=len(members), name=f"{self.name}.bar")
        self._op_counters = {t: 0 for t in members}
        self._dead: set = set()

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, thread_id: int) -> bool:
        return thread_id in self._rank_of

    def rank(self, thread_id: int) -> int:
        """Team-relative rank of a thread."""
        try:
            return self._rank_of[thread_id]
        except KeyError:
            raise GasnetError(
                f"thread {thread_id} is not in team {self.name!r}"
            ) from None

    def thread_at(self, rank: int) -> int:
        if not 0 <= rank < len(self.members):
            raise GasnetError(f"rank {rank} out of range for team of {len(self)}")
        return self.members[rank]

    def op_tag(self, thread_id: int) -> str:
        """Per-thread collective sequence tag.

        SPMD members execute the same collective sequence, so the Nth
        call on every member yields the same tag — giving collectives a
        rendezvous namespace without global coordination.
        """
        n = self._op_counters[thread_id]
        self._op_counters[thread_id] = n + 1
        return f"{self.name}:op{n}"

    def barrier(self, thread_id: int) -> Generator:
        """Simulated generator: team barrier (all live members must call)."""
        self.rank(thread_id)  # membership check
        sanitizer = self.sim.sanitizer
        if sanitizer.enabled:
            sanitizer.barrier_arrive(("team", self.name), thread_id, self.members)
        tracer = self.sim.tracer
        if not tracer.enabled:
            yield self._barrier.arrive(party=thread_id)
        else:
            span = tracer.begin(
                thread_track(thread_id), f"barrier {self.name}", names.CAT_BARRIER
            )
            try:
                yield self._barrier.arrive(party=thread_id)
            finally:
                # The last arriver released us; recording it lets the
                # critical-path walk jump to the straggler's track.
                tracer.end(span, args={"releaser": self._barrier.last_arriver})
        if sanitizer.enabled:
            sanitizer.barrier_pass(("team", self.name), thread_id)

    def drop_dead(self, thread_id: int) -> bool:
        """Fail-stop a member: future barriers no longer count it.

        Survivors blocked at the team barrier are released if the dead
        thread was the only one missing.  Membership and ranks are
        unchanged (the team is still the same ordered set; one seat is
        just permanently empty).  Returns False when already dropped.
        """
        self.rank(thread_id)
        if thread_id in self._dead:
            return False
        self._dead.add(thread_id)
        self._barrier.drop_party(thread_id)
        return True

    def split(self, thread_id: int, color: int, key: Optional[int] = None) -> "TeamSplit":
        """Record a split request; see :meth:`TeamSplit.build` for assembly.

        Real GASNet team splits are collective; in simulation the UPC
        runtime assembles splits centrally, so this helper just validates
        membership and returns a request token.
        """
        self.rank(thread_id)
        return TeamSplit(self, thread_id, color, key if key is not None else thread_id)

    @classmethod
    def build_split(
        cls, sim: Simulator, requests: Sequence["TeamSplit"]
    ) -> dict[int, "Team"]:
        """Assemble the child teams from one split request per member.

        Returns ``{thread_id: child_team}``; members sharing a color end
        up in one team, ordered by key.
        """
        if not requests:
            raise GasnetError("no split requests")
        parent = requests[0].parent
        if {r.thread_id for r in requests} != set(parent.members):
            raise GasnetError("split requests must cover the whole parent team")
        by_color: dict[int, list] = {}
        for r in requests:
            if r.parent is not parent:
                raise GasnetError("split requests from different parent teams")
            by_color.setdefault(r.color, []).append(r)
        result: dict[int, Team] = {}
        for color, reqs in sorted(by_color.items()):
            members = [r.thread_id for r in sorted(reqs, key=lambda r: (r.key, r.thread_id))]
            team = cls(sim, members, name=f"{parent.name}/c{color}")
            for t in members:
                result[t] = team
        return result


class TeamSplit:
    """A single member's split request (color/key pair)."""

    def __init__(self, parent: Team, thread_id: int, color: int, key: int):
        self.parent = parent
        self.thread_id = thread_id
        self.color = color
        self.key = key
