"""Inter-Process SHared Memory (PSHM): supernode discovery.

With PSHM enabled, GASNet cross-maps the shared-memory segments of all
processes on a node (via ``mmap``) at startup; the set of UPC threads that
can reach each other through plain loads and stores is called a
*supernode* (§3.1).  Without PSHM, only threads inside one multi-threaded
process (the pthreads backend) share memory.

Discovery here is a pure function of the thread layout and backend flags,
mirroring the initialization-time exchange the real runtime performs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import GasnetError

__all__ = ["discover_supernodes"]


def discover_supernodes(
    node_of_thread: Sequence[int],
    process_of_thread: Sequence[int],
    pshm: bool,
) -> List[tuple]:
    """Partition threads into supernodes (maximal shared-memory groups).

    Returns a list of tuples of thread ids; every thread appears in
    exactly one group.  With ``pshm`` the groups are whole nodes; without
    it they are processes.  Raises if a process spans nodes (impossible on
    real hardware and a layout bug here).
    """
    if len(node_of_thread) != len(process_of_thread):
        raise GasnetError(
            f"layout size mismatch: {len(node_of_thread)} nodes vs "
            f"{len(process_of_thread)} processes"
        )
    proc_node: Dict[int, int] = {}
    for t, (node, proc) in enumerate(zip(node_of_thread, process_of_thread)):
        if proc in proc_node and proc_node[proc] != node:
            raise GasnetError(
                f"process {proc} spans nodes {proc_node[proc]} and {node} "
                f"(thread {t})"
            )
        proc_node[proc] = node

    groups: Dict[object, list] = {}
    for t, (node, proc) in enumerate(zip(node_of_thread, process_of_thread)):
        key = node if pshm else proc
        groups.setdefault(key, []).append(t)
    return [tuple(members) for _key, members in sorted(groups.items(), key=lambda kv: kv[1][0])]
