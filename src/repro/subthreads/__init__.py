"""Hierarchical sub-threads under UPC threads (Chapter 4).

Each SPMD UPC thread may act as a *master* that forks light-weight
shared-memory sub-threads in a master–worker pattern — the thesis's
second approach to hierarchical parallelism.  Three runtimes with
distinct overhead profiles are provided, matching the thesis's
UPC×OpenMP, UPC×Cilk++ and UPC×thread-pool hybrids:

* :class:`~repro.subthreads.openmp.OpenMP` — fork/join parallel regions,
  static scheduling, the cheapest fork path (best performer in Fig 4.6);
* :class:`~repro.subthreads.pool.ThreadPool` — the in-house prototype:
  persistent workers, central task queue, dynamic scheduling;
* :class:`~repro.subthreads.cilk.Cilk` — spawn/steal semantics with the
  highest per-region overhead and a small work inflation (the consistent
  Cilk++ lag the thesis reports).

Sub-threads inherit the parent process's affinity mask, access the global
address space subject to a thread-safety level
(:class:`~repro.subthreads.interop.ThreadSafety`), and do **not** poll the
communication runtime — the property that keeps hybrid jobs off the NIC
and behind Chapter 4's scaling results.
"""

from repro.subthreads.interop import SubthreadContext, ThreadSafety
from repro.subthreads.base import ForkJoinRuntime, SubthreadParams, static_chunks
from repro.subthreads.openmp import OpenMP
from repro.subthreads.cilk import Cilk
from repro.subthreads.pool import ThreadPool

__all__ = [
    "Cilk",
    "ForkJoinRuntime",
    "OpenMP",
    "SubthreadContext",
    "SubthreadParams",
    "ThreadPool",
    "ThreadSafety",
    "static_chunks",
]
