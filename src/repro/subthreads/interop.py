"""UPC ↔ sub-thread interoperability: thread safety and the sub-thread view.

§4.2.3 maps the MPI-2 thread-safety vocabulary onto UPC: a thread-compliant
runtime should let sub-threads issue UPC calls concurrently
(``THREAD_MULTIPLE``); the Berkeley runtime of the day was effectively
``THREAD_FUNNELED`` (only the master may communicate), with user-spawned
threads crashing on thread-specific runtime data.  The
:class:`SubthreadContext` enforces whichever level the job requests —
violating it raises :class:`~repro.errors.SubthreadError`, the simulated
analogue of those crashes.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional

from repro.errors import SubthreadError
from repro.gasnet import extended
from repro.sim import Resource

__all__ = ["ThreadSafety", "SubthreadContext"]


class ThreadSafety(enum.Enum):
    """MPI-2-style thread-support levels applied to UPC (§4.2.3)."""

    SINGLE = "single"          #: no sub-thread may issue UPC calls at all
    FUNNELED = "funneled"      #: only the master sub-thread (index 0) may
    SERIALIZED = "serialized"  #: any sub-thread, one at a time
    MULTIPLE = "multiple"      #: any sub-thread, concurrently


class SubthreadContext:
    """What one sub-thread sees: its identity, core, and permitted services.

    Compute and memory streaming are always allowed (they are plain
    shared-memory work).  UPC communication is gated by the job's
    :class:`ThreadSafety` level.
    """

    def __init__(
        self,
        upc,
        index: int,
        count: int,
        pu: int,
        safety: ThreadSafety,
        comm_mutex: Optional[Resource] = None,
        work_inflation: float = 1.0,
    ):
        self.upc = upc
        self.index = index
        self.count = count
        self.pu = pu
        self.safety = safety
        self._comm_mutex = comm_mutex
        self._inflation = work_inflation
        self.sim = upc.sim

    # -- local work ---------------------------------------------------------

    def compute(self, seconds: float) -> Generator:
        yield self.upc.mem.compute(self.pu, seconds * self._inflation)

    def compute_flops(self, flops: float, efficiency: float = 0.25) -> Generator:
        rate = self.upc.mem.params.core_flops * efficiency
        yield self.upc.mem.compute(self.pu, flops * self._inflation / rate)

    def stream_from(
        self, owner_thread: int, bytes_read: float, bytes_written: float
    ) -> Generator:
        """Stream against a UPC thread's segment — PGAS reach extends to
        sub-threads (unlike MPI+threads, §4.1.2)."""
        home = self.upc.gasnet.segment_socket(owner_thread)
        yield from self.upc.mem.stream(self.pu, bytes_read, bytes_written, home)

    def local_stream(self, bytes_read: float, bytes_written: float) -> Generator:
        yield from self.stream_from(self.upc.MYTHREAD, bytes_read, bytes_written)

    # -- UPC communication (gated) ----------------------------------------------

    def _check_comm(self) -> None:
        if self.safety is ThreadSafety.SINGLE:
            raise SubthreadError(
                "THREAD_SINGLE: sub-threads may not issue UPC calls"
            )
        if self.safety is ThreadSafety.FUNNELED and self.index != 0:
            raise SubthreadError(
                f"THREAD_FUNNELED: sub-thread {self.index} attempted a UPC "
                "call; only the master may communicate"
            )

    def memput(self, dst_thread: int, nbytes: float, privatized: bool = False):
        self._check_comm()
        if self.safety is ThreadSafety.SERIALIZED:
            yield self._comm_mutex.acquire()
            try:
                yield from extended.put(
                    self.upc.gasnet, self.upc.MYTHREAD, dst_thread, nbytes,
                    privatized, initiator_pu=self.pu,
                )
            finally:
                self._comm_mutex.release()
        else:
            yield from extended.put(
                self.upc.gasnet, self.upc.MYTHREAD, dst_thread, nbytes,
                privatized, initiator_pu=self.pu,
            )

    def memget(self, src_thread: int, nbytes: float, privatized: bool = False):
        self._check_comm()
        if self.safety is ThreadSafety.SERIALIZED:
            yield self._comm_mutex.acquire()
            try:
                yield from extended.get(
                    self.upc.gasnet, self.upc.MYTHREAD, src_thread, nbytes,
                    privatized, initiator_pu=self.pu,
                )
            finally:
                self._comm_mutex.release()
        else:
            yield from extended.get(
                self.upc.gasnet, self.upc.MYTHREAD, src_thread, nbytes,
                privatized, initiator_pu=self.pu,
            )

    def memput_nb(self, dst_thread: int, nbytes: float, privatized: bool = False):
        self._check_comm()
        if self.safety is ThreadSafety.SERIALIZED:
            raise SubthreadError(
                "THREAD_SERIALIZED cannot express non-blocking overlap; "
                "use MULTIPLE"
            )
        return extended.put_nb(
            self.upc.gasnet, self.upc.MYTHREAD, dst_thread, nbytes,
            privatized, initiator_pu=self.pu,
        )

    def __repr__(self) -> str:
        return (
            f"<Subthread {self.index}/{self.count} of UPC thread "
            f"{self.upc.MYTHREAD} on PU {self.pu}>"
        )
