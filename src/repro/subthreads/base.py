"""Common fork/join machinery for the three sub-thread runtimes.

A :class:`ForkJoinRuntime` is created per UPC thread (the master) and runs
*parallel regions*: the master pays a fork cost, ``count`` sub-thread
bodies execute on the PUs of the parent process's affinity mask, and the
master joins them all.  Scheduling is either ``static`` (body ``i`` runs
on sub-thread ``i`` — OpenMP's default worksharing) or ``dynamic`` (bodies
are chunked onto a task queue drained by the workers — the Cilk/thread-pool
style that load-balances irregular work at extra per-task cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence

from repro.errors import SubthreadError
from repro.machine.affinity import subthread_pus
from repro.sim import Resource, Store
from repro.subthreads.interop import SubthreadContext, ThreadSafety

__all__ = ["SubthreadParams", "ForkJoinRuntime", "static_chunks"]


@dataclass(frozen=True)
class SubthreadParams:
    """Overhead profile of one sub-thread runtime flavour.

    * ``fork_cost`` / ``join_cost`` — master-side cost per parallel region.
    * ``per_task_cost`` — dispatch cost per sub-thread body (or per chunk
      under dynamic scheduling), charged on the executing core.
    * ``work_inflation`` — multiplier on sub-thread compute (runtime
      bookkeeping in the generated code; >1 for Cilk++'s consistent lag).
    * ``scheduling`` — ``"static"`` or ``"dynamic"``.
    """

    name: str
    fork_cost: float
    join_cost: float
    per_task_cost: float
    work_inflation: float = 1.0
    scheduling: str = "static"

    def __post_init__(self) -> None:
        if self.scheduling not in ("static", "dynamic"):
            raise SubthreadError(f"unknown scheduling {self.scheduling!r}")
        if self.work_inflation < 1.0:
            raise SubthreadError("work_inflation must be >= 1.0")


def static_chunks(total: int, parts: int, index: int) -> range:
    """The ``index``-th of ``parts`` near-equal contiguous ranges of ``total``."""
    if parts < 1 or not 0 <= index < parts:
        raise SubthreadError(f"bad chunking: total={total} parts={parts} i={index}")
    base, extra = divmod(total, parts)
    start = index * base + min(index, extra)
    size = base + (1 if index < extra else 0)
    return range(start, start + size)


class ForkJoinRuntime:
    """Sub-thread execution under one UPC master thread."""

    params: SubthreadParams

    def __init__(
        self,
        upc,
        num_threads: int,
        safety: ThreadSafety = ThreadSafety.FUNNELED,
        params: Optional[SubthreadParams] = None,
    ):
        if num_threads < 1:
            raise SubthreadError(f"num_threads must be >= 1, got {num_threads}")
        self.upc = upc
        self.num_threads = num_threads
        self.safety = safety
        if params is not None:
            self.params = params
        mask = upc.program.masks[upc.MYTHREAD]
        self.pus = subthread_pus(upc.topo, mask, num_threads)
        # The master participates as sub-thread 0 on its own PU.
        self.pus[0] = upc.pu
        self._comm_mutex = Resource(upc.sim, 1, name=f"commlock.t{upc.MYTHREAD}")
        self.regions = 0

    def context(self, index: int) -> SubthreadContext:
        return SubthreadContext(
            self.upc,
            index=index,
            count=self.num_threads,
            pu=self.pus[index],
            safety=self.safety,
            comm_mutex=self._comm_mutex,
            work_inflation=self.params.work_inflation,
        )

    def parallel(self, body: Callable[[SubthreadContext], Generator]) -> Generator:
        """Simulated generator: run ``body(st)`` on every sub-thread, join.

        The master charges the fork cost, every sub-thread charges its
        dispatch cost, and the region ends when the slowest body finishes.
        """
        self.regions += 1
        p = self.params
        yield self.upc.mem.compute(self.upc.pu, p.fork_cost)
        procs = []
        for i in range(self.num_threads):
            st = self.context(i)
            procs.append(
                self.upc.sim.spawn(
                    self._run_body(st, body), name=f"sub{self.upc.MYTHREAD}.{i}"
                )
            )
        yield self.upc.sim.all_of(procs)
        yield self.upc.mem.compute(self.upc.pu, p.join_cost)

    def _run_body(self, st: SubthreadContext, body) -> Generator:
        yield self.upc.mem.compute(st.pu, self.params.per_task_cost)
        yield from body(st)

    def parallel_tasks(
        self, tasks: Sequence[Callable[[SubthreadContext], Generator]]
    ) -> Generator:
        """Simulated generator: run a task list over the sub-threads.

        Static scheduling assigns task ``j`` to sub-thread ``j % count``;
        dynamic scheduling drains a shared queue (first-free-worker), the
        behaviour of the thread pool's central task queue and of Cilk's
        steal-balanced loops.
        """
        if self.params.scheduling == "static":
            def body(st):
                for j in range(st.index, len(tasks), st.count):
                    yield from tasks[j](st)

            yield from self.parallel(body)
            return

        queue: Store = Store(self.upc.sim)
        for j in range(len(tasks)):
            queue.put(j)
        for _ in range(self.num_threads):
            queue.put(None)  # poison pills

        def worker(st):
            while True:
                yield self.upc.mem.compute(st.pu, self.params.per_task_cost)
                got = yield queue.get()
                if got is None:
                    return
                yield from tasks[got](st)

        yield from self.parallel(worker)

    def parallel_for(
        self,
        total: int,
        item_body: Callable[[SubthreadContext, range], Generator],
        chunks_per_thread: int = 1,
    ) -> Generator:
        """Simulated generator: worksharing loop over ``total`` items.

        ``item_body(st, index_range)`` processes a contiguous range.
        Static scheduling splits into one chunk per sub-thread; dynamic
        splits into ``chunks_per_thread * count`` chunks on the queue.
        """
        if self.params.scheduling == "static" and chunks_per_thread == 1:
            def body(st):
                yield from item_body(st, static_chunks(total, st.count, st.index))

            yield from self.parallel(body)
            return
        nchunks = max(1, chunks_per_thread) * self.num_threads
        nchunks = min(nchunks, max(total, 1))
        tasks = [
            (lambda r: (lambda st: item_body(st, r)))(
                static_chunks(total, nchunks, c)
            )
            for c in range(nchunks)
        ]
        yield from self.parallel_tasks(tasks)
