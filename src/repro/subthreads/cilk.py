"""UPC×Cilk++ hybrid: spawn/steal with the heaviest runtime.

§4.3.3.3 finds Cilk++ the slowest hybrid: "up to 10% of slowdown on FFTs
and a consistent 0.2 seconds of lag", attributed to higher runtime
overhead.  Modelled as dynamic (steal-balanced) scheduling with elevated
fork/spawn costs and a work-inflation factor on sub-thread compute
(cilk_for's generated frame bookkeeping).

Cilk++ also cannot share a source file with UPC (it is a C++ extension);
only ``extern "C"`` kernels are callable, so Cilk sub-threads here are
restricted to THREAD_SINGLE-style local work by convention — the thesis
uses Cilk only for local computational kernels.
"""

from __future__ import annotations

from repro.subthreads.base import ForkJoinRuntime, SubthreadParams

__all__ = ["Cilk"]


class Cilk(ForkJoinRuntime):
    """Cilk++-flavoured sub-thread runtime (see module docstring)."""

    params = SubthreadParams(
        name="cilk",
        fork_cost=6.0e-6,
        join_cost=4.0e-6,
        per_task_cost=1.5e-6,
        work_inflation=1.08,
        scheduling="dynamic",
    )
