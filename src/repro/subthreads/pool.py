"""The in-house prototype thread-pool runtime (§4.2.2).

"The prototype runtime library that we implemented uses the thread pool
pattern ... a central task queue associated with a pool of threads.  The
task queue allows the execution engine to automatically balance supply
and demand for threads across multiple tasks."

Dynamic scheduling through the central queue, overheads between OpenMP's
and Cilk++'s — it places second among the hybrids in Fig 4.6.
"""

from __future__ import annotations

from repro.subthreads.base import ForkJoinRuntime, SubthreadParams

__all__ = ["ThreadPool"]


class ThreadPool(ForkJoinRuntime):
    """Thread-pool-flavoured sub-thread runtime (see module docstring)."""

    params = SubthreadParams(
        name="pool",
        fork_cost=2.0e-6,
        join_cost=1.5e-6,
        per_task_cost=0.8e-6,
        work_inflation=1.01,
        scheduling="dynamic",
    )
