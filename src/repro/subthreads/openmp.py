"""UPC×OpenMP hybrid: the cheapest fork/join path.

Models GCC's libgomp (OpenMP v2.5, the compiler used in §4.3.3.2): a
pre-created thread team parked on a spin barrier, so a ``#pragma omp
parallel`` region costs about a microsecond to fan out.  Static
worksharing is the default schedule.  Best-performing hybrid in Fig 4.6.
"""

from __future__ import annotations

from repro.subthreads.base import ForkJoinRuntime, SubthreadParams

__all__ = ["OpenMP"]


class OpenMP(ForkJoinRuntime):
    """OpenMP-flavoured sub-thread runtime (see module docstring)."""

    params = SubthreadParams(
        name="openmp",
        fork_cost=1.2e-6,
        join_cost=0.8e-6,
        per_task_cost=0.2e-6,
        work_inflation=1.0,
        scheduling="static",
    )
