"""Exception hierarchy shared across repro subsystems.

Kernel-level errors live in :mod:`repro.sim.engine`
(:class:`~repro.sim.engine.SimulationError`); everything above the kernel
raises one of the classes below so callers can catch per-layer.
"""

from repro.sim.engine import SimulationError

__all__ = [
    "SimulationError",
    "TopologyError",
    "NetworkError",
    "GasnetError",
    "UpcError",
    "AffinityError",
    "SubthreadError",
    "MpiError",
    "FaultError",
    "ExecutorError",
    "MessageCorruptedError",
    "EndpointFailedError",
]


class TopologyError(SimulationError):
    """Invalid machine topology or topology query."""


class AffinityError(TopologyError):
    """Invalid thread/process binding request."""


class NetworkError(SimulationError):
    """Fabric-level error (unknown endpoint, bad route, ...)."""


class GasnetError(SimulationError):
    """GASNet-layer error (bad segment address, team misuse, ...)."""


class UpcError(SimulationError):
    """UPC-runtime error (bad shared pointer, affinity violation, ...)."""


class SubthreadError(SimulationError):
    """Sub-thread runtime error (thread-safety violation, pool misuse)."""


class MpiError(SimulationError):
    """MPI-layer error (unmatched receive, communicator misuse, ...)."""


class FaultError(SimulationError):
    """Invalid fault plan or fault-injection misuse."""


class ExecutorError(SimulationError):
    """A campaign executor could not complete its batch.

    Raised with a message naming the point whose worker died (instead of
    an opaque ``BrokenProcessPool`` abort), or a journal that cannot be
    resumed.
    """


class MessageCorruptedError(NetworkError):
    """A message was delivered but failed its integrity check.

    Raised by the fabric *after* the corrupted bytes have drained, so the
    sender has paid the full transfer cost; reliable layers catch this
    and retransmit.
    """


class EndpointFailedError(GasnetError):
    """A peer is unreachable and the retry budget is exhausted.

    Carries the peer's UPC thread id as ``thread`` so schedulers can
    blacklist the victim and fail over.
    """

    def __init__(self, thread: int, message: str = ""):
        super().__init__(
            message or f"endpoint for thread {thread} unreachable (retries exhausted)"
        )
        self.thread = thread
