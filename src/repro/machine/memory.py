"""Node memory-system cost model: NUMA bandwidth, core ports, SMT cores.

The model prices two kinds of work:

* **Streaming memory traffic** (`MemorySystem.stream`): charged jointly on
  the *home socket's* memory controller (a processor-sharing pipe — many
  threads streaming to one socket share its bandwidth, which is what makes
  Table 4.1's un-bound ``1×8`` configuration achieve roughly half of the
  node's throughput) and on the requesting *core's load/store port* (a
  per-core cap — one core cannot saturate a socket).  Remote-socket
  accesses additionally pay the ccNUMA factor and drain through the
  QPI/HyperTransport pipe.

* **Compute** (`MemorySystem.compute`): charged on the core's
  :class:`SmtCore`.  An SMT core running two hardware threads delivers
  ``smt_throughput_factor`` (≈1.05–1.30, per Fig 4.4's "5% to 30%" SMT
  speedups) of its single-thread rate, split evenly — so each SMT sibling
  runs slower than alone but the pair finishes sooner.

All parameters are calibrated against Table 2.1 / Table 3.1 / Table 4.1 in
:mod:`repro.machine.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.errors import TopologyError
from repro.machine.topology import MachineTopology
from repro.sim import SharedBandwidth, Simulator
from repro.sim.engine import Awaitable

__all__ = ["MemoryParams", "SmtCore", "MemorySystem"]

_GB = 1e9


@dataclass(frozen=True)
class MemoryParams:
    """Calibration constants for one node's memory system.

    Attributes
    ----------
    socket_stream_bw:
        Sustained streaming bandwidth of one socket's memory controller
        (bytes/s).  Node STREAM throughput ≈ ``sockets * socket_stream_bw``.
    core_stream_bw:
        Per-core load/store port cap (bytes/s).
    numa_factor:
        Multiplier on effective access time for remote-socket traffic
        (the thesis cites 15–40% slower; default 1.3).
    interconnect_bw:
        One-direction QPI / HyperTransport bandwidth between sockets
        (bytes/s); remote-socket traffic drains through it.
    smt_throughput_factor:
        Aggregate throughput of a core running all SMT siblings relative
        to one thread (>1.0 means SMT helps).
    pointer_translation_time:
        Seconds charged per *un-privatized* UPC shared-pointer access —
        the "expensive shared pointer address translation" of §3.1.  This
        is design decision D1 in DESIGN.md.
    write_allocate:
        If True, written bytes cost double traffic (read-for-ownership),
        the standard STREAM accounting.
    core_flops:
        Peak per-core floating-point rate (flops/s) used by applications
        to convert flop counts into work-seconds; kernels apply their own
        sustained-efficiency fraction on top.
    """

    socket_stream_bw: float = 12.3 * _GB
    core_stream_bw: float = 6.5 * _GB
    numa_factor: float = 1.3
    interconnect_bw: float = 23.0 * _GB
    smt_throughput_factor: float = 1.25
    pointer_translation_time: float = 2.2e-9
    write_allocate: bool = True
    core_flops: float = 9.0 * _GB

    def __post_init__(self) -> None:
        if self.socket_stream_bw <= 0 or self.core_stream_bw <= 0:
            raise TopologyError("bandwidths must be positive")
        if self.numa_factor < 1.0:
            raise TopologyError(f"numa_factor must be >= 1.0, got {self.numa_factor}")
        if self.smt_throughput_factor < 1.0:
            raise TopologyError("smt_throughput_factor must be >= 1.0")

    def traffic_bytes(self, bytes_read: float, bytes_written: float) -> float:
        """Memory-controller traffic for a read/write mix."""
        w = 2.0 if self.write_allocate else 1.0
        return bytes_read + w * bytes_written


class SmtCore(SharedBandwidth):
    """A core's execution resource in 'work-seconds' units.

    ``transfer(w)`` executes ``w`` seconds of single-thread work.  With
    ``n`` concurrent hardware threads the aggregate rate is::

        1.0 + (smt_factor - 1.0) * min(n - 1, smt_ways - 1)

    so a 2-way SMT core at ``smt_factor=1.25`` runs two threads at 0.625×
    each, and oversubscription beyond the SMT width degrades to pure
    time-slicing (aggregate pinned at the SMT-saturated rate).
    """

    def __init__(self, sim: Simulator, smt_ways: int, smt_factor: float, name: str = ""):
        super().__init__(sim, rate=1.0, name=name)
        self.smt_ways = smt_ways
        self.smt_factor = smt_factor

    def _aggregate_rate(self, n: int) -> float:
        if n <= 1:
            return 1.0
        return 1.0 + (self.smt_factor - 1.0) * min(n - 1, self.smt_ways - 1)


class MemorySystem:
    """Simulation resources pricing memory and compute on a topology."""

    def __init__(self, sim: Simulator, topo: MachineTopology, params: MemoryParams):
        self.sim = sim
        self.topo = topo
        self.params = params
        self.socket_pipes: List[SharedBandwidth] = [
            SharedBandwidth(sim, params.socket_stream_bw, name=f"mem.socket{s.index}")
            for s in topo.sockets
        ]
        self.core_ports: List[SharedBandwidth] = [
            SharedBandwidth(sim, params.core_stream_bw, name=f"mem.coreport{c.index}")
            for c in topo.cores
        ]
        self.cores: List[SmtCore] = [
            SmtCore(
                sim,
                smt_ways=topo.spec.node.smt_per_core,
                smt_factor=params.smt_throughput_factor,
                name=f"cpu.core{c.index}",
            )
            for c in topo.cores
        ]
        self.interconnects: List[SharedBandwidth] = [
            SharedBandwidth(sim, params.interconnect_bw, name=f"mem.qpi{n.index}")
            for n in topo.nodes
        ]

    # -- compute --------------------------------------------------------

    def compute(self, pu_index: int, work_seconds: float) -> Awaitable:
        """Execute ``work_seconds`` of single-thread work on ``pu_index``'s core."""
        if work_seconds < 0:
            raise ValueError(f"negative work: {work_seconds}")
        core = self.topo.pu(pu_index).core_index
        return self.cores[core].transfer(work_seconds)

    # -- memory traffic ---------------------------------------------------

    def stream(
        self,
        pu_index: int,
        bytes_read: float,
        bytes_written: float,
        home_socket: int,
    ) -> Generator:
        """Simulated generator: stream a read/write mix against ``home_socket``.

        Intended for ``yield from``::

            yield from mem.stream(pu, nbytes, nbytes, home_socket=0)

        Cross-socket (same node) traffic pays the NUMA factor on the core
        side and also drains through the node interconnect.  Cross-*node*
        home sockets are a runtime bug — remote-node data moves via the
        network layer, never via load/store — and raise.
        """
        traffic = self.params.traffic_bytes(bytes_read, bytes_written)
        pu = self.topo.pu(pu_index)
        home = self.topo.sockets[home_socket]
        if home.node_index != pu.node_index:
            raise TopologyError(
                f"PU {pu_index} (node {pu.node_index}) cannot load/store to "
                f"socket {home_socket} on node {home.node_index}; use the network"
            )
        local = pu.socket_index == home_socket
        core_traffic = traffic if local else traffic * self.params.numa_factor
        legs = [
            self.socket_pipes[home_socket].transfer(traffic),
            self.core_ports[pu.core_index].transfer(core_traffic),
        ]
        if not local:
            legs.append(self.interconnects[pu.node_index].transfer(traffic))
        yield self.sim.all_of(legs)

    def copy(
        self,
        pu_index: int,
        nbytes: float,
        src_socket: int,
        dst_socket: int,
    ) -> Generator:
        """Simulated generator: memcpy ``nbytes`` between two sockets' memory.

        This is the load/store path used by privatized shared pointers and
        by PSHM-bypassed ``upc_memcpy``: reads drain from the source
        socket's controller, writes (with write-allocate) from the
        destination's, the copying core's port carries both, and any
        remote-socket legs pay NUMA and interconnect costs.
        """
        pu = self.topo.pu(pu_index)
        for sock in (src_socket, dst_socket):
            if self.topo.sockets[sock].node_index != pu.node_index:
                raise TopologyError(
                    f"PU {pu_index} cannot memcpy involving socket {sock} on "
                    f"another node; use the network"
                )
        w = 2.0 if self.params.write_allocate else 1.0
        read_traffic = float(nbytes)
        write_traffic = w * nbytes
        core_traffic = 0.0
        for sock, traffic in ((src_socket, read_traffic), (dst_socket, write_traffic)):
            if sock == pu.socket_index:
                core_traffic += traffic
            else:
                core_traffic += traffic * self.params.numa_factor
        legs = [
            self.socket_pipes[src_socket].transfer(read_traffic),
            self.socket_pipes[dst_socket].transfer(write_traffic),
            self.core_ports[pu.core_index].transfer(core_traffic),
        ]
        remote_traffic = sum(
            t
            for sock, t in ((src_socket, read_traffic), (dst_socket, write_traffic))
            if sock != pu.socket_index
        )
        if remote_traffic > 0:
            legs.append(self.interconnects[pu.node_index].transfer(remote_traffic))
        yield self.sim.all_of(legs)

    def translation_overhead(self, accesses: int) -> float:
        """Seconds of shared-pointer translation for ``accesses`` accesses."""
        return accesses * self.params.pointer_translation_time

    def charge_translation(self, pu_index: int, accesses: int) -> Awaitable:
        """Shared-pointer translation is CPU work: charge the core."""
        return self.compute(pu_index, self.translation_overhead(accesses))

    # -- analytic helpers (used by tests and calibration) -----------------

    def uncontended_stream_time(
        self, bytes_read: float, bytes_written: float, local: bool = True
    ) -> float:
        traffic = self.params.traffic_bytes(bytes_read, bytes_written)
        core_traffic = traffic if local else traffic * self.params.numa_factor
        return max(
            traffic / self.params.socket_stream_bw,
            core_traffic / self.params.core_stream_bw,
        )
