"""Machine topology: a pure-data hwloc-like hardware tree.

A :class:`MachineTopology` is built from a :class:`MachineSpec` and holds
the cluster → node → socket (ccNUMA domain) → core → processing-unit tree.
It answers the locality queries that the UPC runtime, the thread-group
extension and the affinity binder all rely on: "which PUs share a socket
with this one?", "how far apart are these two PUs?".

The topology is deliberately free of simulator state — cost models
(:mod:`repro.machine.memory`, :mod:`repro.network.fabric`) attach
simulation resources to it separately, so one topology can be priced under
several parameter sets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import TopologyError

__all__ = [
    "Locality",
    "NodeSpec",
    "MachineSpec",
    "ProcessingUnit",
    "Core",
    "Socket",
    "Node",
    "MachineTopology",
]


class Locality(enum.IntEnum):
    """Distance classes between two processing units (closest first).

    Ordering is meaningful: ``Locality.SMT < Locality.SOCKET`` etc., so
    victim-selection code can sort peers by locality.
    """

    SELF = 0      #: the same PU
    SMT = 1       #: same core, different hardware thread
    SOCKET = 2    #: same socket / ccNUMA domain (shared L3)
    NODE = 3      #: same node, different socket (QPI/HT hop)
    NETWORK = 4   #: different node (interconnect)


@dataclass(frozen=True)
class NodeSpec:
    """Shape of one compute node."""

    sockets: int = 2
    cores_per_socket: int = 4
    smt_per_core: int = 1

    def __post_init__(self) -> None:
        for name in ("sockets", "cores_per_socket", "smt_per_core"):
            if getattr(self, name) < 1:
                raise TopologyError(f"{name} must be >= 1, got {getattr(self, name)}")

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def pus(self) -> int:
        return self.cores * self.smt_per_core


@dataclass(frozen=True)
class MachineSpec:
    """Shape of a whole cluster: ``nodes`` identical :class:`NodeSpec` nodes."""

    name: str
    nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise TopologyError(f"nodes must be >= 1, got {self.nodes}")

    @property
    def total_pus(self) -> int:
        return self.nodes * self.node.pus

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores


@dataclass(frozen=True)
class ProcessingUnit:
    """One hardware thread.  ``index`` is global across the machine.

    Indices enumerate PUs node-major, then socket, then core, then SMT
    sibling — the same order hwloc's logical indexing produces on these
    systems.
    """

    index: int
    node_index: int
    socket_index: int      # global socket index
    core_index: int        # global core index
    smt_index: int         # 0..smt_per_core-1 within the core

    @property
    def key(self) -> tuple:
        return (self.node_index, self.socket_index, self.core_index, self.smt_index)


@dataclass(frozen=True)
class Core:
    index: int             # global core index
    node_index: int
    socket_index: int      # global socket index
    pu_indices: tuple      # global PU indices on this core


@dataclass(frozen=True)
class Socket:
    index: int             # global socket index
    node_index: int
    core_indices: tuple    # global core indices
    pu_indices: tuple      # global PU indices


@dataclass(frozen=True)
class Node:
    index: int
    socket_indices: tuple
    core_indices: tuple
    pu_indices: tuple


class MachineTopology:
    """The instantiated hardware tree plus locality queries."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.pus: List[ProcessingUnit] = []
        self.cores: List[Core] = []
        self.sockets: List[Socket] = []
        self.nodes: List[Node] = []
        self._build()

    def _build(self) -> None:
        ns = self.spec.node
        pu_idx = core_idx = sock_idx = 0
        for n in range(self.spec.nodes):
            node_socks: list[int] = []
            node_cores: list[int] = []
            node_pus: list[int] = []
            for _s in range(ns.sockets):
                sock_cores: list[int] = []
                sock_pus: list[int] = []
                for _c in range(ns.cores_per_socket):
                    core_pus: list[int] = []
                    for smt in range(ns.smt_per_core):
                        self.pus.append(
                            ProcessingUnit(
                                index=pu_idx,
                                node_index=n,
                                socket_index=sock_idx,
                                core_index=core_idx,
                                smt_index=smt,
                            )
                        )
                        core_pus.append(pu_idx)
                        pu_idx += 1
                    self.cores.append(
                        Core(
                            index=core_idx,
                            node_index=n,
                            socket_index=sock_idx,
                            pu_indices=tuple(core_pus),
                        )
                    )
                    sock_cores.append(core_idx)
                    sock_pus.extend(core_pus)
                    core_idx += 1
                self.sockets.append(
                    Socket(
                        index=sock_idx,
                        node_index=n,
                        core_indices=tuple(sock_cores),
                        pu_indices=tuple(sock_pus),
                    )
                )
                node_socks.append(sock_idx)
                node_cores.extend(sock_cores)
                node_pus.extend(sock_pus)
                sock_idx += 1
            self.nodes.append(
                Node(
                    index=n,
                    socket_indices=tuple(node_socks),
                    core_indices=tuple(node_cores),
                    pu_indices=tuple(node_pus),
                )
            )

    # -- counts --------------------------------------------------------

    @property
    def total_pus(self) -> int:
        return len(self.pus)

    @property
    def total_cores(self) -> int:
        return len(self.cores)

    @property
    def total_sockets(self) -> int:
        return len(self.sockets)

    @property
    def total_nodes(self) -> int:
        return len(self.nodes)

    # -- lookups ---------------------------------------------------------

    def pu(self, index: int) -> ProcessingUnit:
        try:
            return self.pus[index]
        except IndexError:
            raise TopologyError(
                f"PU {index} out of range (machine has {self.total_pus})"
            ) from None

    def core_of(self, pu_index: int) -> Core:
        return self.cores[self.pu(pu_index).core_index]

    def socket_of(self, pu_index: int) -> Socket:
        return self.sockets[self.pu(pu_index).socket_index]

    def node_of(self, pu_index: int) -> Node:
        return self.nodes[self.pu(pu_index).node_index]

    # -- locality queries -----------------------------------------------

    def locality(self, pu_a: int, pu_b: int) -> Locality:
        """Distance class between two PUs (smaller = closer)."""
        a, b = self.pu(pu_a), self.pu(pu_b)
        if a.index == b.index:
            return Locality.SELF
        if a.core_index == b.core_index:
            return Locality.SMT
        if a.socket_index == b.socket_index:
            return Locality.SOCKET
        if a.node_index == b.node_index:
            return Locality.NODE
        return Locality.NETWORK

    def pus_within(self, pu_index: int, level: Locality) -> tuple:
        """Global indices of all PUs at distance <= ``level`` from ``pu_index``.

        ``pus_within(p, Locality.NODE)`` is "everything on my node",
        including ``p`` itself.
        """
        p = self.pu(pu_index)
        if level == Locality.SELF:
            return (pu_index,)
        if level == Locality.SMT:
            return self.cores[p.core_index].pu_indices
        if level == Locality.SOCKET:
            return self.sockets[p.socket_index].pu_indices
        if level == Locality.NODE:
            return self.nodes[p.node_index].pu_indices
        return tuple(range(self.total_pus))

    def iter_pus(self) -> Iterator[ProcessingUnit]:
        return iter(self.pus)

    def same_node(self, pu_a: int, pu_b: int) -> bool:
        return self.pu(pu_a).node_index == self.pu(pu_b).node_index

    def same_socket(self, pu_a: int, pu_b: int) -> bool:
        return self.pu(pu_a).socket_index == self.pu(pu_b).socket_index

    def describe(self) -> str:
        ns = self.spec.node
        return (
            f"{self.spec.name}: {self.spec.nodes} nodes x "
            f"{ns.sockets} sockets x {ns.cores_per_socket} cores x "
            f"{ns.smt_per_core} SMT = {self.total_pus} PUs"
        )

    def __repr__(self) -> str:
        return f"<MachineTopology {self.describe()}>"
