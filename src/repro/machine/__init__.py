"""Hierarchical machine models: topology, memory cost model, affinity.

The paper's clusters are "clusters of SMPs": multi-socket ccNUMA nodes
with multi-core (and, on Nehalem, SMT) processors, joined by InfiniBand or
Ethernet.  This package describes such machines (:mod:`~repro.machine.topology`),
prices memory traffic on them (:mod:`~repro.machine.memory`), places
threads onto them (:mod:`~repro.machine.affinity`) and provides the two
experimental platforms from Table 2.1 as presets
(:mod:`~repro.machine.presets`).
"""

from repro.machine.topology import (
    Core,
    Locality,
    MachineSpec,
    MachineTopology,
    Node,
    NodeSpec,
    ProcessingUnit,
    Socket,
)
from repro.machine.memory import MemoryParams, MemorySystem, SmtCore
from repro.machine.affinity import (
    AffinityMask,
    BindPolicy,
    bind_compact,
    bind_round_robin_sockets,
    bind_unbound,
)
from repro.machine import presets

__all__ = [
    "AffinityMask",
    "BindPolicy",
    "Core",
    "Locality",
    "MachineSpec",
    "MachineTopology",
    "MemoryParams",
    "MemorySystem",
    "Node",
    "NodeSpec",
    "ProcessingUnit",
    "SmtCore",
    "Socket",
    "bind_compact",
    "bind_round_robin_sockets",
    "bind_unbound",
    "presets",
]
