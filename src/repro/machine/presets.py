"""The paper's experimental platforms (Table 2.1) as machine presets.

Two clusters hosted at the GWU High Performance Computing Laboratory:

* **Lehman** — 12 nodes, dual-socket quad-core Intel Xeon E5520 (Nehalem,
  2.27 GHz, 2-way HyperThreading), 8 GB RAM, Mellanox ConnectX **QDR**
  InfiniBand.
* **Pyramid** — 128 nodes, dual-socket quad-core AMD Opteron 2354
  (Barcelona, 2.2 GHz), 8 GB RAM, Mellanox **DDR** InfiniBand (plus a
  Gigabit Ethernet fabric used in the UTS experiments).

Memory calibration: node STREAM throughput on the dual-socket Nehalem is
~24.5 GB/s (Table 4.1), so each socket sustains ~12.3 GB/s; Barcelona's
DDR2-based sockets sustain ~8 GB/s.  NUMA penalty is the thesis's quoted
"15% to 40%" (we use 1.3×).  Shared-pointer translation time is set so
the twisted-STREAM baseline lands at Table 3.1's 3.2 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.machine.memory import MemoryParams
from repro.machine.topology import MachineSpec, MachineTopology, NodeSpec

__all__ = ["PlatformPreset", "lehman", "pyramid", "generic_smp", "PRESETS", "platform_table"]

_GB = 1e9


@dataclass(frozen=True)
class PlatformPreset:
    """A named machine + memory calibration + descriptive metadata.

    ``info`` carries the Table 2.1 rows that are descriptive only (cache
    sizes, clock rates) so the T2.1 experiment can print the table.
    """

    machine: MachineSpec
    memory: MemoryParams
    default_conduit: str
    info: dict = field(default_factory=dict)

    def topology(self) -> MachineTopology:
        return MachineTopology(self.machine)


def lehman(nodes: int = 12) -> PlatformPreset:
    """The Lehman GPU cluster (GPUs unused in the thesis)."""
    machine = MachineSpec(
        name="Lehman",
        nodes=nodes,
        node=NodeSpec(sockets=2, cores_per_socket=4, smt_per_core=2),
    )
    memory = MemoryParams(
        socket_stream_bw=12.3 * _GB,
        core_stream_bw=6.5 * _GB,
        numa_factor=1.3,
        interconnect_bw=23.0 * _GB,     # QPI
        smt_throughput_factor=1.2,      # Fig 4.4: SMT adds 5-30%
        # Berkeley UPC's shared-pointer dereference is a runtime call
        # (~50ns for the 3 accesses of a STREAM element); this constant
        # makes the twisted-triad baseline land at Table 3.1's 3.2 GB/s.
        pointer_translation_time=17e-9,
        # Bandwidths below are STREAM-calibrated (write-allocate already
        # folded into the sustained figures), so traffic counts writes once.
        write_allocate=False,
        core_flops=9.0 * _GB,           # 72 GFlops peak / 8 cores
    )
    info = {
        "Machine Location": "GWU HPCL",
        "Processor Type": "Intel Xeon (Nehalem) E5520",
        "Clock Rate (GHz)": 2.27,
        "L1 Cache/Core": "32KB(D)+32KB(I)",
        "L2 Cache/Core": "256KB",
        "L3 Cache/Processor": "8MB",
        "Threads/Core": 2,
        "Cores/Processor": 4,
        "Processors/Node": 2,
        "Cores/Node": 8,
        "Threads/Node": 16,
        "Peak Perf./Node (GFlops)": 72,
        "Nodes": 12,
        "Network BW (GB/s)": "5 (QDR)",
    }
    return PlatformPreset(machine, memory, default_conduit="ib-qdr", info=info)


def pyramid(nodes: int = 128) -> PlatformPreset:
    """The Pyramid Opteron cluster."""
    machine = MachineSpec(
        name="Pyramid",
        nodes=nodes,
        node=NodeSpec(sockets=2, cores_per_socket=4, smt_per_core=1),
    )
    memory = MemoryParams(
        socket_stream_bw=8.0 * _GB,
        core_stream_bw=5.0 * _GB,
        numa_factor=1.35,
        interconnect_bw=6.4 * _GB,      # HyperTransport
        smt_throughput_factor=1.0,      # no SMT on Barcelona
        pointer_translation_time=19e-9,
        write_allocate=False,
        core_flops=8.8 * _GB,           # 70.4 GFlops peak / 8 cores
    )
    info = {
        "Machine Location": "GWU HPCL",
        "Processor Type": "AMD Opteron (Barcelona) 2354",
        "Clock Rate (GHz)": 2.2,
        "L1 Cache/Core": "64KB(D)+64KB(I)",
        "L2 Cache/Core": "512KB",
        "L3 Cache/Processor": "2MB",
        "Threads/Core": 1,
        "Cores/Processor": 4,
        "Processors/Node": 2,
        "Cores/Node": 8,
        "Threads/Node": 8,
        "Peak Perf./Node (GFlops)": 70.4,
        "Nodes": 128,
        "Network BW (GB/s)": "3 (DDR)",
    }
    return PlatformPreset(machine, memory, default_conduit="ib-ddr", info=info)


def generic_smp(
    nodes: int = 1,
    sockets: int = 2,
    cores_per_socket: int = 4,
    smt_per_core: int = 1,
    memory: Optional[MemoryParams] = None,
) -> PlatformPreset:
    """A configurable cluster for unit tests and what-if studies."""
    machine = MachineSpec(
        name="generic",
        nodes=nodes,
        node=NodeSpec(
            sockets=sockets,
            cores_per_socket=cores_per_socket,
            smt_per_core=smt_per_core,
        ),
    )
    return PlatformPreset(
        machine, memory or MemoryParams(), default_conduit="ib-qdr", info={}
    )


PRESETS = {"lehman": lehman, "pyramid": pyramid, "generic": generic_smp}


def platform_table() -> list[dict]:
    """Rows of Table 2.1 ('Platform Characteristics'), one per machine."""
    rows = []
    for preset in (lehman(), pyramid()):
        row = {"Machine Name": preset.machine.name}
        row.update(preset.info)
        rows.append(row)
    return rows
