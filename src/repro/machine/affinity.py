"""Thread/process placement: affinity masks and numactl-like policies.

The thesis binds UPC processes cyclically to ccNUMA sockets with
``numactl`` and lets sub-threads inherit the parent's mask (§4.3.2).
This module reproduces that machinery:

* :class:`AffinityMask` — the set of PUs a rank may run on.
* :func:`bind_round_robin_sockets` — the paper's default: rank *i* on a
  node gets that node's socket ``i % sockets``, sub-threads stay on-chip.
* :func:`bind_compact` — one PU per rank, filling cores before SMT
  siblings (the layout used for pure-UPC runs).
* :func:`bind_unbound` — no binding: every rank may run anywhere on its
  node, modelling the OS scheduler.  First-touch placement then lands all
  of a rank's memory on the allocating thread's socket, which is what
  makes the un-bound ``1×8`` configuration in Table 4.1 slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import AffinityError
from repro.machine.topology import MachineTopology

__all__ = [
    "AffinityMask",
    "BindPolicy",
    "Placement",
    "assign_ranks_to_nodes",
    "bind_compact",
    "bind_round_robin_sockets",
    "bind_unbound",
    "subthread_pus",
]


@dataclass(frozen=True)
class AffinityMask:
    """An immutable set of PU indices a thread may execute on."""

    pus: tuple

    def __post_init__(self) -> None:
        if not self.pus:
            raise AffinityError("empty affinity mask")
        object.__setattr__(self, "pus", tuple(sorted(set(self.pus))))

    def __contains__(self, pu_index: int) -> bool:
        return pu_index in self.pus

    def __len__(self) -> int:
        return len(self.pus)

    @property
    def primary(self) -> int:
        """The PU a single-threaded rank runs on (lowest index in mask)."""
        return self.pus[0]

    def intersect(self, other: "AffinityMask") -> "AffinityMask":
        common = tuple(p for p in self.pus if p in other.pus)
        if not common:
            raise AffinityError(f"disjoint masks: {self.pus} vs {other.pus}")
        return AffinityMask(common)


@dataclass(frozen=True)
class Placement:
    """Per-rank affinity masks for one program launch."""

    masks: tuple  # tuple[AffinityMask, ...]
    policy: str

    def __len__(self) -> int:
        return len(self.masks)

    def mask(self, rank: int) -> AffinityMask:
        try:
            return self.masks[rank]
        except IndexError:
            raise AffinityError(
                f"rank {rank} out of range ({len(self.masks)} ranks placed)"
            ) from None

    def home_pu(self, rank: int) -> int:
        return self.masks[rank].primary


def assign_ranks_to_nodes(
    topo: MachineTopology, nranks: int, per_node: Optional[int] = None
) -> List[int]:
    """Block-distribute ranks over nodes (consecutive ranks share a node).

    This is GASNet's default process layout.  ``per_node`` defaults to an
    even split; the machine must have room.
    """
    if nranks < 1:
        raise AffinityError(f"nranks must be >= 1, got {nranks}")
    if per_node is None:
        per_node = -(-nranks // topo.total_nodes)  # ceil division
    if per_node < 1:
        raise AffinityError(f"per_node must be >= 1, got {per_node}")
    nodes_needed = -(-nranks // per_node)
    if nodes_needed > topo.total_nodes:
        raise AffinityError(
            f"{nranks} ranks at {per_node}/node need {nodes_needed} nodes; "
            f"machine has {topo.total_nodes}"
        )
    return [rank // per_node for rank in range(nranks)]


BindPolicy = str  # "sockets" | "compact" | "unbound"


def bind_round_robin_sockets(
    topo: MachineTopology, nranks: int, per_node: Optional[int] = None
) -> Placement:
    """numactl-style: local rank *i* bound to socket ``i % sockets`` of its node."""
    node_of = assign_ranks_to_nodes(topo, nranks, per_node)
    sockets_per_node = topo.spec.node.sockets
    masks = []
    local_rank: dict[int, int] = {}
    for rank in range(nranks):
        node = topo.nodes[node_of[rank]]
        lr = local_rank.get(node.index, 0)
        local_rank[node.index] = lr + 1
        sock = topo.sockets[node.socket_indices[lr % sockets_per_node]]
        masks.append(AffinityMask(sock.pu_indices))
    return Placement(tuple(masks), policy="sockets")


def bind_compact(
    topo: MachineTopology, nranks: int, per_node: Optional[int] = None
) -> Placement:
    """One PU per rank: fill distinct cores of a node first, SMT siblings last.

    Matches how the paper runs pure-UPC configurations (one process per
    core, HyperThreads used only at the 2-threads-per-core design point).
    """
    node_of = assign_ranks_to_nodes(topo, nranks, per_node)
    masks = []
    local_rank: dict[int, int] = {}
    for rank in range(nranks):
        node = topo.nodes[node_of[rank]]
        lr = local_rank.get(node.index, 0)
        local_rank[node.index] = lr + 1
        ncores = len(node.core_indices)
        smt = lr // ncores
        core_slot = lr % ncores
        core = topo.cores[node.core_indices[core_slot]]
        if smt >= len(core.pu_indices):
            raise AffinityError(
                f"node {node.index} oversubscribed: local rank {lr} but only "
                f"{len(node.pu_indices)} PUs"
            )
        masks.append(AffinityMask((core.pu_indices[smt],)))
    return Placement(tuple(masks), policy="compact")


def bind_unbound(
    topo: MachineTopology, nranks: int, per_node: Optional[int] = None
) -> Placement:
    """No binding: each rank may run on any PU of its node."""
    node_of = assign_ranks_to_nodes(topo, nranks, per_node)
    masks = [
        AffinityMask(topo.nodes[node_of[rank]].pu_indices) for rank in range(nranks)
    ]
    return Placement(tuple(masks), policy="unbound")


def subthread_pus(topo: MachineTopology, mask: AffinityMask, count: int) -> List[int]:
    """Choose PUs for ``count`` sub-threads inside ``mask``.

    Fills distinct cores first, then SMT siblings, then wraps
    (oversubscription beyond the mask degrades to time-slicing in the
    :class:`~repro.machine.memory.SmtCore` model).
    """
    if count < 1:
        raise AffinityError(f"count must be >= 1, got {count}")
    by_core: dict[int, list[int]] = {}
    for pu in mask.pus:
        by_core.setdefault(topo.pu(pu).core_index, []).append(pu)
    for siblings in by_core.values():
        siblings.sort(key=lambda p: topo.pu(p).smt_index)
    cores_sorted = sorted(by_core)
    ordered: list[int] = []
    depth = 0
    while len(ordered) < len(mask.pus):
        for core in cores_sorted:
            siblings = by_core[core]
            if depth < len(siblings):
                ordered.append(siblings[depth])
        depth += 1
    return [ordered[i % len(ordered)] for i in range(count)]
