"""Distributed NAS FT: UPC (split-phase / overlap / hybrid) and MPI.

The 1-D decomposition (Fig 4.3) computes (y, x) locally in layout D1 and
z locally in layout D2; a global exchange re-localizes between them.
Variants:

* ``split`` — bulk-synchronous like the Fortran-MPI original: compute all
  planes, transpose, exchange (blocking point-to-point memputs), compute.
* ``overlap`` — the Bell et al. pattern: as soon as one plane's FFT
  finishes, its per-peer slices go out with non-blocking puts, hiding
  communication behind the next plane's compute.

Hybrid runs layer sub-threads (OpenMP / Cilk / thread pool) under each
UPC thread: compute phases are worksharing loops; split-phase exchanges
stay master-only (THREAD_FUNNELED) while overlap lets sub-threads issue
their own puts (THREAD_MULTIPLE), exactly the distinction §4.2.3 draws.

Every phase is timed per thread; the harness reads the critical-path
(max-over-threads) per phase to regenerate Fig 4.4/4.5/4.6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.ft.classes import FtClass, ft_class
from repro.apps.ft.data import FtState
from repro.apps.ft.kernel import evolve_factors, serial_ft
from repro.machine.presets import PlatformPreset, lehman
from repro.obs import names
from repro.subthreads import Cilk, OpenMP, ThreadPool, ThreadSafety
from repro.upc import UpcProgram, collectives

__all__ = ["FtConfig", "run_ft", "run_exchange_only"]

_RUNTIMES = {"openmp": OpenMP, "cilk": Cilk, "pool": ThreadPool}
#: Streamed bytes multiplier for a pack/unpack pass (read + write).
_PACK_RW = 2


@dataclass(frozen=True)
class FtConfig:
    """One FT run's knobs."""

    clazz: FtClass = field(default_factory=lambda: ft_class("S"))
    variant: str = "split"             #: "split" | "overlap"
    iterations: int = 0                #: 0 = the class default
    backing: str = "real"              #: "real" (verified) | "virtual"
    fft_efficiency: float = 0.15       #: sustained fraction of peak for FFTs
    privatized: bool = False           #: cast intra-supernode puts (Fig 3.4)
    asynchronous: bool = False         #: async split-phase exchange (Fig 3.4b)
    omp_threads: int = 0               #: sub-threads per UPC thread (0 = none)
    subthread_runtime: str = "openmp"  #: "openmp" | "cilk" | "pool"
    verify: Optional[bool] = None      #: default: verify iff backing == real

    def __post_init__(self) -> None:
        if self.variant not in ("split", "overlap"):
            raise ValueError(f"unknown variant {self.variant!r}")
        if self.subthread_runtime not in _RUNTIMES:
            raise ValueError(f"unknown sub-thread runtime {self.subthread_runtime!r}")

    @property
    def should_verify(self) -> bool:
        if self.verify is not None:
            return self.verify
        return self.backing == "real"


class _Plan:
    """Per-thread precomputed flop/byte counts for one configuration."""

    def __init__(self, cfg: FtConfig, state: FtState):
        cls = cfg.clazz
        self.plane_flops_2d = 5.0 * cls.ny * cls.nx * math.log2(cls.ny * cls.nx)
        self.row_flops_1d = 5.0 * cls.nz * math.log2(cls.nz) * cls.nx
        self.local_bytes = state.local_bytes
        self.plane_bytes = state.plane_bytes
        self.plane_slice_bytes = state.plane_slice_bytes
        self.row_bytes_d2 = cls.nz * cls.nx * 16
        self.row_slice_bytes = state.lnz * cls.nx * 16


def _subthread_runtime(upc, cfg: FtConfig):
    if not cfg.omp_threads:
        return None
    safety = (
        ThreadSafety.MULTIPLE if cfg.variant == "overlap" else ThreadSafety.FUNNELED
    )
    return _RUNTIMES[cfg.subthread_runtime](upc, cfg.omp_threads, safety=safety)


# ---------------------------------------------------------------------------
# phase helpers (UPC side).  Each charges simulated cost — possibly through
# sub-threads — then performs the instantaneous data-plane operation.
# ---------------------------------------------------------------------------

def _compute_planes(upc, rt, nplanes: int, flops_per_plane: float,
                    stream_per_plane: float, efficiency: float):
    """Charge an FFT-like pass over ``nplanes`` work items."""
    if rt is None:
        yield from upc.compute_flops(nplanes * flops_per_plane, efficiency)
        if stream_per_plane:
            yield from upc.local_stream(
                nplanes * stream_per_plane, nplanes * stream_per_plane
            )
        return

    def body(st, rng):
        n = len(rng)
        if n == 0:
            return
        yield from st.compute_flops(n * flops_per_plane, efficiency)
        if stream_per_plane:
            yield from st.local_stream(n * stream_per_plane, n * stream_per_plane)

    yield from rt.parallel_for(nplanes, body)


def _split_exchange(upc, cfg: FtConfig, state: FtState, pack: str):
    """Split-phase global exchange (pack direction 'd1' or 'd2')."""
    me = upc.MYTHREAD
    if pack == "d1":
        state.pack_d1_to_blocks(me)
    else:
        state.pack_d2_to_blocks(me)
    yield from collectives.exchange(
        upc, upc.program.world, state.bytes_per_pair,
        asynchronous=cfg.asynchronous, privatized=cfg.privatized,
    )
    if pack == "d1":
        state.unpack_blocks_to_d2(me)
    else:
        state.unpack_blocks_to_d1(me)


def _overlap_fft_exchange(upc, rt, cfg: FtConfig, state: FtState, plan: _Plan,
                          direction: str, inverse: bool, timers):
    """Fused compute+exchange: per-plane FFT then non-blocking slices out.

    ``direction`` is "fwd" (D1 planes, 2-D FFTs, exchange to D2) or "inv"
    (D2 rows, 1-D FFTs, exchange to D1).
    """
    me, T = upc.MYTHREAD, upc.THREADS
    if direction == "fwd":
        nitems = state.lnz
        flops = plan.plane_flops_2d
        slice_bytes = plan.plane_slice_bytes
        fft_timer = "fft2d"
    else:
        nitems = state.lny
        flops = plan.row_flops_1d
        slice_bytes = plan.row_slice_bytes
        fft_timer = "fft1d"

    handles: List = []

    # Castability is topological and fixed for the run: precompute the
    # peer order and per-destination privatization verdicts once instead
    # of re-querying can_cast on every plane (the analyzer's PGAS012
    # verdict).  Same memput_nb order and arguments, so the simulated
    # cost stream is unchanged.
    peers = [(me + k) % T for k in range(1, T)]
    priv_ok = {dst: cfg.privatized and upc.can_cast(dst) for dst in peers}

    def issue_puts(ctx, can_nb=True):
        for dst in peers:
            handles.append(ctx.memput_nb(dst, slice_bytes,
                                         privatized=priv_ok[dst]))

    if rt is None:
        for p in range(nitems):
            timers[fft_timer].start()
            yield from upc.compute_flops(flops, cfg.fft_efficiency)
            timers[fft_timer].stop()
            issue_puts(upc)
    else:
        def body(st, rng):
            for _p in rng:
                yield from st.compute_flops(flops, cfg.fft_efficiency)
                issue_puts(st)

        timers[fft_timer].start()
        yield from rt.parallel_for(nitems, body)
        timers[fft_timer].stop()

    # data plane: the packing is logically per-plane; do it in bulk here
    if direction == "fwd":
        state.fft2d(me, inverse=inverse)
        state.pack_d1_to_blocks(me)
    else:
        state.fft1d(me, inverse=inverse)
        state.pack_d2_to_blocks(me)

    timers["alltoall"].start()
    for h in handles:
        yield from h.wait()
    yield from upc.program.world.barrier(me)
    timers["alltoall"].stop()

    if direction == "fwd":
        state.unpack_blocks_to_d2(me)
    else:
        state.unpack_blocks_to_d1(me)


# ---------------------------------------------------------------------------
# main programs
# ---------------------------------------------------------------------------

def _ft_upc_main(upc, cfg: FtConfig, state: FtState):
    me, T = upc.MYTHREAD, upc.THREADS
    cls = cfg.clazz
    iters = cfg.iterations or cls.iterations
    plan = _Plan(cfg, state)
    rt = _subthread_runtime(upc, cfg)
    stats = upc.stats
    timers = {
        name: stats.phase(name, key=me)
        for name in ("fft2d", "fft1d", "evolve", "transpose", "alltoall")
    }
    factors_cache: Dict[int, np.ndarray] = {}

    if me == 0:
        state.init_field()
    yield from upc.barrier()
    t_start = upc.wtime()

    # -- forward 3-D FFT (once) ------------------------------------------
    if cfg.variant == "split":
        timers["fft2d"].start()
        yield from _compute_planes(
            upc, rt, state.lnz, plan.plane_flops_2d, 0.0, cfg.fft_efficiency
        )
        state.fft2d(me)
        timers["fft2d"].stop()
        timers["transpose"].start()
        yield from _compute_planes(
            upc, rt, state.lnz, 0.0, plan.plane_bytes, 1.0
        )
        timers["transpose"].stop()
        timers["alltoall"].start()
        yield from _split_exchange(upc, cfg, state, pack="d1")
        timers["alltoall"].stop()
    else:
        yield from _overlap_fft_exchange(
            upc, rt, cfg, state, plan, "fwd", inverse=False, timers=timers
        )
    timers["fft1d"].start()
    yield from _compute_planes(
        upc, rt, state.lny, plan.row_flops_1d, 0.0, cfg.fft_efficiency
    )
    state.fft1d(me)
    timers["fft1d"].stop()

    # keep the spectrum: iterations evolve u1, they don't accumulate
    spectrum = state.d2.get(me).copy() if state.real else None

    # -- iterations ---------------------------------------------------------
    checksums: List[complex] = []
    for t in range(1, iters + 1):
        if state.real:
            if t not in factors_cache:
                factors_cache.clear()
                factors_cache[t] = state.factors_slice_d2(
                    me, evolve_factors(cls, t)
                )
            state.d2[me] = spectrum * factors_cache[t]
        timers["evolve"].start()
        yield from _compute_planes(
            upc, rt, state.lny, 0.0, 2 * plan.row_bytes_d2, 1.0
        )
        timers["evolve"].stop()

        if cfg.variant == "split":
            timers["fft1d"].start()
            yield from _compute_planes(
                upc, rt, state.lny, plan.row_flops_1d, 0.0, cfg.fft_efficiency
            )
            state.fft1d(me, inverse=True)
            timers["fft1d"].stop()
            timers["transpose"].start()
            yield from _compute_planes(
                upc, rt, state.lny, 0.0, plan.row_bytes_d2, 1.0
            )
            timers["transpose"].stop()
            timers["alltoall"].start()
            yield from _split_exchange(upc, cfg, state, pack="d2")
            timers["alltoall"].stop()
        else:
            yield from _overlap_fft_exchange(
                upc, rt, cfg, state, plan, "inv", inverse=True, timers=timers
            )

        timers["fft2d"].start()
        yield from _compute_planes(
            upc, rt, state.lnz, plan.plane_flops_2d, 0.0, cfg.fft_efficiency
        )
        state.fft2d(me, inverse=True)
        timers["fft2d"].stop()

        local = state.local_checksum(me)
        total = yield from collectives.allreduce(
            upc, upc.program.world, local, lambda a, b: a + b, nbytes=16.0
        )
        checksums.append(total)

    elapsed = upc.wtime() - t_start
    return {"thread": me, "elapsed": elapsed, "checksums": checksums}


def _ft_mpi_main(rank, cfg: FtConfig, state: FtState):
    """The Fortran-MPI comparator: split-phase with library alltoall."""
    from repro.mpi import collectives as mpi_coll

    me, T = rank.rank, rank.size
    cls = cfg.clazz
    iters = cfg.iterations or cls.iterations
    plan = _Plan(cfg, state)
    stats = rank.stats
    timers = {
        name: stats.phase(name, key=me)
        for name in ("fft2d", "fft1d", "evolve", "transpose", "alltoall")
    }

    def compute(flops):
        yield from rank.compute_flops(flops, cfg.fft_efficiency)

    if me == 0:
        state.init_field()
    yield from rank.barrier()
    t_start = rank.wtime()

    timers["fft2d"].start()
    yield from compute(state.lnz * plan.plane_flops_2d)
    state.fft2d(me)
    timers["fft2d"].stop()
    timers["transpose"].start()
    yield from rank.local_stream(
        state.lnz * plan.plane_bytes, state.lnz * plan.plane_bytes
    )
    timers["transpose"].stop()
    state.pack_d1_to_blocks(me)
    timers["alltoall"].start()
    yield from mpi_coll.alltoall(rank, state.bytes_per_pair)
    timers["alltoall"].stop()
    state.unpack_blocks_to_d2(me)
    timers["fft1d"].start()
    yield from compute(state.lny * plan.row_flops_1d)
    state.fft1d(me)
    timers["fft1d"].stop()

    spectrum = state.d2.get(me).copy() if state.real else None
    checksums: List[complex] = []
    for t in range(1, iters + 1):
        if state.real:
            state.d2[me] = spectrum * state.factors_slice_d2(
                me, evolve_factors(cls, t)
            )
        timers["evolve"].start()
        yield from rank.local_stream(2 * plan.local_bytes, 2 * plan.local_bytes)
        timers["evolve"].stop()
        timers["fft1d"].start()
        yield from compute(state.lny * plan.row_flops_1d)
        state.fft1d(me, inverse=True)
        timers["fft1d"].stop()
        timers["transpose"].start()
        yield from rank.local_stream(
            state.lny * plan.row_bytes_d2, state.lny * plan.row_bytes_d2
        )
        timers["transpose"].stop()
        state.pack_d2_to_blocks(me)
        timers["alltoall"].start()
        yield from mpi_coll.alltoall(rank, state.bytes_per_pair, tag_base=1000 + t)
        timers["alltoall"].stop()
        state.unpack_blocks_to_d1(me)
        timers["fft2d"].start()
        yield from compute(state.lnz * plan.plane_flops_2d)
        state.fft2d(me, inverse=True)
        timers["fft2d"].stop()
        local = state.local_checksum(me)
        total = yield from mpi_coll.allreduce(
            rank, local, lambda a, b: a + b, nbytes=16.0
        )
        checksums.append(total)

    return {"thread": me, "elapsed": rank.wtime() - t_start, "checksums": checksums}


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def run_ft(
    clazz: str = "S",
    model: str = "upc",
    variant: str = "split",
    threads: int = 4,
    threads_per_node: Optional[int] = None,
    threads_per_process: int = 1,
    omp_threads: int = 0,
    subthread_runtime: str = "openmp",
    preset: Optional[PlatformPreset] = None,
    conduit: Optional[str] = None,
    iterations: int = 0,
    backing: str = "real",
    privatized: bool = False,
    asynchronous: bool = False,
    verify: Optional[bool] = None,
    fft_efficiency: float = 0.15,
) -> Dict:
    """Run one NAS FT configuration; returns metrics and phase times.

    ``model``: "upc" (with optional ``threads_per_process`` > 1 for the
    pthreads backend and ``omp_threads`` > 0 for hybrids) or "mpi".
    Real backing verifies checksums against the serial reference.
    """
    cls = ft_class(clazz)
    if backing == "real" and cls.total_bytes > 128 << 20:
        raise ValueError(
            f"{cls} is too large for real backing; use backing='virtual'"
        )
    cfg = FtConfig(
        clazz=cls, variant=variant, iterations=iterations, backing=backing,
        fft_efficiency=fft_efficiency, privatized=privatized,
        asynchronous=asynchronous, omp_threads=omp_threads,
        subthread_runtime=subthread_runtime, verify=verify,
    )
    state = FtState(cls, threads, backing=backing)

    if model == "upc":
        nodes_needed = -(-threads // (threads_per_node or threads))
        preset = preset or lehman(nodes=max(nodes_needed, 1))
        prog = UpcProgram(
            preset,
            threads=threads,
            threads_per_node=threads_per_node,
            threads_per_process=threads_per_process,
            conduit=conduit,
            binding="sockets" if (omp_threads or threads_per_process > 1) else "compact",
        )
        res = prog.run(_ft_upc_main, cfg, state)
        net = prog.net_params
    elif model == "mpi":
        if variant != "split" or omp_threads:
            raise ValueError("the MPI comparator is split-phase, no sub-threads")
        from repro.mpi import MpiProgram

        nodes_needed = -(-threads // (threads_per_node or threads))
        preset = preset or lehman(nodes=max(nodes_needed, 1))
        prog = MpiProgram(
            preset, ranks=threads, ranks_per_node=threads_per_node,
            conduit=conduit,
        )
        res = prog.run(_ft_mpi_main, cfg, state)
        net = None
    else:
        raise ValueError(f"unknown model {model!r}")

    checksums = res.returns[0]["checksums"]
    if cfg.should_verify and state.real:
        iters = cfg.iterations or cls.iterations
        expected = serial_ft(cls, iterations=iters)
        for got, want in zip(checksums, expected):
            if abs(got - want) > 1e-6 * max(1.0, abs(want)):
                raise AssertionError(
                    f"FT checksum mismatch: got {got}, expected {want}"
                )

    elapsed = max(r["elapsed"] for r in res.returns)
    phases = {
        name: res.stats.timer_max(name)
        for name in ("fft2d", "fft1d", "evolve", "transpose", "alltoall")
    }
    iters = cfg.iterations or cls.iterations
    total_flops = (iters + 1) * cls.fft3d_flops()
    return {
        "class": cls.name,
        "model": model,
        "variant": variant,
        "threads": threads,
        "omp_threads": omp_threads,
        "elapsed_s": elapsed,
        "gflops": total_flops / elapsed / 1e9,
        "phases": phases,
        "comm_s": phases["alltoall"],
        "waitsync_s": res.stats.get_sum(names.GASNET_WAITSYNC_TIME),
        "checksums": checksums,
        "verified": bool(cfg.should_verify and state.real),
    }


def run_exchange_only(
    clazz: str = "B",
    threads: int = 32,
    threads_per_node: int = 8,
    threads_per_process: int = 1,
    pshm: bool = True,
    privatized: bool = False,
    asynchronous: bool = False,
    preset: Optional[PlatformPreset] = None,
    conduit: Optional[str] = None,
    repeats: int = 3,
) -> Dict:
    """Only the FT all-to-all step, at class-B sizes (Fig 3.4).

    Uses virtual backing — the exchange is the object of study; the
    backend (processes/pthreads × PSHM) and the cast optimization are
    the independent variables.
    """
    from repro.gasnet import BackendConfig

    cls = ft_class(clazz)
    state = FtState(cls, threads, backing="virtual")
    nodes_needed = -(-threads // threads_per_node)
    preset = preset or lehman(nodes=max(nodes_needed, 1))
    backend = BackendConfig(
        mode="processes" if threads_per_process == 1 else "pthreads",
        pshm=pshm,
    )
    prog = UpcProgram(
        preset,
        threads=threads,
        threads_per_node=threads_per_node,
        threads_per_process=threads_per_process,
        backend=backend,
        conduit=conduit,
        binding="compact" if threads_per_process == 1 else "sockets",
    )

    def main(upc):
        yield from upc.barrier()
        t0 = upc.wtime()
        for _r in range(repeats):
            yield from collectives.exchange(
                upc, upc.program.world, state.bytes_per_pair,
                asynchronous=asynchronous, privatized=privatized,
            )
        return (upc.wtime() - t0) / repeats

    res = prog.run(main)
    elapsed = max(res.returns)
    return {
        "class": cls.name,
        "threads": threads,
        "backend": backend.label,
        "privatized": privatized,
        "asynchronous": asynchronous,
        "exchange_s": elapsed,
        "waitsync_s": res.stats.get_sum(names.GASNET_WAITSYNC_TIME) / repeats,
        "bytes_per_pair": state.bytes_per_pair,
    }
