"""Serial NAS FT reference: initial conditions, evolution, checksums.

Implements the benchmark's defining math with ``numpy.fft`` so the
distributed implementations can be verified *end to end*: same NAS
linear-congruential initial data, same evolution factors, same checksum
points.  (Arrays here are indexed ``[z, y, x]``, C order; the NAS Fortran
code is ``u(x,y,z)`` column-major — the memory layouts coincide.)
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.apps.ft.classes import FtClass

__all__ = [
    "nas_random",
    "initial_condition",
    "evolve_factors",
    "checksum",
    "serial_ft",
    "ALPHA",
    "NAS_SEED",
]

#: NAS FT's diffusion constant.
ALPHA = 1.0e-6
#: NAS pseudorandom generator constants.
NAS_SEED = 314159265
_NAS_A = 1220703125  # 5^13
_MASK46 = (1 << 46) - 1
_SCALE = 0.5 ** 46


def nas_random(n: int, seed: int = NAS_SEED) -> np.ndarray:
    """``n`` doubles in (0,1) from the NAS 46-bit LCG (``randlc``).

    x_{k+1} = a * x_k mod 2^46 with a = 5^13; exactly the generator the
    NAS benchmarks use (the power-of-two modulus makes the mod a mask).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    out = np.empty(n, dtype=np.float64)
    x = seed
    a = _NAS_A
    for i in range(n):
        x = (a * x) & _MASK46
        out[i] = x * _SCALE
    return out


def initial_condition(cls: FtClass, seed: int = NAS_SEED) -> np.ndarray:
    """The complex initial field ``u0`` with NAS-LCG data, shape (nz, ny, nx)."""
    vals = nas_random(2 * cls.total_points, seed=seed)
    re = vals[0::2].reshape(cls.nz, cls.ny, cls.nx)
    im = vals[1::2].reshape(cls.nz, cls.ny, cls.nx)
    return re + 1j * im


def _wrapped_sq(n: int) -> np.ndarray:
    """Squared 'signed' frequency indices: k -> min(k, n-k)^2 pattern."""
    k = np.arange(n)
    kbar = np.where(k <= n // 2, k, k - n)
    return (kbar * kbar).astype(np.float64)


def evolve_factors(cls: FtClass, t: int) -> np.ndarray:
    """``exp(-4 π² α t k̄²)`` over the (nz, ny, nx) frequency grid."""
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    kz = _wrapped_sq(cls.nz)[:, None, None]
    ky = _wrapped_sq(cls.ny)[None, :, None]
    kx = _wrapped_sq(cls.nx)[None, None, :]
    expo = -4.0 * math.pi ** 2 * ALPHA * t * (kx + ky + kz)
    return np.exp(expo)


def checksum(x: np.ndarray, cls: FtClass) -> complex:
    """The NAS checksum: 1024 strided samples of the field.

    NAS (1-based): q = mod(j,nx)+1, r = mod(3j,ny)+1, s = mod(5j,nz)+1.
    """
    j = np.arange(1, 1025)
    q = j % cls.nx
    r = (3 * j) % cls.ny
    s = (5 * j) % cls.nz
    return complex(x[s, r, q].sum())


def serial_ft(cls: FtClass, iterations: int = 0, seed: int = NAS_SEED) -> List[complex]:
    """Run the reference benchmark; returns the per-iteration checksums.

    ``iterations=0`` uses the class's standard count.
    """
    iters = iterations or cls.iterations
    u0 = initial_condition(cls, seed=seed)
    u1 = np.fft.fftn(u0)
    checksums: List[complex] = []
    for t in range(1, iters + 1):
        u2 = u1 * evolve_factors(cls, t)
        x = np.fft.ifftn(u2)
        checksums.append(checksum(x, cls))
    return checksums
