"""FT data plane: slab decomposition bookkeeping (real backing).

Layout **D1** splits z: thread *i* holds ``(lnz, ny, nx)``.
Layout **D2** splits y: thread *j* holds ``(lny, nz, nx)``.
The global exchange moves block ``(i → j)`` of shape ``(lnz, lny, nx)``.

These helpers are pure NumPy index bookkeeping — the simulation charges
the time; this module guarantees the *bytes end up in the right place*,
which is what the end-to-end checksum verification exercises.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.ft.classes import FtClass
from repro.apps.ft.kernel import initial_condition

__all__ = ["FtState"]


class FtState:
    """Shared data-plane state for one distributed FT run."""

    def __init__(self, cls: FtClass, threads: int, backing: str = "real",
                 seed: Optional[int] = None):
        if cls.nz % threads or cls.ny % threads:
            raise ValueError(
                f"{cls}: nz={cls.nz} and ny={cls.ny} must divide by "
                f"THREADS={threads} for the 1-D decomposition"
            )
        if backing not in ("real", "virtual"):
            raise ValueError(f"unknown backing {backing!r}")
        self.cls = cls
        self.threads = threads
        self.backing = backing
        self.lnz = cls.nz // threads
        self.lny = cls.ny // threads
        self.bytes_per_pair = self.lnz * self.lny * cls.nx * 16
        self.local_bytes = cls.total_points * 16 // threads
        self.plane_bytes = cls.ny * cls.nx * 16          # one z-plane in D1
        self.plane_slice_bytes = self.lny * cls.nx * 16  # per-peer slice of a plane
        # data plane (real backing only)
        self.d1: Dict[int, np.ndarray] = {}
        self.d2: Dict[int, np.ndarray] = {}
        self.blocks: Dict[tuple, np.ndarray] = {}
        self.checksums: list = []
        self._seed = seed

    @property
    def real(self) -> bool:
        return self.backing == "real"

    # -- data operations (no simulated cost; callers charge separately) ----

    def init_field(self) -> None:
        """Generate u0 and hand each thread its D1 slab (call once)."""
        if not self.real:
            return
        from repro.apps.ft.kernel import NAS_SEED

        u0 = initial_condition(self.cls, seed=self._seed or NAS_SEED)
        for t in range(self.threads):
            self.d1[t] = u0[t * self.lnz:(t + 1) * self.lnz].copy()

    def fft2d(self, thread: int, inverse: bool = False) -> None:
        """(Inverse) 2-D FFT over (y, x) of the thread's D1 slab."""
        if not self.real:
            return
        fn = np.fft.ifft2 if inverse else np.fft.fft2
        self.d1[thread] = fn(self.d1[thread], axes=(1, 2))

    def fft1d(self, thread: int, inverse: bool = False) -> None:
        """(Inverse) 1-D FFT along z of the thread's D2 slab."""
        if not self.real:
            return
        fn = np.fft.ifft if inverse else np.fft.fft
        self.d2[thread] = fn(self.d2[thread], axis=1)

    def evolve(self, thread: int, factors_d2: np.ndarray) -> np.ndarray:
        """Multiply the thread's D2 spectrum slab by its factor slice.

        Returns the evolved slab *without* overwriting the spectrum (NAS
        keeps u1 and writes u2).
        """
        if not self.real:
            return None  # type: ignore[return-value]
        return self.d2[thread] * factors_d2

    def factors_slice_d2(self, thread: int, factors: np.ndarray) -> np.ndarray:
        """The (lny, nz, nx) slice of global (nz, ny, nx) factors for D2."""
        y0 = thread * self.lny
        return np.ascontiguousarray(
            factors[:, y0:y0 + self.lny, :].transpose(1, 0, 2)
        )

    def pack_d1_to_blocks(self, thread: int, source: Optional[np.ndarray] = None) -> None:
        """Split the D1 slab into per-destination blocks (i -> j)."""
        if not self.real:
            return
        slab = self.d1[thread] if source is None else source
        for j in range(self.threads):
            y0 = j * self.lny
            self.blocks[(thread, j)] = slab[:, y0:y0 + self.lny, :].copy()

    def pack_d2_to_blocks(self, thread: int, source: Optional[np.ndarray] = None) -> None:
        """Split a D2 slab into per-destination blocks (i -> j)."""
        if not self.real:
            return
        slab = self.d2[thread] if source is None else source
        for j in range(self.threads):
            z0 = j * self.lnz
            self.blocks[(thread, j)] = slab[:, z0:z0 + self.lnz, :].copy()

    def unpack_blocks_to_d2(self, thread: int) -> None:
        """Assemble the thread's D2 slab from received (i -> me) blocks."""
        if not self.real:
            return
        cls = self.cls
        slab = np.empty((self.lny, cls.nz, cls.nx), dtype=np.complex128)
        for i in range(self.threads):
            block = self.blocks[(i, thread)]  # (lnz, lny, nx)
            slab[:, i * self.lnz:(i + 1) * self.lnz, :] = block.transpose(1, 0, 2)
        self.d2[thread] = slab

    def unpack_blocks_to_d1(self, thread: int) -> None:
        """Assemble the thread's D1 slab from received (i -> me) blocks."""
        if not self.real:
            return
        cls = self.cls
        slab = np.empty((self.lnz, cls.ny, cls.nx), dtype=np.complex128)
        for i in range(self.threads):
            block = self.blocks[(i, thread)]  # (lny, lnz, nx)
            slab[:, i * self.lny:(i + 1) * self.lny, :] = block.transpose(1, 0, 2)
        self.d1[thread] = slab

    def local_checksum(self, thread: int) -> complex:
        """This thread's share of the NAS checksum (points in its D1 slab)."""
        if not self.real:
            return 0j
        cls = self.cls
        j = np.arange(1, 1025)
        q = j % cls.nx
        r = (3 * j) % cls.ny
        s = (5 * j) % cls.nz
        z0 = thread * self.lnz
        mine = (s >= z0) & (s < z0 + self.lnz)
        if not mine.any():
            return 0j
        return complex(self.d1[thread][s[mine] - z0, r[mine], q[mine]].sum())

    def gather_d1(self) -> np.ndarray:
        """The full field assembled from D1 slabs (verification only)."""
        if not self.real:
            raise ValueError("virtual backing has no data to gather")
        return np.concatenate([self.d1[t] for t in range(self.threads)], axis=0)
