"""NAS FT problem classes.

Sizes and iteration counts from the NAS Parallel Benchmarks; the thesis
evaluates class B (512×256×256, 20 iterations).  Dimensions are stored
``(nx, ny, nz)`` with the slab decomposition cutting ``nz`` first.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FtClass", "FT_CLASSES", "ft_class"]


@dataclass(frozen=True)
class FtClass:
    name: str
    nx: int
    ny: int
    nz: int
    iterations: int

    @property
    def total_points(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def total_bytes(self) -> int:
        return self.total_points * 16  # complex128

    def fft3d_flops(self) -> float:
        """Flop count of one 3-D FFT (5 N log2 N)."""
        import math

        n = self.total_points
        return 5.0 * n * math.log2(n)

    def __str__(self) -> str:
        return f"class {self.name} ({self.nx}x{self.ny}x{self.nz})"


FT_CLASSES = {
    "T": FtClass("T", 32, 32, 32, 2),       # test-scale, not a NAS class
    "S": FtClass("S", 64, 64, 64, 6),
    "W": FtClass("W", 128, 128, 32, 6),
    "A": FtClass("A", 256, 256, 128, 6),
    "B": FtClass("B", 512, 256, 256, 20),
}


def ft_class(name: str) -> FtClass:
    try:
        return FT_CLASSES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown FT class {name!r}; available: {sorted(FT_CLASSES)}"
        ) from None
