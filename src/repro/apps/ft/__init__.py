"""NAS FT: 3-D FFT benchmark (§3.3.3, §4.3.3).

Solves a PDE with forward/inverse 3-D FFTs: ``u1 = FFT(u0)`` once, then
each iteration multiplies by evolution factors, inverse-transforms, and
checksums.  The 1-D slab decomposition computes two dimensions locally
and re-localizes the third with a global exchange — the all-to-all that
dominates execution and motivates both of the thesis's approaches.

* :mod:`~repro.apps.ft.classes` — NAS problem classes (S/W/A/B).
* :mod:`~repro.apps.ft.kernel` — serial reference: NAS LCG initial
  conditions, evolution factors, checksums, ``numpy.fft`` evolution.
* :mod:`~repro.apps.ft.distributed` — the UPC implementations
  (split-phase and overlap; pure, pthreads, and hybrid sub-threads)
  plus the MPI comparator, with per-phase timing.
"""

from repro.apps.ft.classes import FT_CLASSES, FtClass, ft_class
from repro.apps.ft.kernel import (
    checksum,
    evolve_factors,
    initial_condition,
    nas_random,
    serial_ft,
)
from repro.apps.ft.distributed import FtConfig, run_exchange_only, run_ft

__all__ = [
    "FT_CLASSES",
    "FtClass",
    "FtConfig",
    "checksum",
    "evolve_factors",
    "ft_class",
    "initial_condition",
    "nas_random",
    "run_exchange_only",
    "run_ft",
    "serial_ft",
]
