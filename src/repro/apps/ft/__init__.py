"""NAS FT: 3-D FFT benchmark (§3.3.3, §4.3.3).

Solves a PDE with forward/inverse 3-D FFTs: ``u1 = FFT(u0)`` once, then
each iteration multiplies by evolution factors, inverse-transforms, and
checksums.  The 1-D slab decomposition computes two dimensions locally
and re-localizes the third with a global exchange — the all-to-all that
dominates execution and motivates both of the thesis's approaches.

* :mod:`~repro.apps.ft.classes` — NAS problem classes (S/W/A/B).
* :mod:`~repro.apps.ft.kernel` — serial reference: NAS LCG initial
  conditions, evolution factors, checksums, ``numpy.fft`` evolution.
* :mod:`~repro.apps.ft.distributed` — the UPC implementations
  (split-phase and overlap; pure, pthreads, and hybrid sub-threads)
  plus the MPI comparator, with per-phase timing.
"""

from repro.apps.ft.classes import FT_CLASSES, FtClass, ft_class
from repro.apps.ft.kernel import (
    checksum,
    evolve_factors,
    initial_condition,
    nas_random,
    serial_ft,
)
from repro.apps.ft.distributed import FtConfig, run_exchange_only, run_ft

__all__ = [
    "FT_CLASSES",
    "FtClass",
    "FtConfig",
    "checksum",
    "evolve_factors",
    "ft_class",
    "initial_condition",
    "nas_random",
    "run_exchange_only",
    "run_ft",
    "run_request",
    "serial_ft",
]


def run_request(spec) -> dict:
    """Normalized campaign adapter for the FT app family.

    ``spec.app`` selects the entry point: ``"ft"`` → :func:`run_ft`,
    ``"ft.exchange"`` → :func:`run_exchange_only`.  Complex checksums
    are re-encoded as ``[real, imag]`` pairs so the output dict is
    JSON-exact, as the campaign cache and worker transport require.
    """
    x = spec.extras_dict()
    if spec.app == "ft.exchange":
        return run_exchange_only(
            x.get("clazz", "B"),
            threads=spec.threads,
            threads_per_node=spec.threads_per_node,
            threads_per_process=x.get("threads_per_process", 1),
            pshm=x.get("pshm", True),
            privatized=x.get("privatized", False),
            asynchronous=x.get("asynchronous", False),
            preset=spec.build_preset(),
            conduit=spec.conduit,
            repeats=x.get("repeats", 3),
        )
    if spec.app != "ft":
        raise ValueError(f"unknown FT app {spec.app!r}")
    out = run_ft(
        x.get("clazz", "S"),
        model=x.get("model", "upc"),
        variant=x.get("variant", "split"),
        threads=spec.threads,
        threads_per_node=spec.threads_per_node,
        threads_per_process=x.get("threads_per_process", 1),
        omp_threads=x.get("omp_threads", 0),
        subthread_runtime=x.get("subthread_runtime", "openmp"),
        preset=spec.build_preset(),
        conduit=spec.conduit,
        iterations=x.get("iterations", 0),
        backing=x.get("backing", "real"),
        privatized=x.get("privatized", False),
        asynchronous=x.get("asynchronous", False),
    )
    out["checksums"] = [[c.real, c.imag] for c in out["checksums"]]
    return out
