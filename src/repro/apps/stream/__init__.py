"""STREAM triad benchmarks.

* :mod:`~repro.apps.stream.twisted` — the odd-even-exchange ("twisted")
  triad of §3.3.1 that exposes shared-pointer translation cost
  (Table 3.1).
* :mod:`~repro.apps.stream.hybrid` — the UPC×OpenMP placement study of
  §4.3.2 (Table 4.1).
"""

from repro.apps.stream.twisted import TWISTED_VARIANTS, run_twisted
from repro.apps.stream.hybrid import run_hybrid_stream, run_pure

__all__ = ["TWISTED_VARIANTS", "run_twisted", "run_hybrid_stream", "run_pure"]
