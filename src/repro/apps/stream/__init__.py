"""STREAM triad benchmarks.

* :mod:`~repro.apps.stream.twisted` — the odd-even-exchange ("twisted")
  triad of §3.3.1 that exposes shared-pointer translation cost
  (Table 3.1).
* :mod:`~repro.apps.stream.hybrid` — the UPC×OpenMP placement study of
  §4.3.2 (Table 4.1).
"""

from repro.apps.stream.twisted import TWISTED_VARIANTS, run_twisted
from repro.apps.stream.hybrid import run_hybrid_stream, run_pure

__all__ = ["TWISTED_VARIANTS", "run_request", "run_twisted",
           "run_hybrid_stream", "run_pure"]


def run_request(spec) -> dict:
    """Normalized campaign adapter for the STREAM app family.

    ``spec.app`` selects the entry point: ``"stream.twisted"`` (Table
    3.1 variants; ``spec.policy`` names the variant),
    ``"stream.pure"`` (pure UPC/OpenMP; ``spec.policy`` is the model)
    or ``"stream.hybrid"`` (UPC×OpenMP placement rows).
    """
    x = spec.extras_dict()
    preset = spec.build_preset()
    if spec.app == "stream.twisted":
        return run_twisted(
            spec.policy,
            preset=preset,
            threads=spec.threads,
            elements_per_thread=x["elements_per_thread"],
        )
    if spec.app == "stream.pure":
        return run_pure(
            spec.policy,
            preset=preset,
            threads=spec.threads or 8,
            elements_per_thread=x["elements_per_thread"],
        )
    if spec.app == "stream.hybrid":
        return run_hybrid_stream(
            x["upc_threads"],
            x["omp_threads"],
            bound=x.get("bound", True),
            preset=preset,
            total_elements=x["total_elements"],
        )
    raise ValueError(f"unknown STREAM app {spec.app!r}")
