"""The twisted STREAM triad (§3.3.1, Table 3.1).

Arrays ``a``, ``b``, ``c`` are evenly distributed; during TRIAD every
thread computes ``c[j] = a[j] + alpha * b[j]`` over its *odd-even
neighbour's* elements of ``a`` and ``b`` (even ranks read the odd
neighbour's data and vice versa) while writing its own part of ``c``.
On one SMP node the neighbour's memory is physically reachable, so:

* ``upc-baseline`` — every access goes through a pointer-to-shared and
  pays address translation (the UPC-to-C translator output confirms one
  translation per access);
* ``upc-relocalization`` — without castability, the classic fix: bulk
  ``upc_memget`` the neighbour's ``a``/``b`` into private buffers, then
  run a purely local triad (extra traffic, no per-element translation);
* ``upc-cast`` — privatize the neighbour's base pointer once
  (``bupc_cast``) and run the triad through plain local pointers;
* ``openmp`` — the shared-memory reference: all accesses are plain
  load/stores against first-touch-local data.

Per-element accounting (8-byte doubles): 16 B read + 8 B written, plus
three shared-pointer translations in the baseline.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.presets import PlatformPreset, lehman
from repro.upc import UpcProgram

__all__ = ["TWISTED_VARIANTS", "run_twisted"]

TWISTED_VARIANTS = (
    "upc-baseline",
    "upc-relocalization",
    "upc-cast",
    "openmp",
)

_ELEM = 8          # double
_READS = 2 * _ELEM
_WRITES = _ELEM
_TRIAD_BYTES = _READS + _WRITES  # STREAM's reported bytes per element


def _neighbour(mythread: int, threads: int) -> int:
    """Odd-even exchange partner (last thread pairs with itself if odd count)."""
    partner = mythread + 1 if mythread % 2 == 0 else mythread - 1
    return partner if partner < threads else mythread

def _triad_main(upc, variant: str, n: int, chunks: int):
    neigh = _neighbour(upc.MYTHREAD, upc.THREADS)
    yield from upc.barrier()
    t0 = upc.wtime()
    per_chunk = n // chunks
    for c in range(chunks):
        m = per_chunk if c < chunks - 1 else n - per_chunk * (chunks - 1)
        if variant == "upc-baseline":
            # reads via pointer-to-shared into the neighbour's segment,
            # writes via pointer-to-shared into mine: 3 translations/elem
            yield from upc.charge_shared_accesses(3 * m)
            yield from upc.stream_from(neigh, m * _READS, 0)
            yield from upc.local_stream(0, m * _WRITES)
        elif variant == "upc-relocalization":
            # bulk-copy a and b from the neighbour into private buffers...
            yield from upc.memget(neigh, m * _READS)
            # ...then a fully local triad over the relocated data
            yield from upc.local_stream(m * _READS, m * _WRITES)
        elif variant == "upc-cast":
            # privatized pointers: same traffic as baseline, no translation
            yield from upc.stream_from(neigh, m * _READS, 0)
            yield from upc.local_stream(0, m * _WRITES)
        elif variant == "openmp":
            # shared-memory model: plain loads/stores, first-touch local
            yield from upc.local_stream(m * _READS, m * _WRITES)
        else:
            raise ValueError(f"unknown variant {variant!r}")
    yield from upc.barrier()
    return upc.wtime() - t0


def run_twisted(
    variant: str,
    preset: Optional[PlatformPreset] = None,
    threads: int = 8,
    elements_per_thread: int = 2_000_000,
    chunks: int = 8,
) -> dict:
    """Run one Table 3.1 variant on a single node; returns metrics.

    ``chunks`` splits the loop so concurrent threads genuinely contend in
    the processor-sharing memory model rather than issuing one monolithic
    transfer each.
    """
    if variant not in TWISTED_VARIANTS:
        raise ValueError(f"variant must be one of {TWISTED_VARIANTS}")
    preset = preset or lehman(nodes=1)
    prog = UpcProgram(
        preset,
        threads=threads,
        threads_per_node=threads,
        binding="compact",
    )
    res = prog.run(_triad_main, variant, elements_per_thread, chunks)
    elapsed = max(res.returns)
    total_bytes = threads * elements_per_thread * _TRIAD_BYTES
    return {
        "variant": variant,
        "threads": threads,
        "elapsed_s": elapsed,
        "throughput_gbs": total_bytes / elapsed / 1e9,
    }
