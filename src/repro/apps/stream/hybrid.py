"""Hybrid UPC×OpenMP STREAM triad placement study (§4.3.2, Table 4.1).

The arrays are allocated as UPC shared arrays (first-touched by each UPC
master thread, so their pages live on the master's starting socket) and
the TRIAD is computed by OpenMP sub-threads.  The benchmark itself gains
nothing from hierarchy — it only *reveals placement*:

* ``8`` pure UPC threads or ``8`` OpenMP threads, bound: every thread
  streams socket-local memory → full node bandwidth (~24.5 GB/s);
* ``1×8`` un-bound: one master first-touches everything on one socket;
  its 8 sub-threads then hammer a single memory controller → roughly
  half throughput;
* ``2×4`` / ``4×2`` with socket binding: each master's data is local to
  its sub-threads → full bandwidth again.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.presets import PlatformPreset, lehman
from repro.subthreads import OpenMP, ThreadSafety
from repro.upc import UpcProgram

__all__ = ["run_pure", "run_hybrid_stream"]

_ELEM = 8
_READS = 2 * _ELEM
_WRITES = _ELEM
_TRIAD_BYTES = _READS + _WRITES


def _pure_main(upc, n: int, chunks: int):
    yield from upc.barrier()
    t0 = upc.wtime()
    per = n // chunks
    for c in range(chunks):
        m = per if c < chunks - 1 else n - per * (chunks - 1)
        yield from upc.local_stream(m * _READS, m * _WRITES)
    yield from upc.barrier()
    return upc.wtime() - t0


def _hybrid_main(upc, omp_threads: int, n: int, chunks: int):
    omp = OpenMP(upc, num_threads=omp_threads, safety=ThreadSafety.FUNNELED)
    yield from upc.barrier()
    t0 = upc.wtime()

    def body(st):
        # sub-threads read/write the *master's* shared arrays (first touch)
        share = n // st.count
        per = share // chunks
        for c in range(chunks):
            m = per if c < chunks - 1 else share - per * (chunks - 1)
            yield from st.stream_from(upc.MYTHREAD, m * _READS, m * _WRITES)

    yield from omp.parallel(body)
    yield from upc.barrier()
    return upc.wtime() - t0


def run_pure(
    model: str = "upc",
    preset: Optional[PlatformPreset] = None,
    threads: int = 8,
    elements_per_thread: int = 2_000_000,
    chunks: int = 8,
) -> dict:
    """Pure UPC (8 processes) or pure OpenMP (8 threads, one process).

    Both are bound and first-touch-local; in this model they price
    identically, matching Table 4.1's near-identical 24.5 vs 23.7 GB/s.
    """
    preset = preset or lehman(nodes=1)
    if model == "upc":
        prog = UpcProgram(preset, threads=threads, threads_per_node=threads,
                          binding="compact")
    elif model == "openmp":
        # one process of N threads spread over the whole node; each thread
        # first-touches its own chunk (the standard OpenMP STREAM idiom)
        prog = UpcProgram(preset, threads=threads, threads_per_node=threads,
                          threads_per_process=threads, binding="unbound")
    else:
        raise ValueError(f"unknown model {model!r}")
    res = prog.run(_pure_main, elements_per_thread, chunks)
    elapsed = max(res.returns)
    total = threads * elements_per_thread * _TRIAD_BYTES
    return {
        "config": model,
        "elapsed_s": elapsed,
        "throughput_gbs": total / elapsed / 1e9,
    }


def run_hybrid_stream(
    upc_threads: int,
    omp_threads: int,
    bound: bool = True,
    preset: Optional[PlatformPreset] = None,
    total_elements: int = 16_000_000,
    chunks: int = 8,
) -> dict:
    """One UPC×OpenMP row of Table 4.1 on a single node."""
    preset = preset or lehman(nodes=1)
    prog = UpcProgram(
        preset,
        threads=upc_threads,
        threads_per_node=upc_threads,
        binding="sockets" if bound else "unbound",
    )
    per_master = total_elements // upc_threads
    res = prog.run(_hybrid_main, omp_threads, per_master, chunks)
    elapsed = max(res.returns)
    total = total_elements * _TRIAD_BYTES
    return {
        "config": f"{upc_threads}*{omp_threads}{'' if bound else ' (unbound)'}",
        "elapsed_s": elapsed,
        "throughput_gbs": total / elapsed / 1e9,
    }
