"""The paper's application benchmarks.

* :mod:`repro.apps.stream` — STREAM triad variants (Tables 3.1 and 4.1).
* :mod:`repro.apps.uts` — Unbalanced Tree Search with locality-conscious
  work stealing (Fig 3.3, Table 3.2).
* :mod:`repro.apps.ft` — NAS FT 3-D FFT with split-phase and overlap
  variants, hybrid sub-thread and MPI comparators (Figs 3.4, 4.4–4.6).
* :mod:`repro.apps.microbench` — multi-link latency/bandwidth (Fig 4.2).
"""
