"""The Unbalanced Tree Search benchmark (§3.3.2).

UTS counts the nodes of an implicitly defined random tree whose shape is
a pure function of a splittable RNG — highly unbalanced, so exhaustive
traversal requires dynamic load balancing.  The UPC implementation keeps
a steal-stack per thread in shared memory and steals work under a lock.

Three policy variants reproduce Fig 3.3 / Table 3.2:

* ``baseline`` — uniform random victim selection (Prins et al.);
* ``local`` — the thesis's locality-conscious stealing: discover and
  steal from shared-memory group peers first, fall back to remote
  victims (Fig 3.2's state machine);
* ``local+diffusion`` — additionally steal *half* of a well-stocked
  victim's work (rapid diffusion), turning big remote steals into local
  work sources and fixing local starvation.
"""

from repro.apps.uts.tree import TreeParams, count_tree, expand, paper_tree, small_tree
from repro.apps.uts.driver import UtsConfig, run_uts

__all__ = [
    "TreeParams",
    "UtsConfig",
    "count_tree",
    "expand",
    "paper_tree",
    "run_request",
    "run_uts",
    "small_tree",
]


def run_request(spec) -> dict:
    """Normalized campaign adapter: one ``RunSpec`` → :func:`run_uts`.

    Extras: ``tree`` ("paper" or a :func:`small_tree` target name) and
    ``steal_chunk``.  The output dict is JSON-exact, as the campaign
    cache and worker transport require.
    """
    tree_name = spec.extra("tree", "small")
    tree = paper_tree() if tree_name == "paper" else small_tree(tree_name)
    return run_uts(
        spec.policy or "baseline",
        tree=tree,
        threads=spec.threads,
        threads_per_node=spec.threads_per_node,
        conduit=spec.conduit,
        steal_chunk=spec.extra("steal_chunk", 8),
        preset=spec.build_preset(),
        faults=spec.faults or None,
    )
