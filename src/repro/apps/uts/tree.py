"""UTS tree definition: implicit random trees over a splittable RNG.

A tree node is ``(rng, depth)``; its child count is a deterministic
function of the node's RNG draw, and child *i*'s RNG is ``rng.child(i)``.
Two standard shapes:

* **binomial** — the root has ``b0`` children; every other node has ``m``
  children with probability ``q`` and none otherwise.  With ``q·m ≈ 1``
  the process is critical and trees are deeply unbalanced — the shape the
  thesis benchmarks (4.1 M nodes).
* **geometric** — branching factor drawn geometrically with mean ``b0``,
  cut off at ``max_depth``.

The reference UTS uses SHA-1 for splitting; ``algorithm="mix"`` swaps in
splitmix64 for speed at identical shape statistics (see
:mod:`repro.sim.rng`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.rng import SplittableRNG

__all__ = ["TreeParams", "Node", "root_node", "expand", "count_tree",
           "paper_tree", "small_tree"]


@dataclass(frozen=True)
class TreeParams:
    """Shape parameters of one UTS tree."""

    kind: str = "binomial"
    b0: int = 2000          #: root branching factor
    q: float = 0.124875     #: binomial: P(node has children)
    m: int = 8              #: binomial: children when it has any
    max_depth: int = 10     #: geometric: depth cutoff
    seed: int = 19          #: RNG root seed
    algorithm: str = "mix"  #: "sha1" (reference) or "mix" (fast)

    def __post_init__(self) -> None:
        if self.kind not in ("binomial", "geometric"):
            raise ValueError(f"unknown tree kind {self.kind!r}")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError(f"q must be in [0,1], got {self.q}")
        if self.b0 < 0 or self.m < 0:
            raise ValueError("b0 and m must be non-negative")


#: A tree node: (rng, depth).
Node = Tuple[SplittableRNG, int]


def root_node(params: TreeParams) -> Node:
    return (SplittableRNG(seed=params.seed, algorithm=params.algorithm), 0)


def _num_children(params: TreeParams, rng: SplittableRNG, depth: int) -> int:
    if params.kind == "binomial":
        if depth == 0:
            return params.b0
        return params.m if rng.random() < params.q else 0
    # geometric: branching drawn so the mean is b0 at the root, decaying
    # with depth; standard UTS "fixed" geometric uses a depth cutoff.
    if depth >= params.max_depth:
        return 0
    u = rng.random()
    # geometric with success prob p = 1/(1+b0): mean b0
    import math

    p = 1.0 / (1.0 + params.b0)
    k = int(math.log(max(u, 1e-300)) / math.log(1.0 - p))
    return min(k, params.b0 * 4)


def expand(params: TreeParams, node: Node) -> List[Node]:
    """Children of ``node`` (deterministic)."""
    rng, depth = node
    # Child-count draw uses a dedicated child stream so that expanding a
    # node never perturbs the RNG states handed to its children.
    n = _num_children(params, rng.child(-1), depth)
    return [(rng.child(i), depth + 1) for i in range(n)]


def count_tree(params: TreeParams, limit: Optional[int] = None) -> Tuple[int, int]:
    """Sequential traversal: returns ``(total_nodes, max_depth)``.

    ``limit`` aborts counting beyond that many nodes (guards against
    parameter choices with runaway supercritical growth).
    """
    stack = [root_node(params)]
    count = 0
    max_depth = 0
    while stack:
        node = stack.pop()
        count += 1
        max_depth = max(max_depth, node[1])
        if limit is not None and count > limit:
            raise RuntimeError(f"tree exceeds limit of {limit} nodes")
        stack.extend(expand(params, node))
    return count, max_depth


def paper_tree(algorithm: str = "mix", seed: int = 42) -> TreeParams:
    """A binomial tree in the thesis's size class (~4.1 million nodes).

    With the default fast hash and seed 42 the tree has exactly
    4,330,977 nodes (max depth 1388) — the thesis's binomial tree had
    "total 4.1 million nodes".  Counts depend on seed and hash.
    """
    return TreeParams(kind="binomial", b0=2000, q=0.124875, m=8,
                      seed=seed, algorithm=algorithm)


def small_tree(target: str = "medium", algorithm: str = "mix") -> TreeParams:
    """Scaled-down binomial trees for tests and quick benchmarks.

    ``target`` in {"tiny", "small", "medium", "large"} — roughly 2k, 20k,
    120k and 500k nodes with the default seeds.
    """
    presets = {
        "tiny": TreeParams(b0=40, q=0.120, m=8, seed=101, algorithm=algorithm),
        "small": TreeParams(b0=200, q=0.122, m=8, seed=7, algorithm=algorithm),
        "medium": TreeParams(b0=700, q=0.1243, m=8, seed=11, algorithm=algorithm),
        "large": TreeParams(b0=1500, q=0.12465, m=8, seed=3, algorithm=algorithm),
    }
    try:
        return presets[target]
    except KeyError:
        raise ValueError(f"unknown size target {target!r}") from None
