"""The UTS work-stealing driver (Fig 3.2's state machine).

Each UPC thread loops: **work** (depth-first expansion of its own
steal-stack, charged per node), then on exhaustion **work discovery** and
**stealing** — locally first under the locality-conscious policies, then
remotely — and finally **idle** until either new work is released
somewhere or global termination is detected (all threads idle, all
stacks empty, nothing in transit).

Costs charged per the thesis's implementation:

* node expansion — ``node_work`` seconds each (the SHA-1 evaluation);
* victim *discovery* — a cache-coherent metadata read for castable peers
  (through the pre-built pointer table), a remote 8-byte ``upc_memget``
  otherwise;
* *stealing* — the victim's stack lock (an AM round to its affinity
  thread), the chunk transfer (privatized memcpy inside the supernode,
  network get across nodes), and the unlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.uts.stealstack import NODE_BYTES, StealStack
from repro.apps.uts.tree import TreeParams, count_tree, expand, root_node
from repro.machine.presets import PlatformPreset, pyramid
from repro.sim import Condition
from repro.upc import UpcProgram
from repro.upc.groups import shared_memory_group

__all__ = ["UtsConfig", "run_uts", "POLICIES"]

POLICIES = ("baseline", "local", "local+diffusion")


@dataclass(frozen=True)
class UtsConfig:
    """Policy and cost knobs for one UTS run."""

    policy: str = "baseline"
    steal_chunk: int = 8            #: nodes per steal (paper: 8 IB / 20 Eth)
    diffusion_chunks: int = 4       #: steal half when victim has >= this many chunks
    process_chunk: int = 64         #: owner-side nodes expanded per charge
    node_work: float = 0.55e-6      #: seconds per node expansion
    max_remote_checks: int = 4      #: remote victims probed per failed round
    verify: bool = True             #: check the count against a sequential pass

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        if self.steal_chunk < 1 or self.process_chunk < 1:
            raise ValueError("chunk sizes must be >= 1")


class _Global:
    """Cross-thread coordination (lives outside the simulated data plane)."""

    def __init__(self, sim, nthreads: int):
        self.idle: set = set()
        self.in_transit = 0
        self.finished = False
        self.work_cond = Condition(sim, name="uts.work")
        self.done_cond = Condition(sim, name="uts.done")


def _worker(upc, cfg: UtsConfig, params: TreeParams,
            stacks: List[StealStack], glob: _Global):
    me = upc.MYTHREAD
    ss = stacks[me]
    group = yield from shared_memory_group(upc)
    local_set = set(group.members)
    if me == 0:
        ss.push([root_node(params)])
    yield from upc.barrier()
    t0 = upc.wtime()

    while True:
        # -- WORK: depth-first on the local stack --------------------
        while len(ss):
            chunk = ss.pop_chunk(cfg.process_chunk)
            children: list = []
            for node in chunk:
                children.extend(expand(params, node))
            ss.push(children)
            ss.nodes_processed += len(chunk)
            yield from upc.compute(len(chunk) * cfg.node_work)
            if glob.idle and ss.available_to_steal > 0:
                glob.work_cond.notify_all()

        # -- WORK DISCOVERY + STEALING -------------------------------
        found = yield from _steal_round(upc, cfg, stacks, glob, local_set)
        if found:
            continue

        # -- IDLE / termination detection -----------------------------
        glob.idle.add(me)
        total_left = sum(len(s) for s in stacks) + glob.in_transit
        if total_left > 0:
            glob.idle.discard(me)
            continue  # missed-wakeup guard: work exists, go steal again
        if len(glob.idle) == upc.THREADS:
            glob.finished = True
            glob.done_cond.notify_all()
            break
        yield upc.sim.any_of([glob.done_cond.wait(), glob.work_cond.wait()])
        if glob.finished:
            break
        glob.idle.discard(me)

    elapsed = upc.wtime() - t0
    return {
        "thread": me,
        "elapsed": elapsed,
        "processed": ss.nodes_processed,
    }


def _steal_round(upc, cfg: UtsConfig, stacks: List[StealStack],
                 glob: _Global, local_set: set):
    """One pass of the Fig 3.2 discovery/steal state machine.

    Returns True when work landed on our stack.
    """
    me = upc.MYTHREAD
    if cfg.policy == "baseline":
        victims = [t for t in range(upc.THREADS) if t != me]
        upc.rng.shuffle(victims)
        # random selection probes a bounded sample before giving up,
        # as in the reference implementation
        phases = [victims[:cfg.max_remote_checks]]
    else:
        # local discovery scans the whole (cheap, castable) neighbourhood;
        # remote discovery probes a bounded random sample
        local = [t for t in local_set if t != me]
        remote = [t for t in range(upc.THREADS) if t not in local_set]
        upc.rng.shuffle(local)
        upc.rng.shuffle(remote)
        phases = [local, remote[:cfg.max_remote_checks]]

    for victims in phases:
        for v in victims:
            ss_v = stacks[v]
            stacks[me].steals_attempted += 1
            # discovery: read the victim's stack metadata
            if upc.can_cast(v):
                yield from upc.compute(upc.gasnet.backend.shm_roundtrip)
            else:
                yield from upc.memget(v, 8)
            if ss_v.available_to_steal < cfg.steal_chunk:
                continue
            # steal under the victim's stack lock
            lock = upc.lock(("uts", v), affinity_thread=v)
            yield from lock.acquire(upc)
            avail = ss_v.available_to_steal  # re-check under the lock
            if avail < cfg.steal_chunk:
                yield from lock.release(upc)
                continue
            if (cfg.policy == "local+diffusion"
                    and avail >= cfg.diffusion_chunks * cfg.steal_chunk):
                take = avail // 2
            else:
                take = cfg.steal_chunk
            nodes = ss_v.steal_from_tail(take)
            glob.in_transit += len(nodes)
            nbytes = len(nodes) * NODE_BYTES
            yield from upc.memget(v, nbytes, privatized=upc.can_cast(v))
            yield from lock.release(upc)
            stacks[me].push(nodes)
            glob.in_transit -= len(nodes)
            stacks[me].steals_successful += 1
            kind = "local" if v in local_set else "remote"
            upc.stats.count(f"uts.steal_{kind}")
            upc.stats.count("uts.nodes_stolen", len(nodes))
            if glob.idle and stacks[me].available_to_steal > 0:
                glob.work_cond.notify_all()
            return True
    return False


def run_uts(
    policy: str = "baseline",
    tree: Optional[TreeParams] = None,
    preset: Optional[PlatformPreset] = None,
    threads: int = 8,
    threads_per_node: int = 2,
    conduit: Optional[str] = None,
    steal_chunk: int = 8,
    config: Optional[UtsConfig] = None,
) -> Dict:
    """Run UTS under one stealing policy; returns the run's metrics.

    Node counts are verified against a sequential traversal unless
    ``config.verify`` is off.
    """
    from repro.apps.uts.tree import small_tree

    tree = tree or small_tree("small")
    cfg = config or UtsConfig(policy=policy, steal_chunk=steal_chunk)
    nodes_needed = -(-threads // threads_per_node)
    preset = preset or pyramid(nodes=max(nodes_needed, 1))
    prog = UpcProgram(
        preset,
        threads=threads,
        threads_per_node=threads_per_node,
        conduit=conduit,
        binding="compact",
        seed=tree.seed,
    )
    stacks = [StealStack(t, cfg.steal_chunk) for t in range(threads)]
    glob = _Global(prog.sim, threads)
    res = prog.run(_worker, cfg, tree, stacks, glob)

    total = sum(r["processed"] for r in res.returns)
    if cfg.verify:
        expected, _depth = count_tree(tree)
        if total != expected:
            raise AssertionError(
                f"UTS lost/duplicated work: processed {total}, tree has {expected}"
            )
    elapsed = max(r["elapsed"] for r in res.returns)
    local = res.stats.get_count("uts.steal_local")
    remote = res.stats.get_count("uts.steal_remote")
    steals = local + remote
    return {
        "policy": cfg.policy,
        "threads": threads,
        "threads_per_node": threads_per_node,
        "conduit": conduit or preset.default_conduit,
        "tree_nodes": total,
        "elapsed_s": elapsed,
        "mnodes_per_s": total / elapsed / 1e6,
        "steals": steals,
        "steals_local": local,
        "steals_remote": remote,
        "pct_local_steals": 100.0 * local / steals if steals else 0.0,
        "nodes_stolen": res.stats.get_count("uts.nodes_stolen"),
        "avg_steal_size": (
            res.stats.get_count("uts.nodes_stolen") / steals if steals else 0.0
        ),
    }
