"""The UTS work-stealing driver (Fig 3.2's state machine).

Each UPC thread loops: **work** (depth-first expansion of its own
steal-stack, charged per node), then on exhaustion **work discovery** and
**stealing** — locally first under the locality-conscious policies, then
remotely — and finally **idle** until either new work is released
somewhere or global termination is detected (all threads idle, all
stacks empty, nothing in transit).

Costs charged per the thesis's implementation:

* node expansion — ``node_work`` seconds each (the SHA-1 evaluation);
* victim *discovery* — a cache-coherent metadata read for castable peers
  (through the pre-built pointer table), a remote 8-byte ``upc_memget``
  otherwise;
* *stealing* — the victim's stack lock (an AM round to its affinity
  thread), the chunk transfer (privatized memcpy inside the supernode,
  network get across nodes), and the unlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.uts.stealstack import NODE_BYTES, StealStack
from repro.apps.uts.tree import TreeParams, count_tree, expand, root_node
from repro.errors import EndpointFailedError
from repro.machine.presets import PlatformPreset, pyramid
from repro.obs import names
from repro.obs.tracer import thread_track
from repro.sim import Condition
from repro.upc import UpcProgram
from repro.upc.groups import shared_memory_group

__all__ = ["UtsConfig", "run_uts", "POLICIES"]

POLICIES = ("baseline", "local", "local+diffusion")


@dataclass(frozen=True)
class UtsConfig:
    """Policy and cost knobs for one UTS run."""

    policy: str = "baseline"
    steal_chunk: int = 8            #: nodes per steal (paper: 8 IB / 20 Eth)
    diffusion_chunks: int = 4       #: steal half when victim has >= this many chunks
    process_chunk: int = 64         #: owner-side nodes expanded per charge
    node_work: float = 0.55e-6      #: seconds per node expansion
    max_remote_checks: int = 4      #: remote victims probed per failed round
    verify: bool = True             #: check the count against a sequential pass

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        if self.steal_chunk < 1 or self.process_chunk < 1:
            raise ValueError("chunk sizes must be >= 1")


class _Global:
    """Cross-thread coordination (lives outside the simulated data plane)."""

    def __init__(self, sim, nthreads: int):
        self.idle: set = set()
        self.in_transit = 0
        self.finished = False
        self.work_cond = Condition(sim, name="uts.work")
        self.done_cond = Condition(sim, name="uts.done")
        # Degraded-mode state (all empty/zero on a healthy run).
        self.dead: set = set()          #: threads on crashed nodes
        self.blacklist: set = set()     #: victims declared unreachable
        self.lost_nodes = 0             #: materialized nodes lost to faults
        self.transit_by: Dict[int, int] = {}  #: per-thief in-flight nodes

    @property
    def unavailable(self) -> set:
        return self.dead | self.blacklist

    def start_transit(self, thief: int, count: int) -> None:
        self.in_transit += count
        self.transit_by[thief] = self.transit_by.get(thief, 0) + count

    def end_transit(self, thief: int, count: int, lost: bool = False) -> None:
        self.in_transit -= count
        self.transit_by[thief] = self.transit_by.get(thief, 0) - count
        if lost:
            self.lost_nodes += count


def _worker(upc, cfg: UtsConfig, params: TreeParams,
            stacks: List[StealStack], glob: _Global):
    me = upc.MYTHREAD
    ss = stacks[me]
    group = yield from shared_memory_group(upc)
    local_set = set(group.members)
    if me == 0:
        ss.push([root_node(params)])
    yield from upc.barrier()
    t0 = upc.wtime()

    while True:
        # -- WORK: depth-first on the local stack --------------------
        while len(ss):
            chunk = ss.pop_chunk(cfg.process_chunk)
            children: list = []
            for node in chunk:
                children.extend(expand(params, node))
            ss.push(children)
            ss.nodes_processed += len(chunk)
            yield from upc.compute(len(chunk) * cfg.node_work)
            if glob.idle and ss.available_to_steal > 0:
                glob.work_cond.notify_all()

        # -- WORK DISCOVERY + STEALING -------------------------------
        found = yield from _steal_round(upc, cfg, stacks, glob, local_set)
        if found:
            continue

        # -- IDLE / termination detection -----------------------------
        # Termination must stay correct when threads disappear: dead
        # threads' stacks are dropped at crash time and their in-transit
        # work is written off, so "everything is done" is judged over
        # the *alive* population only.
        glob.idle.add(me)
        total_left = sum(len(s) for s in stacks) + glob.in_transit
        if total_left > 0:
            glob.idle.discard(me)
            continue  # missed-wakeup guard: work exists, go steal again
        if len(glob.idle) >= upc.THREADS - len(glob.dead):
            glob.finished = True
            glob.done_cond.notify_all()
            break
        yield upc.sim.any_of([glob.done_cond.wait(), glob.work_cond.wait()])
        if glob.finished:
            break
        glob.idle.discard(me)

    elapsed = upc.wtime() - t0
    return {
        "thread": me,
        "elapsed": elapsed,
        "processed": ss.nodes_processed,
    }


def _steal_round(upc, cfg: UtsConfig, stacks: List[StealStack],
                 glob: _Global, local_set: set):
    """One pass of the Fig 3.2 discovery/steal state machine.

    Returns True when work landed on our stack.  Under fault injection a
    victim may vanish at any point; every network op can then raise
    :class:`EndpointFailedError`, which blacklists the victim and fails
    over to the next candidate (local-first order is preserved, so
    failover naturally prefers the cheap castable neighbourhood).
    """
    me = upc.MYTHREAD
    if cfg.policy == "baseline":
        victims = [t for t in range(upc.THREADS) if t != me]
        upc.rng.shuffle(victims)
        # random selection probes a bounded sample before giving up,
        # as in the reference implementation
        phases = [victims[:cfg.max_remote_checks]]
    else:
        # local discovery scans the whole (cheap, castable) neighbourhood;
        # remote discovery probes a bounded random sample
        local = [t for t in local_set if t != me]
        remote = [t for t in range(upc.THREADS) if t not in local_set]
        upc.rng.shuffle(local)
        upc.rng.shuffle(remote)
        phases = [local, remote[:cfg.max_remote_checks]]

    for victims in phases:
        for v in victims:
            if v in glob.unavailable:
                continue
            found = yield from _try_steal(upc, cfg, stacks, glob, local_set, v)
            if found:
                return True
    return False


def _try_steal(upc, cfg: UtsConfig, stacks: List[StealStack],
               glob: _Global, local_set: set, v: int):
    """Probe one victim; True when its work landed on our stack."""
    tracer = upc.sim.tracer
    if not tracer.enabled:
        result = yield from _try_steal_impl(upc, cfg, stacks, glob, local_set, v)
        return result
    span = tracer.begin(
        thread_track(upc.MYTHREAD), f"steal<-{v}", names.CAT_STEAL,
        args={"victim": v, "thief": upc.MYTHREAD},
    )
    try:
        result = yield from _try_steal_impl(upc, cfg, stacks, glob, local_set, v)
        return result
    finally:
        tracer.end(span)


def _try_steal_impl(upc, cfg: UtsConfig, stacks: List[StealStack],
                    glob: _Global, local_set: set, v: int):
    me = upc.MYTHREAD
    ss_v = stacks[v]
    stacks[me].steals_attempted += 1
    holding_lock = False
    in_flight = 0
    got_work = False
    lock = None
    try:
        # discovery: read the victim's stack metadata.  Castability is
        # topological and fixed for the run, so query it once up front
        # (the analyzer's PGAS012 verdict) instead of per remote access.
        castable = upc.can_cast(v)
        if castable:
            yield from upc.compute(upc.gasnet.backend.shm_roundtrip)
        else:
            yield from upc.memget(v, 8)
        if ss_v.available_to_steal < cfg.steal_chunk:
            return False
        # steal under the victim's stack lock
        lock = upc.lock(("uts", v), affinity_thread=v)
        yield from lock.acquire(upc)
        holding_lock = True
        avail = ss_v.available_to_steal  # re-check under the lock
        if avail < cfg.steal_chunk:
            holding_lock = False
            yield from lock.release(upc)
            return False
        if (cfg.policy == "local+diffusion"
                and avail >= cfg.diffusion_chunks * cfg.steal_chunk):
            take = avail // 2
        else:
            take = cfg.steal_chunk
        nodes = ss_v.steal_from_tail(take)
        glob.start_transit(me, len(nodes))
        in_flight = len(nodes)
        nbytes = len(nodes) * NODE_BYTES
        yield from upc.memget(v, nbytes, privatized=castable)
        # The chunk is ours once the get completes: land it before the
        # unlock round, so a victim dying during unlock loses nothing.
        stacks[me].push(nodes)
        glob.end_transit(me, len(nodes))
        in_flight = 0
        got_work = True
        stacks[me].steals_successful += 1
        kind = "local" if v in local_set else "remote"
        upc.stats.count(names.uts_steal(kind))
        upc.stats.count(names.UTS_NODES_STOLEN, len(nodes))
        holding_lock = False
        yield from lock.release(upc)
        if glob.idle and stacks[me].available_to_steal > 0:
            glob.work_cond.notify_all()
        return True
    except EndpointFailedError:
        # The victim is gone: blacklist it, write off anything we had
        # in flight from its (now unreachable) segment, and make sure
        # the lock is not left dangling for other queued thieves.
        glob.blacklist.add(v)
        upc.stats.count(names.UTS_VICTIMS_BLACKLISTED)
        if in_flight:
            glob.end_transit(me, in_flight, lost=True)
            upc.stats.count(names.UTS_NODES_LOST_IN_TRANSIT, in_flight)
        if holding_lock and lock is not None:
            lock.abandon(me)
        return got_work


def run_uts(
    policy: str = "baseline",
    tree: Optional[TreeParams] = None,
    preset: Optional[PlatformPreset] = None,
    threads: int = 8,
    threads_per_node: int = 2,
    conduit: Optional[str] = None,
    steal_chunk: int = 8,
    config: Optional[UtsConfig] = None,
    faults=None,
) -> Dict:
    """Run UTS under one stealing policy; returns the run's metrics.

    Node counts are verified against a sequential traversal unless
    ``config.verify`` is off.  ``faults`` takes a
    :class:`~repro.faults.FaultPlan` (or spec string); with faults
    injected the exact-count invariant is replaced by conservation of
    *accounted* work — every materialized node is either processed or
    explicitly written off as lost — and the report carries the fault,
    retry and recovery counters.
    """
    from repro.apps.uts.tree import small_tree

    tree = tree or small_tree("small")
    cfg = config or UtsConfig(policy=policy, steal_chunk=steal_chunk)
    nodes_needed = -(-threads // threads_per_node)
    preset = preset or pyramid(nodes=max(nodes_needed, 1))
    prog = UpcProgram(
        preset,
        threads=threads,
        threads_per_node=threads_per_node,
        conduit=conduit,
        binding="compact",
        seed=tree.seed,
        faults=faults,
    )
    stacks = [StealStack(t, cfg.steal_chunk) for t in range(threads)]
    glob = _Global(prog.sim, threads)

    if prog.faults is not None:
        def on_crash(crash, _prog=prog, _stacks=stacks, _glob=glob):
            _handle_crash(_prog, _stacks, _glob, crash)
        # Registered after UpcProgram's own handler, so threads are
        # already killed (and their locks recovered) when this runs.
        prog.faults.on_crash(on_crash)

    res = prog.run(_worker, cfg, tree, stacks, glob)

    # Per-thread counters live on the stacks, so dead threads' completed
    # work (their processes returned None) is still accounted.
    total = sum(ss.nodes_processed for ss in stacks)
    expected, _depth = count_tree(tree) if cfg.verify else (None, None)
    if cfg.verify:
        if prog.faults is None:
            if total != expected:
                raise AssertionError(
                    f"UTS lost/duplicated work: processed {total}, "
                    f"tree has {expected}"
                )
        elif total + glob.lost_nodes > expected:
            # Lost subtrees were never materialized, so under faults the
            # invariant is one-sided: no node may be double-counted.
            raise AssertionError(
                f"UTS duplicated work under faults: processed {total} + "
                f"lost {glob.lost_nodes} exceeds tree total {expected}"
            )
    alive_returns = [r for r in res.returns if r is not None]
    elapsed = (
        max(r["elapsed"] for r in alive_returns) if alive_returns else res.elapsed
    )
    local = res.stats.get_count(names.UTS_STEAL_LOCAL)
    remote = res.stats.get_count(names.UTS_STEAL_REMOTE)
    steals = local + remote
    report = {
        "policy": cfg.policy,
        "threads": threads,
        "threads_per_node": threads_per_node,
        "conduit": conduit or preset.default_conduit,
        "tree_nodes": total,
        "elapsed_s": elapsed,
        "mnodes_per_s": total / elapsed / 1e6,
        "steals": steals,
        "steals_local": local,
        "steals_remote": remote,
        "pct_local_steals": 100.0 * local / steals if steals else 0.0,
        "nodes_stolen": res.stats.get_count(names.UTS_NODES_STOLEN),
        "avg_steal_size": (
            res.stats.get_count(names.UTS_NODES_STOLEN) / steals if steals else 0.0
        ),
        # Completed-work-under-failure: on a healthy verified run this
        # is exactly 1.0; with faults it is the surviving fraction.
        "threads_lost": len(glob.dead),
        "nodes_lost": glob.lost_nodes,
        "completed_fraction": (total / expected) if expected else None,
        "faults_crashes": res.stats.get_count(names.FAULTS_CRASHES),
        "net_messages_lost": res.stats.get_count(names.NET_MESSAGES_LOST),
        "gasnet_timeouts": res.stats.get_count(names.GASNET_TIMEOUTS),
        "gasnet_retransmits": res.stats.get_count(names.GASNET_RETRANSMITS),
        "victims_blacklisted": res.stats.get_count(names.UTS_VICTIMS_BLACKLISTED),
        "locks_recovered": res.stats.get_count(names.FAULTS_LOCKS_RECOVERED),
    }
    return report


def _handle_crash(prog: UpcProgram, stacks: List[StealStack],
                  glob: _Global, crash) -> None:
    """Degraded-mode bookkeeping when a node fail-stops mid-run.

    The dead threads' queued work and in-flight steals are written off
    so the survivors' termination detection converges, then idle
    survivors are woken to re-run it against the shrunken population.
    """
    dead = [
        loc.thread_id
        for loc in prog.gasnet.locations
        if loc.node == crash.node and loc.thread_id not in glob.dead
    ]
    for t in dead:
        glob.dead.add(t)
        glob.idle.discard(t)
        dropped = stacks[t].drop_all()
        glob.lost_nodes += dropped
        if dropped:
            prog.stats.count(names.UTS_NODES_LOST_ON_STACK, dropped)
        stranded = glob.transit_by.pop(t, 0)
        if stranded:
            glob.in_transit -= stranded
            glob.lost_nodes += stranded
            prog.stats.count(names.UTS_NODES_LOST_IN_TRANSIT, stranded)
    glob.work_cond.notify_all()
