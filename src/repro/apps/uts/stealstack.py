"""Per-thread steal-stacks living (conceptually) in UPC shared memory.

The owner does depth-first work on the head; thieves take from the tail
under the stack's lock.  Data-plane operations are instantaneous (the
simulation charges time separately); this class also accumulates the
per-thread statistics Table 3.2 reports.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.uts.tree import Node

__all__ = ["StealStack"]

#: Serialized size of one tree node in the shared steal-stack:
#: 20-byte SHA-1 state + height + metadata, as in the reference UTS.
NODE_BYTES = 28


class StealStack:
    """One thread's work stack plus its steal-side bookkeeping."""

    def __init__(self, owner: int, chunk_size: int):
        self.owner = owner
        self.chunk_size = chunk_size
        self._nodes: List[Node] = []
        # statistics
        self.nodes_processed = 0
        self.steals_attempted = 0
        self.steals_successful = 0
        self.times_stolen_from = 0
        self.nodes_stolen_away = 0

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def available_to_steal(self) -> int:
        """Work a thief may take: everything beyond one owner chunk."""
        return max(0, len(self._nodes) - self.chunk_size)

    def push(self, nodes: List[Node]) -> None:
        self._nodes.extend(nodes)

    def pop_chunk(self, max_nodes: int) -> List[Node]:
        """Owner-side pop from the head (LIFO: depth-first exploration)."""
        if max_nodes <= 0:
            return []
        taken = self._nodes[-max_nodes:]
        del self._nodes[-max_nodes:]
        return list(reversed(taken))

    def drop_all(self) -> int:
        """Crash path: discard all queued work, returning how many nodes.

        Called when the owning thread's node fail-stops; the dropped
        nodes are accounted as lost work by the driver.
        """
        lost = len(self._nodes)
        self._nodes.clear()
        return lost

    def steal_from_tail(self, count: int) -> List[Node]:
        """Thief-side take from the tail (oldest, shallowest work)."""
        count = min(count, self.available_to_steal)
        if count <= 0:
            return []
        stolen = self._nodes[:count]
        del self._nodes[:count]
        self.times_stolen_from += 1
        self.nodes_stolen_away += count
        return stolen
