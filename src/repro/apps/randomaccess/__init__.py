"""HPC Challenge RandomAccess (GUPS) with thread-group aggregation.

§4.4 names Random Access, beside UTS, as an application where the
*thread-group* approach fits: it has a single level of parallelism, and
its fine-grained scattered updates benefit from hardware-aware grouping.
Each thread fires XOR updates at uniformly random locations of a global
table; the classic optimization buckets updates per destination and
flushes them in batches — and with thread groups, intra-group updates go
through privatized pointers while only remote buckets cross the network.
"""

from repro.apps.randomaccess.gups import GupsConfig, run_gups

__all__ = ["GupsConfig", "run_gups"]
