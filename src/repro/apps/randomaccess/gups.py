"""The GUPS driver: fine-grained vs bucketed vs group-aware updates.

Three variants over a cyclically-distributed table of 64-bit words:

* ``fine-grained`` — every update is an individual remote access through
  a pointer-to-shared: one translation plus (for remote owners) one tiny
  network round per update.  The canonical PGAS worst case.
* ``bucketed`` — updates are accumulated into per-destination buckets
  and flushed as bulk puts once a bucket fills.
* ``groups`` — bucketed, plus the Chapter-3 treatment: updates for
  castable peers apply immediately through privatized pointers (no
  bucket, no network), only genuinely remote buckets use the wire.

The updates themselves are the HPCC XOR recurrence (a splittable stream
per thread), applied for real so the final table is verifiable: XOR is
commutative/associative, so any interleaving must produce the same
table as a serial replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.machine.presets import PlatformPreset, lehman
from repro.obs import names
from repro.sim.rng import splitmix64
from repro.upc import UpcProgram
from repro.upc.groups import shared_memory_group

__all__ = ["GupsConfig", "run_gups", "VARIANTS"]

VARIANTS = ("fine-grained", "bucketed", "groups")

_WORD = 8


@dataclass(frozen=True)
class GupsConfig:
    """Knobs for one RandomAccess run."""

    variant: str = "bucketed"
    table_words: int = 1 << 16       #: global table size (power of two)
    updates_per_thread: int = 4096
    bucket_size: int = 64            #: updates per flushed bucket
    charge_chunk: int = 256          #: fine-grained updates costed per charge

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}")
        if self.table_words & (self.table_words - 1):
            raise ValueError("table_words must be a power of two")
        if self.bucket_size < 1 or self.charge_chunk < 1:
            raise ValueError("bucket_size and charge_chunk must be >= 1")


def _update_stream(thread: int, count: int, table_words: int):
    """The per-thread update sequence: (index, value) pairs."""
    state = (0x9E3779B97F4A7C15 * (thread + 1)) & ((1 << 64) - 1)
    idx = np.empty(count, dtype=np.int64)
    val = np.empty(count, dtype=np.uint64)
    mask = table_words - 1
    for i in range(count):
        state, out = splitmix64(state)
        idx[i] = out & mask
        val[i] = out
    return idx, val


def _gups_main(upc, cfg: GupsConfig, table: np.ndarray, received: Dict[int, int]):
    me, T = upc.MYTHREAD, upc.THREADS
    group = yield from shared_memory_group(upc)
    local_set = set(group.members)
    idx, val = _update_stream(me, cfg.updates_per_thread, cfg.table_words)
    yield from upc.barrier()
    t0 = upc.wtime()

    if cfg.variant == "fine-grained":
        owners = idx % T
        # data plane: apply everything (XOR is order-independent)
        np.bitwise_xor.at(table, idx, val)
        # cost plane: per-update translation + element traffic, charged
        # in chunks to keep the event count sane
        remote = 0
        for start in range(0, len(idx), cfg.charge_chunk):
            chunk_owners = owners[start:start + cfg.charge_chunk]
            n = len(chunk_owners)
            yield from upc.charge_shared_accesses(2 * n)  # read + write
            for owner_arr, count in zip(*np.unique(chunk_owners, return_counts=True)):
                owner = int(owner_arr)
                if owner == me:
                    yield from upc.local_stream(count * _WORD, count * _WORD)
                elif owner in local_set:
                    yield from upc.stream_from(owner, count * _WORD, count * _WORD)
                else:
                    remote += int(count)
                    # read-modify-write: a get then a put per update
                    yield from upc.memget(owner, _WORD)
                    yield from upc.memput(owner, _WORD)
        upc.stats.count(names.GUPS_REMOTE_UPDATES, remote)
    else:
        use_groups = cfg.variant == "groups"
        np.bitwise_xor.at(table, idx, val)
        owners = idx % T
        buckets: Dict[int, int] = {}

        def flush(owner: int, count: int):
            yield from upc.memput(owner, count * 2 * _WORD)  # index+value
            received[owner] = received.get(owner, 0) + count
            upc.stats.count(names.GUPS_BUCKET_FLUSHES)

        for start in range(0, len(idx), cfg.charge_chunk):
            chunk_owners = owners[start:start + cfg.charge_chunk]
            local_words = 0
            for owner_arr, count in zip(*np.unique(chunk_owners, return_counts=True)):
                owner, count = int(owner_arr), int(count)
                if owner == me or (use_groups and owner in local_set):
                    local_words += count
                    continue
                buckets[owner] = buckets.get(owner, 0) + count
                if buckets[owner] >= cfg.bucket_size:
                    yield from flush(owner, buckets.pop(owner))
            if local_words:
                # immediate load/store updates (privatized for group peers)
                yield from upc.local_stream(local_words * _WORD, local_words * _WORD)
        for owner, count in buckets.items():
            yield from flush(owner, count)
        # Each owner applies the buckets it received: read the (index,
        # value) pairs, read-modify-write its table words.
        yield from upc.barrier()
        mine = received.get(me, 0)
        if mine:
            yield from upc.local_stream(mine * 3 * _WORD, mine * _WORD)

    yield from upc.barrier()
    return upc.wtime() - t0


def run_gups(
    variant: str = "bucketed",
    preset: Optional[PlatformPreset] = None,
    threads: int = 8,
    threads_per_node: int = 4,
    conduit: Optional[str] = None,
    config: Optional[GupsConfig] = None,
    verify: bool = True,
) -> Dict:
    """Run RandomAccess; returns GUPS and update statistics.

    With ``verify`` the final table is checked against a serial replay of
    all threads' update streams.
    """
    cfg = config or GupsConfig(variant=variant)
    nodes_needed = -(-threads // threads_per_node)
    preset = preset or lehman(nodes=max(nodes_needed, 1))
    prog = UpcProgram(
        preset, threads=threads, threads_per_node=threads_per_node,
        conduit=conduit, binding="compact",
    )
    table = np.zeros(cfg.table_words, dtype=np.uint64)
    received: Dict[int, int] = {}
    res = prog.run(_gups_main, cfg, table, received)

    if verify:
        expected = np.zeros(cfg.table_words, dtype=np.uint64)
        for t in range(threads):
            idx, val = _update_stream(t, cfg.updates_per_thread, cfg.table_words)
            np.bitwise_xor.at(expected, idx, val)
        if not np.array_equal(table, expected):
            raise AssertionError("GUPS table mismatch: updates lost or doubled")

    elapsed = max(res.returns)
    total_updates = threads * cfg.updates_per_thread
    return {
        "variant": cfg.variant,
        "threads": threads,
        "elapsed_s": elapsed,
        "gups": total_updates / elapsed / 1e9,
        "updates": total_updates,
        "bucket_flushes": res.stats.get_count(names.GUPS_BUCKET_FLUSHES),
        "remote_updates": res.stats.get_count(names.GUPS_REMOTE_UPDATES),
        "verified": verify,
    }
