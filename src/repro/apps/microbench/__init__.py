"""Network microbenchmarks (§4.3.1, Fig 4.2)."""

from repro.apps.microbench.multilink import (
    run_flood_bandwidth,
    run_roundtrip_latency,
    sweep_multilink,
)

__all__ = ["run_flood_bandwidth", "run_request", "run_roundtrip_latency",
           "sweep_multilink"]


def run_request(spec) -> dict:
    """Normalized campaign adapter for the multi-link microbenchmarks.

    ``spec.app`` selects the panel: ``"microbench.latency"`` →
    :func:`run_roundtrip_latency`, ``"microbench.bandwidth"`` →
    :func:`run_flood_bandwidth`.  The per-size dict (integer keys,
    which JSON would stringify) is re-encoded as ordered ``[size,
    value]`` pairs under ``"by_size"`` so the output is JSON-exact.
    """
    x = spec.extras_dict()
    common = dict(
        link_pairs=x["link_pairs"],
        backend=x["backend"],
        sizes=x["sizes"],
        preset=spec.build_preset(),
        conduit=spec.conduit,
    )
    if spec.app == "microbench.latency":
        by_size = run_roundtrip_latency(**common)
    elif spec.app == "microbench.bandwidth":
        by_size = run_flood_bandwidth(**common)
    else:
        raise ValueError(f"unknown microbench app {spec.app!r}")
    return {"by_size": [[size, value] for size, value in by_size.items()]}
