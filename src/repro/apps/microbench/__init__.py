"""Network microbenchmarks (§4.3.1, Fig 4.2)."""

from repro.apps.microbench.multilink import (
    run_flood_bandwidth,
    run_roundtrip_latency,
    sweep_multilink,
)

__all__ = ["run_flood_bandwidth", "run_roundtrip_latency", "sweep_multilink"]
