"""Multi-link latency and flood-bandwidth microbenchmarks (Fig 4.2).

Two Lehman nodes over QDR InfiniBand; each node runs 1–8 UPC threads and
thread *i* pairs with thread *i* on the other node.  With the processes
backend every pair owns a network connection; with pthreads all pairs on
a node share one.  The benchmarks measure:

* **round-trip latency** — timed ``upc_memget`` (request + response wire
  flights), median over repetitions, per message size;
* **unidirectional flood bandwidth** — aggregate bytes/s across all
  pairs, each streaming back-to-back non-blocking ``upc_memput``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.machine.presets import PlatformPreset, lehman
from repro.upc import UpcProgram

__all__ = ["run_roundtrip_latency", "run_flood_bandwidth", "sweep_multilink"]

#: Default sweep of message sizes (bytes), powers of two like the figure.
LATENCY_SIZES = tuple(1 << k for k in range(0, 16))       # 1 B .. 32 KB
BANDWIDTH_SIZES = tuple(1 << k for k in range(6, 22))     # 64 B .. 2 MB


def _make_program(
    link_pairs: int, backend: str, preset: Optional[PlatformPreset], conduit: Optional[str]
) -> UpcProgram:
    if not 1 <= link_pairs:
        raise ValueError(f"link_pairs must be >= 1, got {link_pairs}")
    preset = preset or lehman(nodes=2)
    if backend == "processes":
        tpp = 1
    elif backend == "pthreads":
        tpp = link_pairs
    else:
        raise ValueError(f"backend must be 'processes' or 'pthreads', got {backend!r}")
    return UpcProgram(
        preset,
        threads=2 * link_pairs,
        threads_per_node=link_pairs,
        threads_per_process=tpp,
        conduit=conduit,
        binding="compact" if tpp == 1 else "sockets",
    )


def run_roundtrip_latency(
    link_pairs: int = 1,
    backend: str = "processes",
    sizes: Sequence[int] = LATENCY_SIZES,
    repeats: int = 20,
    preset: Optional[PlatformPreset] = None,
    conduit: Optional[str] = None,
) -> Dict[int, float]:
    """Median round-trip latency (µs) per message size.

    Senders live on node 0 (threads ``0..P-1``), partners on node 1; all
    pairs ping concurrently, so shared-connection serialization shows up
    exactly as in Fig 4.2(a).
    """
    prog = _make_program(link_pairs, backend, preset, conduit)
    pairs = link_pairs

    def main(upc, size):
        me = upc.MYTHREAD
        yield from upc.barrier()
        if me >= pairs:   # passive target side
            return None
        partner = pairs + me
        samples = []
        for _ in range(repeats):
            t0 = upc.wtime()
            yield from upc.memget(partner, size)  # request + response
            samples.append(upc.wtime() - t0)
        samples.sort()
        return samples[len(samples) // 2]

    results: Dict[int, float] = {}
    for size in sizes:
        prog = _make_program(link_pairs, backend, preset, conduit)
        res = prog.run(main, size)
        lat = max(r for r in res.returns if r is not None)
        results[size] = lat * 1e6
    return results


def run_flood_bandwidth(
    link_pairs: int = 1,
    backend: str = "processes",
    sizes: Sequence[int] = BANDWIDTH_SIZES,
    messages: int = 32,
    window: int = 8,
    preset: Optional[PlatformPreset] = None,
    conduit: Optional[str] = None,
) -> Dict[int, float]:
    """Aggregate unidirectional flood bandwidth (MB/s) per message size.

    Each sender keeps ``window`` non-blocking puts in flight (the flood
    idiom), so a single pair saturates its connection while multiple
    pairs contend for the NIC.
    """
    pairs = link_pairs

    def main(upc, size):
        me = upc.MYTHREAD
        yield from upc.barrier()
        if me >= pairs:
            return None
        partner = pairs + me
        t0 = upc.wtime()
        in_flight: List = []
        for _ in range(messages):
            if len(in_flight) >= window:
                yield from in_flight.pop(0).wait()
            in_flight.append(upc.memput_nb(partner, size))
        for h in in_flight:
            yield from h.wait()
        return upc.wtime() - t0

    results: Dict[int, float] = {}
    for size in sizes:
        prog = _make_program(link_pairs, backend, preset, conduit)
        res = prog.run(main, size)
        elapsed = max(r for r in res.returns if r is not None)
        total_bytes = pairs * messages * size
        results[size] = total_bytes / elapsed / 1e6
    return results


def sweep_multilink(
    pair_counts: Sequence[int] = (1, 2, 4, 8),
    backends: Sequence[str] = ("processes", "pthreads"),
    latency_sizes: Sequence[int] = LATENCY_SIZES,
    bandwidth_sizes: Sequence[int] = BANDWIDTH_SIZES,
    preset: Optional[PlatformPreset] = None,
    conduit: Optional[str] = None,
) -> Dict:
    """The full Fig 4.2 sweep: both panels, both backends, 1–8 pairs.

    The 1-link series is backend-independent (a single thread per node),
    so it is reported once, as in the figure.
    """
    latency: Dict[tuple, Dict[int, float]] = {}
    bandwidth: Dict[tuple, Dict[int, float]] = {}
    for backend in backends:
        for pairs in pair_counts:
            if pairs == 1 and backend != "processes":
                continue
            key = (pairs, backend if pairs > 1 else "single")
            latency[key] = run_roundtrip_latency(
                pairs, backend, sizes=latency_sizes, preset=preset, conduit=conduit
            )
            bandwidth[key] = run_flood_bandwidth(
                pairs, backend, sizes=bandwidth_sizes, preset=preset, conduit=conduit
            )
    return {"latency_us": latency, "bandwidth_mbs": bandwidth}
