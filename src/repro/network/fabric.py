"""The simulated interconnect: endpoints, connections, NIC pipes.

An :class:`Endpoint` is one communication client (a UPC thread / MPI
rank).  Endpoints on the same node that share a ``connection_key`` (all
ranks of one multi-threaded process) share a single :class:`Connection`;
process-per-rank backends give every endpoint its own.  A connection
serializes message *injection* (``gap + nbytes/connection_bw`` held under
a mutex), which is the mechanism behind the thesis's observation that
"latency for pthreaded messaging appears serialized" (§4.3.1) while
processes extract more aggregate bandwidth from extra connections.

Data in flight then drains through the sender's tx and receiver's rx NIC
pipes (processor-shared per node) after the one-way wire latency.
Intra-node messages sent through the network API — the no-PSHM baseline —
skip the wire and drain through the node's loopback pipe instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.errors import MessageCorruptedError, NetworkError
from repro.machine.topology import MachineTopology
from repro.network.model import NetworkParams
from repro.obs import names
from repro.obs.tracer import link_track, node_track
from repro.sim import Resource, SharedBandwidth, Simulator, StatsCollector

__all__ = ["Connection", "Endpoint", "Fabric"]


@dataclass
class Connection:
    """One network connection (queue pair): serialized injection."""

    key: tuple
    injector: Resource
    messages: int = 0
    bytes: float = 0.0
    active: int = 0  #: messages currently in flight on this connection


@dataclass(frozen=True)
class Endpoint:
    """A registered communication client."""

    endpoint_id: int
    node_index: int
    connection: Connection


class _NicPipe(SharedBandwidth):
    """A NIC direction whose aggregate rate degrades with the number of
    simultaneously active connections on its node (QP thrashing; see
    :meth:`NetworkParams.nic_efficiency`)."""

    def __init__(self, sim: Simulator, fabric: "Fabric", node: int, name: str):
        super().__init__(
            sim, fabric.params.nic_bw, name=name, fifo=fabric.params.fifo_links
        )
        self._fabric = fabric
        self._node = node

    def _aggregate_rate(self, n: int) -> float:
        active = self._fabric.active_connections_on_node(self._node)
        rate = self.rate * self._fabric.params.nic_efficiency(active)
        return rate * self._fabric.degrade_factor(self._node)


class Fabric:
    """All NICs, connections and wires of one cluster."""

    def __init__(
        self,
        sim: Simulator,
        topo: MachineTopology,
        params: NetworkParams,
        stats: Optional[StatsCollector] = None,
    ):
        self.sim = sim
        self.topo = topo
        self.params = params
        self.stats = stats if stats is not None else StatsCollector(sim)
        self._active_conns: Dict[int, int] = {n.index: 0 for n in topo.nodes}
        self.nic_tx = [
            _NicPipe(sim, self, n.index, name=f"nic.tx{n.index}")
            for n in topo.nodes
        ]
        self.nic_rx = [
            _NicPipe(sim, self, n.index, name=f"nic.rx{n.index}")
            for n in topo.nodes
        ]
        self.loopback = [
            SharedBandwidth(sim, params.loopback_bw, name=f"nic.loop{n.index}")
            for n in topo.nodes
        ]
        self._connections: Dict[tuple, Connection] = {}
        self._endpoints: Dict[int, Endpoint] = {}
        #: Optional :class:`~repro.faults.FaultInjector`; None = reliable.
        self.injector = None
        tracer = sim.tracer
        if tracer.enabled:
            for pipe in (*self.nic_tx, *self.nic_rx, *self.loopback):
                tracer.declare_track(link_track(pipe.name))

    # -- fault injection --------------------------------------------------

    def set_injector(self, injector) -> None:
        """Attach a fault injector; every message now consults it."""
        if self.injector is not None and self.injector is not injector:
            raise NetworkError("fabric already has a fault injector")
        self.injector = injector

    def degrade_factor(self, node_index: int) -> float:
        """Current NIC bandwidth multiplier for ``node_index`` (1.0 = healthy)."""
        if self.injector is None:
            return 1.0
        return self.injector.degrade_factor(node_index)

    def reprice_node(self, node_index: int) -> None:
        """Re-evaluate a node's NIC rates (called at degradation edges).

        Progress made so far is drained at the old rate before the new
        rate takes effect for the remainder of in-flight transfers.
        """
        for pipe in (self.nic_tx[node_index], self.nic_rx[node_index]):
            pipe._advance()
            pipe._reschedule()
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                node_track(node_index), "nic repriced", names.CAT_FAULT,
                args={"factor": self.degrade_factor(node_index)},
            )

    def _message_fate(self, src: Endpoint, dst: Endpoint) -> str:
        if self.injector is None:
            return "ok"
        return self.injector.message_fate(src.node_index, dst.node_index)

    def _black_hole(self) -> Generator:
        """A transfer that never completes (the caller must time out)."""
        self.stats.count(names.NET_MESSAGES_LOST)
        yield self.sim.event()  # never fires; reliable layers kill us

    # -- registration ----------------------------------------------------

    def register_endpoint(
        self, endpoint_id: int, node_index: int, connection_key: Optional[object] = None
    ) -> Endpoint:
        """Register a communication client on ``node_index``.

        Endpoints passing the same ``connection_key`` (scoped per node)
        share one connection; the default gives each endpoint its own.
        """
        if endpoint_id in self._endpoints:
            raise NetworkError(f"endpoint {endpoint_id} already registered")
        if not 0 <= node_index < self.topo.total_nodes:
            raise NetworkError(f"node {node_index} out of range")
        if connection_key is None:
            connection_key = ("ep", endpoint_id)
        key = (node_index, connection_key)
        conn = self._connections.get(key)
        if conn is None:
            conn = Connection(
                key=key, injector=Resource(self.sim, 1, name=f"conn{key}")
            )
            self._connections[key] = conn
        ep = Endpoint(endpoint_id=endpoint_id, node_index=node_index, connection=conn)
        self._endpoints[endpoint_id] = ep
        return ep

    def endpoint(self, endpoint_id: int) -> Endpoint:
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise NetworkError(f"unknown endpoint {endpoint_id}") from None

    def connections_on_node(self, node_index: int) -> int:
        return sum(1 for (n, _k) in self._connections if n == node_index)

    def active_connections_on_node(self, node_index: int) -> int:
        return self._active_conns[node_index]

    def _conn_activity(self, conn: Connection, delta: int) -> None:
        """Adjust a connection's in-flight count, repricing its node's NICs.

        Pipes are advanced *before* the count change (progress so far was
        made at the old efficiency) and rescheduled after it.
        """
        node = conn.key[0]
        pipes = (self.nic_tx[node], self.nic_rx[node])
        for pipe in pipes:
            pipe._advance()
        was_active = conn.active > 0
        conn.active += delta
        if conn.active < 0:
            raise NetworkError(f"connection {conn.key} activity underflow")
        now_active = conn.active > 0
        if was_active != now_active:
            self._active_conns[node] += 1 if now_active else -1
        for pipe in pipes:
            pipe._reschedule()

    # -- data movement ----------------------------------------------------

    def transmit(self, src_id: int, dst_id: int, nbytes: float) -> Generator:
        """Simulated generator: move ``nbytes`` from ``src_id`` to ``dst_id``.

        Completes when the data is fully delivered at the destination.
        The caller is responsible for charging ``send_overhead`` on the
        sending core (the fabric does not know about cores).
        """
        if nbytes < 0:
            raise NetworkError(f"negative message size: {nbytes}")
        src = self.endpoint(src_id)
        dst = self.endpoint(dst_id)
        p = self.params
        self.stats.count(names.NET_MESSAGES)
        self.stats.add(names.NET_BYTES, nbytes)
        if self.sim.tracer.enabled:
            self.sim.tracer.comm(src.node_index, dst.node_index, nbytes)

        # Injection: serialized on the (possibly shared) connection.  The
        # wire leg runs concurrently — packets pipeline — so delivery
        # completes at max(injection end, latency + NIC drain end).
        conn = src.connection
        yield conn.injector.acquire()
        conn.messages += 1
        conn.bytes += nbytes
        fate = self._message_fate(src, dst)
        self._conn_activity(conn, +1)
        try:
            injection = self.sim.delay(p.gap + nbytes / p.connection_bw)
            injection.add_callback(lambda _ev: conn.injector.release())
            if fate == "lost":
                # The sender pays injection; delivery never happens.  A
                # reliable upper layer must race us against a timeout.
                yield from self._black_hole()
            wire = self.sim.spawn(
                self._wire_leg(src, dst, nbytes), name="fabric.wire"
            )
            yield self.sim.all_of([injection, wire])
            if fate == "corrupt":
                raise MessageCorruptedError(
                    f"message {src.endpoint_id}->{dst.endpoint_id} "
                    f"({nbytes:g} B) failed integrity check"
                )
        finally:
            self._conn_activity(conn, -1)

    def _wire_leg(self, src: Endpoint, dst: Endpoint, nbytes: float) -> Generator:
        p = self.params
        if src.node_index == dst.node_index:
            # Intra-node traffic through the network API loops back through
            # the adapter itself (the ibv conduit's behaviour without
            # PSHM), so it competes with inter-node traffic on the NIC
            # pipes — which is exactly why Fig 3.4's PSHM gains grow with
            # thread density.
            self.stats.count(names.NET_LOOPBACK_MESSAGES)
            yield self.sim.delay(p.loopback_latency)
            node = src.node_index
            yield from self._drain(
                (self.loopback[node], self.nic_tx[node], self.nic_rx[node]),
                nbytes, "loop", src.endpoint_id, dst.endpoint_id,
            )
            return
        yield self.sim.delay(p.latency)
        yield from self._drain(
            (self.nic_tx[src.node_index], self.nic_rx[dst.node_index]),
            nbytes, "xfer", src.endpoint_id, dst.endpoint_id,
        )

    def _drain(self, pipes, nbytes: float, kind: str, a: int, b: int) -> Generator:
        """Drain ``nbytes`` through every pipe, tracing one span per link.

        The span label is built lazily from ``kind`` and the endpoint ids
        ``a``/``b`` so the untraced path never formats strings.  Spans
        cover the drain (not the preceding wire latency) and carry the
        pipe's in-flight transfer count at entry, so the per-link lanes
        in a trace show NIC contention directly.  A drain aborted by a
        timeout kill leaves its spans open; ``Tracer.finalize`` closes
        them at end of run, which is the honest rendering of a transfer
        that never finished.
        """
        tracer = self.sim.tracer
        if not tracer.enabled:
            yield self.sim.all_of([pipe.transfer(nbytes) for pipe in pipes])
            return
        arrow = "<-" if kind in ("read", "loopread") else "->"
        label = f"{kind} {a}{arrow}{b}"
        span_ids = [
            tracer.begin(
                link_track(pipe.name), label, names.CAT_NETWORK,
                args={"bytes": nbytes,
                      "inflight": pipe.active_transfers + 1},
            )
            for pipe in pipes
        ]
        for pipe in pipes:
            tracer.counter(link_track(pipe.name), "inflight",
                           pipe.active_transfers + 1)
        yield self.sim.all_of([pipe.transfer(nbytes) for pipe in pipes])
        for pipe, span_id in zip(pipes, span_ids):
            tracer.end(span_id)
            tracer.counter(link_track(pipe.name), "inflight",
                           pipe.active_transfers)

    def fetch(self, initiator_id: int, target_id: int, nbytes: float) -> Generator:
        """Simulated generator: RDMA-read ``nbytes`` from ``target_id``.

        The initiator's connection carries the read (its queue pair is
        occupied for the duration, like a hardware RDMA READ); data drains
        target→initiator through the reverse NIC pipes after a one-way
        request latency.  No CPU is charged at the target.
        """
        if nbytes < 0:
            raise NetworkError(f"negative message size: {nbytes}")
        ini = self.endpoint(initiator_id)
        tgt = self.endpoint(target_id)
        p = self.params
        self.stats.count(names.NET_MESSAGES)
        self.stats.add(names.NET_BYTES, nbytes)
        if self.sim.tracer.enabled:
            # data flows target -> initiator in a read
            self.sim.tracer.comm(tgt.node_index, ini.node_index, nbytes)

        conn = ini.connection
        yield conn.injector.acquire()
        conn.messages += 1
        conn.bytes += nbytes
        fate = self._message_fate(ini, tgt)
        self._conn_activity(conn, +1)
        try:
            injection = self.sim.delay(p.gap + nbytes / p.connection_bw)
            injection.add_callback(lambda _ev: conn.injector.release())
            if fate == "lost":
                yield from self._black_hole()
            wire = self.sim.spawn(
                self._fetch_wire_leg(ini, tgt, nbytes), name="fabric.fetchwire"
            )
            yield self.sim.all_of([injection, wire])
            if fate == "corrupt":
                raise MessageCorruptedError(
                    f"read {ini.endpoint_id}<-{tgt.endpoint_id} "
                    f"({nbytes:g} B) failed integrity check"
                )
        finally:
            self._conn_activity(conn, -1)

    def _fetch_wire_leg(self, ini: Endpoint, tgt: Endpoint, nbytes: float) -> Generator:
        p = self.params
        if ini.node_index == tgt.node_index:
            self.stats.count(names.NET_LOOPBACK_MESSAGES)
            yield self.sim.delay(p.loopback_latency)
            node = ini.node_index
            yield from self._drain(
                (self.loopback[node], self.nic_tx[node], self.nic_rx[node]),
                nbytes, "loopread", ini.endpoint_id, tgt.endpoint_id,
            )
            return
        # Request flight + response flight: a read pays the wire twice
        # before data starts arriving.
        yield self.sim.delay(2 * p.latency)
        yield from self._drain(
            (self.nic_tx[tgt.node_index], self.nic_rx[ini.node_index]),
            nbytes, "read", ini.endpoint_id, tgt.endpoint_id,
        )

    def analytic_message_time(self, src_id: int, dst_id: int, nbytes: float) -> float:
        """Uncontended transmit time (tests and back-of-envelope checks)."""
        src = self.endpoint(src_id)
        dst = self.endpoint(dst_id)
        if src.node_index == dst.node_index:
            return self.params.loopback_time(nbytes)
        return self.params.message_time(nbytes)
