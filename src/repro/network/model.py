"""Network cost-model parameters (LogGP-flavoured)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError

__all__ = ["NetworkParams"]


@dataclass(frozen=True)
class NetworkParams:
    """Per-conduit calibration constants.

    A message of ``n`` bytes between two nodes costs, end to end::

        o_send                      (sender core; charged by the caller)
      + wait for connection         (injection serialization, shared per
        + gap + n/connection_bw      connection — one per process)
      + latency                     (wire + switch)
      + n / min(tx NIC, rx NIC)     (processor-shared per node)

    Intra-node messages sent through the network API (the no-PSHM
    baseline of §3.1) skip the wire but pay the software path and drain
    through a per-node ``loopback_bw`` pipe.

    Attributes
    ----------
    latency: one-way wire+switch latency, seconds.
    send_overhead: CPU time to initiate a message (o_s).
    recv_overhead: CPU time to complete/receive a message (o_r) —
        charged by two-sided layers (MPI) and AM handlers, not by RDMA.
    gap: fixed per-message injection serialization on a connection.
    connection_bw: per-connection injection bandwidth, bytes/s.  A single
        link pair cannot exceed this (Fig 4.2: one link ≈ 1.4 GB/s on QDR).
    nic_bw: aggregate per-node NIC bandwidth, bytes/s (Fig 2.2:
        2.4 GB/s unidirectional on Lehman's QDR adapter).
    loopback_bw: intra-node through-the-network-API bandwidth, bytes/s.
    loopback_latency: intra-node software round latency, seconds.
    qp_knee / qp_penalty: connection-count contention — a NIC juggling
        more than ``qp_knee`` simultaneously-active connections loses
        efficiency (queue-pair state thrashing, lower-level API lock
        contention): effective aggregate rate is
        ``nic_bw / (1 + qp_penalty * (active_connections - qp_knee))``.
        This is the §4.3.1 observation that processes "extract more
        bandwidth" yet "contention in the lower network API level is
        likely to be slower" as per-node endpoint counts climb, and the
        mechanism behind the all-to-all decay past 2 cores/node in
        Figs 4.4/4.5.  Design decision D2 in DESIGN.md.
    """

    name: str = "ib-qdr"
    latency: float = 1.4e-6
    send_overhead: float = 0.3e-6
    recv_overhead: float = 0.3e-6
    gap: float = 0.15e-6
    connection_bw: float = 1.4e9
    nic_bw: float = 2.4e9
    loopback_bw: float = 2.0e9
    loopback_latency: float = 0.4e-6
    qp_knee: int = 2
    qp_penalty: float = 0.05
    #: D4 ablation: serve NIC pipes strictly FIFO instead of processor
    #: sharing (concurrent transfers then complete one after another).
    fifo_links: bool = False

    def __post_init__(self) -> None:
        for f in ("latency", "send_overhead", "recv_overhead", "gap", "loopback_latency"):
            if getattr(self, f) < 0:
                raise NetworkError(f"{f} must be >= 0, got {getattr(self, f)}")
        for f in ("connection_bw", "nic_bw", "loopback_bw"):
            if getattr(self, f) <= 0:
                raise NetworkError(f"{f} must be > 0, got {getattr(self, f)}")
        if self.qp_knee < 1 or self.qp_penalty < 0:
            raise NetworkError("qp_knee must be >= 1 and qp_penalty >= 0")

    def nic_efficiency(self, active_connections: int) -> float:
        """Fraction of nominal NIC bandwidth with this many active connections."""
        extra = max(0, active_connections - self.qp_knee)
        return 1.0 / (1.0 + self.qp_penalty * extra)

    def message_time(self, nbytes: float) -> float:
        """Uncontended end-to-end time for one inter-node message
        (excluding o_send, which the caller charges on the core).

        Injection and the wire leg pipeline, so the slower of the two
        governs: ``max(gap + n/connection_bw, latency + n/nic_bw)``.
        """
        return max(
            self.gap + nbytes / self.connection_bw,
            self.latency + nbytes / self.nic_bw,
        )

    def loopback_time(self, nbytes: float) -> float:
        """Uncontended time for one intra-node message via the network API
        (the loopback leg also traverses the NIC pipes)."""
        return max(
            self.gap + nbytes / self.connection_bw,
            self.loopback_latency + nbytes / min(self.loopback_bw, self.nic_bw),
        )
