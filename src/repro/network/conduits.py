"""GASNet-style conduit presets.

Calibration sources (all one-way unless noted):

* **ib-qdr** (Lehman): Fig 4.2a shows ~4 µs small-message round-trip, so
  ~2 µs one-way including software overheads; Fig 4.2b shows a single
  link pair flooding at ~1.4 GB/s with the NIC aggregating to ~2.4 GB/s
  across multiple pairs (Fig 2.2 quotes 2.4 GB/s unidirectional).
* **ib-ddr** (Pyramid): Fig 2.1 quotes 1.5 GB/s unidirectional
  point-to-point; DDR InfiniBand small-message latency is slightly higher
  than QDR's.
* **gige** (Pyramid's Ethernet fabric): standard GigE numbers — ~25 µs
  one-way latency through the kernel TCP stack, 125 MB/s line rate.
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.network.model import NetworkParams

__all__ = ["CONDUITS", "conduit"]

_GB = 1e9

CONDUITS: dict[str, NetworkParams] = {
    "ib-qdr": NetworkParams(
        name="ib-qdr",
        latency=1.4e-6,
        send_overhead=0.3e-6,
        recv_overhead=0.3e-6,
        gap=0.15e-6,
        connection_bw=1.4 * _GB,
        nic_bw=2.4 * _GB,
        loopback_bw=2.0 * _GB,
        loopback_latency=0.4e-6,
    ),
    "ib-ddr": NetworkParams(
        name="ib-ddr",
        latency=2.2e-6,
        send_overhead=0.4e-6,
        recv_overhead=0.4e-6,
        gap=0.2e-6,
        connection_bw=1.1 * _GB,
        nic_bw=1.5 * _GB,
        loopback_bw=1.8 * _GB,
        loopback_latency=0.5e-6,
    ),
    "gige": NetworkParams(
        name="gige",
        latency=25.0e-6,
        send_overhead=5.0e-6,
        recv_overhead=5.0e-6,
        gap=2.0e-6,
        connection_bw=0.118 * _GB,
        nic_bw=0.125 * _GB,
        loopback_bw=1.2 * _GB,
        loopback_latency=4.0e-6,
    ),
}


def conduit(name: str) -> NetworkParams:
    """Look up a conduit preset by name."""
    try:
        return CONDUITS[name]
    except KeyError:
        raise NetworkError(
            f"unknown conduit {name!r}; available: {sorted(CONDUITS)}"
        ) from None
