"""Interconnect fabric simulator.

Models the cluster networks of the thesis (QDR/DDR InfiniBand, Gigabit
Ethernet) with a LogGP-flavoured cost model:

* per-message **send overhead** (charged on the sender's core by the
  caller), **injection gap** serialized on the endpoint's *connection*,
  **wire latency**, and **bandwidth** terms;
* **processor-sharing NIC pipes** per node (tx and rx), producing the
  all-to-all saturation beyond ~2 communicating cores per node seen in
  Figs 4.4/4.5;
* **shared connections**: ranks of one process (the pthreads backend and
  sub-thread hybrids) share a single connection whose injection
  serializes, while process ranks each own a connection — the
  processes-vs-pthreads separation of Fig 4.2.
"""

from repro.network.model import NetworkParams
from repro.network.fabric import Endpoint, Fabric
from repro.network.conduits import CONDUITS, conduit

__all__ = ["CONDUITS", "Endpoint", "Fabric", "NetworkParams", "conduit"]
