"""Campaigns: Spec → Plan → Execute → Collate.

A :class:`Campaign` binds one experiment's declarative point list to an
executor and an optional result cache:

1. **Spec** — the experiment's ``points(scale)`` declares *what to run*
   as an ordered list of :class:`~repro.harness.spec.RunSpec`.
2. **Plan** — cached points are resolved to stored outputs; only the
   misses go to the executor.
3. **Execute** — the executor (inline, process pool, or the durable
   queue) runs the misses and returns outputs in spec order; fresh
   outputs are written back to the cache.
4. **Collate** — the experiment's ``collate(scale, outputs)`` folds the
   ordered outputs into an :class:`~repro.harness.reporting.ExperimentResult`.

Because every point is a pure function of its spec, the collated result
is independent of scheduling and of the cache's hit pattern; only the
campaign counters (surfaced on the result when a cache is in play)
differ between a cold and a warm run.

When the durable queue executor quarantines poison points, the campaign
**degrades instead of aborting**: the experiment's ``collate`` needs the
full ordered point set, so the result is a partial
:class:`ExperimentResult` carrying the completed count, a rendered
failure table, and shape failures naming each quarantined point — the
healthy points' outputs are still cached for the eventual clean re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.cache import ResultCache
from repro.harness.executor import ExecutionBatch, make_executor
from repro.harness.reporting import ExperimentResult
from repro.harness.spec import RunSpec

__all__ = ["Campaign", "CampaignOutcome"]


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced."""

    result: Any                              #: the collated ExperimentResult
    specs: List[RunSpec] = field(default_factory=list)
    batch: ExecutionBatch = field(default_factory=ExecutionBatch)
    cache_hits: int = 0
    executed: int = 0

    @property
    def points(self) -> int:
        return len(self.specs)

    @property
    def replayed(self) -> int:
        """Points restored from a durable journal instead of executed."""
        return self.batch.replayed

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """Quarantined points, with campaign-global ``point`` indices."""
        return self.result.failures if hasattr(self.result, "failures") else []


class Campaign:
    """One experiment bound to an executor and an optional cache."""

    def __init__(self, experiment, scale: str = "quick", faults=None,
                 executor=None, cache: Optional[ResultCache] = None,
                 jobs: int = 1, chaos=None):
        self.experiment = experiment
        self.scale = scale
        self.faults = faults
        self.executor = executor if executor is not None else make_executor(jobs)
        self.cache = cache
        self.chaos = chaos

    def plan(self) -> List[RunSpec]:
        """The ordered point list this campaign will resolve."""
        if self.experiment.accepts_faults:
            return list(self.experiment.points(self.scale, faults=self.faults))
        return list(self.experiment.points(self.scale))

    def run(self, *, trace: bool = False, sanitize: bool = False,
            profile: bool = False) -> CampaignOutcome:
        specs = self.plan()
        if self.chaos is not None and self.cache is not None:
            # Self-chaos: clobber targeted cache entries *before* the
            # reads below, proving a corrupted cache heals (reads as a
            # miss, recomputes) instead of poisoning the report.
            from repro.harness.chaos import ChaosPlan

            ChaosPlan.parse(self.chaos).corrupt_cache_entries(self.cache,
                                                              specs)
        outputs: List[Optional[Dict[str, Any]]] = [None] * len(specs)
        pending: List[int] = []
        hits = 0
        # Tracers, findings and profiles exist only on fresh executions,
        # so an observed campaign bypasses cache reads (a hit would
        # silently drop that point from the trace/profile); it still
        # writes, so the next un-observed run starts warm.
        use_cached = self.cache is not None and not (trace or sanitize
                                                     or profile)
        for i, spec in enumerate(specs):
            cached = self.cache.get(spec) if use_cached else None
            if cached is not None:
                outputs[i] = cached
                hits += 1
            else:
                pending.append(i)
        batch = self.executor.run([specs[i] for i in pending],
                                  trace=trace, sanitize=sanitize,
                                  profile=profile)
        for i, output in zip(pending, batch.outputs):
            outputs[i] = output
            # Quarantined points have no output; nothing to cache.
            if self.cache is not None and output is not None:
                self.cache.put(specs[i], output)
        # Failure rows come back with batch-local point indices; remap
        # them to campaign-global indices for the report.
        failures = [{**f, "point": pending[f["point"]]}
                    for f in batch.failures]
        if failures:
            result = self._degraded_result(specs, outputs, failures)
        elif self.experiment.accepts_faults:
            result = self.experiment.collate(self.scale, outputs,
                                             faults=self.faults)
        else:
            result = self.experiment.collate(self.scale, outputs)
        if self.cache is not None:
            result.campaign = {
                "points": len(specs),
                "executed": len(pending),
                "cache_hits": hits,
            }
        return CampaignOutcome(result=result, specs=specs, batch=batch,
                               cache_hits=hits, executed=len(pending))

    def _degraded_result(self, specs, outputs, failures) -> ExperimentResult:
        """A partial result for a campaign with quarantined points.

        ``collate`` contracts on the full ordered point set, so a
        campaign with holes reports what it *can* prove — which points
        completed, which were quarantined and why — and fails the shape
        check rather than fabricating a table from partial data.
        """
        completed = sum(1 for o in outputs if o is not None)
        return ExperimentResult(
            experiment_id=self.experiment.experiment_id,
            title=self.experiment.title,
            scale=self.scale,
            failures=failures,
            notes=[
                f"degraded campaign: {completed}/{len(specs)} point(s) "
                f"completed, {len(failures)} quarantined after retries; "
                "the artifact cannot be collated from a partial point set"
            ],
            shape_failures=[
                f"point {f['point']} ({f['app']}) failed after "
                f"{f['attempts']} attempt(s): {f['error']}"
                for f in failures
            ],
        )
