"""Campaigns: Spec → Plan → Execute → Collate.

A :class:`Campaign` binds one experiment's declarative point list to an
executor and an optional result cache:

1. **Spec** — the experiment's ``points(scale)`` declares *what to run*
   as an ordered list of :class:`~repro.harness.spec.RunSpec`.
2. **Plan** — cached points are resolved to stored outputs; only the
   misses go to the executor.
3. **Execute** — the executor (inline or process pool) runs the misses
   and returns outputs in spec order; fresh outputs are written back to
   the cache.
4. **Collate** — the experiment's ``collate(scale, outputs)`` folds the
   ordered outputs into an :class:`~repro.harness.reporting.ExperimentResult`.

Because every point is a pure function of its spec, the collated result
is independent of scheduling and of the cache's hit pattern; only the
campaign counters (surfaced on the result when a cache is in play)
differ between a cold and a warm run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.cache import ResultCache
from repro.harness.executor import ExecutionBatch, make_executor
from repro.harness.spec import RunSpec

__all__ = ["Campaign", "CampaignOutcome"]


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced."""

    result: Any                              #: the collated ExperimentResult
    specs: List[RunSpec] = field(default_factory=list)
    batch: ExecutionBatch = field(default_factory=ExecutionBatch)
    cache_hits: int = 0
    executed: int = 0

    @property
    def points(self) -> int:
        return len(self.specs)


class Campaign:
    """One experiment bound to an executor and an optional cache."""

    def __init__(self, experiment, scale: str = "quick", faults=None,
                 executor=None, cache: Optional[ResultCache] = None,
                 jobs: int = 1):
        self.experiment = experiment
        self.scale = scale
        self.faults = faults
        self.executor = executor if executor is not None else make_executor(jobs)
        self.cache = cache

    def plan(self) -> List[RunSpec]:
        """The ordered point list this campaign will resolve."""
        if self.experiment.accepts_faults:
            return list(self.experiment.points(self.scale, faults=self.faults))
        return list(self.experiment.points(self.scale))

    def run(self, *, trace: bool = False, sanitize: bool = False) -> CampaignOutcome:
        specs = self.plan()
        outputs: List[Optional[Dict[str, Any]]] = [None] * len(specs)
        pending: List[int] = []
        hits = 0
        # Tracers and findings exist only on fresh executions, so an
        # observed campaign bypasses cache reads (a hit would silently
        # drop that point from the trace); it still writes, so the next
        # un-observed run starts warm.
        use_cached = self.cache is not None and not (trace or sanitize)
        for i, spec in enumerate(specs):
            cached = self.cache.get(spec) if use_cached else None
            if cached is not None:
                outputs[i] = cached
                hits += 1
            else:
                pending.append(i)
        batch = self.executor.run([specs[i] for i in pending],
                                  trace=trace, sanitize=sanitize)
        for i, output in zip(pending, batch.outputs):
            outputs[i] = output
            if self.cache is not None:
                self.cache.put(specs[i], output)
        if self.experiment.accepts_faults:
            result = self.experiment.collate(self.scale, outputs,
                                             faults=self.faults)
        else:
            result = self.experiment.collate(self.scale, outputs)
        if self.cache is not None:
            result.campaign = {
                "points": len(specs),
                "executed": len(pending),
                "cache_hits": hits,
            }
        return CampaignOutcome(result=result, specs=specs, batch=batch,
                               cache_hits=hits, executed=len(pending))
