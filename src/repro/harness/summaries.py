"""Harness → analytics bridge: write campaign summaries on completion.

When a campaign runs with ``--summary-dir``, the harness traces every
point and, as a completion hook, folds each point's tracers into the
content-addressed summary artifacts of :mod:`repro.obs.analytics`::

    <summary-dir>/<campaign-fp16>/
        campaign.json
        points/NNNN-<point-fp12>.json
        campaign-summary.json

The campaign fingerprint is the same one the durable journal uses
(:func:`repro.harness.journal.campaign_fingerprint`), so a campaign's
journal and its summary are keyed identically and can be correlated
across the cache directory and the summary root.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict

from repro.harness.journal import campaign_fingerprint
from repro.obs.analytics.summary import point_summary, write_campaign

__all__ = ["summarize_outcome"]


def campaign_header(specs, experiment_id: str, scale: str) -> Dict[str, Any]:
    """The summary header shared with ``campaign.json``."""
    from repro._version import __version__

    return {
        "fingerprint": campaign_fingerprint(specs),
        "experiment": experiment_id,
        "scale": scale,
        "points": len(specs),
        "version": __version__,
    }


def summarize_outcome(outcome, experiment_id: str, scale: str,
                      summary_root) -> Path:
    """Write one finished campaign's summary artifacts; returns the dir.

    Requires the campaign to have run traced: the per-point tracer
    groups on the batch are the raw material.  Quarantined points are
    **excluded** — an empty group would summarize to zeros, and a zero
    row is indistinguishable from a genuinely idle point, which poisons
    ``diff``/``trend`` baselines.  Their indices are recorded in the
    header's ``quarantined`` list instead, and the healthy points keep
    their campaign-global indices (hence byte-identical artifacts to the
    same points summarized from a fully healthy run).
    """
    specs = outcome.specs
    groups = outcome.batch.tracer_groups
    if len(groups) != len(specs):
        raise ValueError(
            f"campaign has {len(specs)} point(s) but {len(groups)} tracer "
            "group(s) — summaries need a traced run (--summary-dir forces "
            "tracing; was the batch executed untraced?)"
        )
    quarantined = sorted(f["point"] for f in outcome.failures)
    skip = set(quarantined)
    points = []
    for index, (spec, tracers) in enumerate(zip(specs, groups)):
        if index in skip:
            continue
        meta = {
            "app": spec.app,
            "fingerprint": spec.fingerprint(),
            "spec": spec.as_dict(),
        }
        points.append(point_summary(index, meta, tracers))
    header = campaign_header(specs, experiment_id, scale)
    if quarantined:
        header["quarantined"] = quarantined
    return write_campaign(summary_root, header, points)
