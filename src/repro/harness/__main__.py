"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.harness --list
    python -m repro.harness t3_1 t4_1
    python -m repro.harness --all --scale quick --out results.md
    python -m repro.harness r1 --faults "crash:node=2,at=5e-5;seed=7"
    python -m repro.harness run f4_2 --scale quick --trace /tmp/t.json
    python -m repro.harness f4_2 --report-breakdown
    python -m repro.harness f3_3 --jobs 4
    python -m repro.harness --all --no-cache
    python -m repro.harness f3_3 --durable --jobs 4 --point-timeout 120
    python -m repro.harness f3_3 --resume
    python -m repro.harness t3_1 --chaos "kill:point=1,attempt=1;seed=7"
    python -m repro.harness f4_2 --summary-dir .summaries
    python -m repro.harness --status .repro-cache
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import FaultError
from repro.harness.cache import DEFAULT_CACHE_DIR
from repro.harness.runner import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the thesis's tables and figures on the "
                    "simulated clusters.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. t3_1 f4_5)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    parser.add_argument("--faults", metavar="SPEC",
                        help="fault-plan spec for experiments that accept one "
                             "(e.g. 'crash:node=1,at=5e-5;loss:prob=0.01')")
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a Chrome trace-event / Perfetto JSON of "
                             "every simulated program the experiments run")
    parser.add_argument("--report-breakdown", action="store_true",
                        help="append the critical-path time attribution "
                             "(compute/network/barrier/steal) and the "
                             "communication matrix to each report")
    parser.add_argument("--sanitize", action="store_true",
                        help="arm the dynamic PGAS sanitizer (repro.analyze): "
                             "race, privatization-legality and collective-"
                             "matching checks; any finding fails the run")
    parser.add_argument("--analyze-static", action="store_true",
                        help="run the flow-aware static PGAS analyzer over "
                             "the repro package against the committed "
                             "baseline and exit (the static counterpart to "
                             "--sanitize; same gate as python -m "
                             "repro.analyze.static --check)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run independent simulation points across N "
                             "worker processes (default 1: inline, "
                             "byte-identical to the historical reports)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="content-addressed result cache location "
                             f"(default {DEFAULT_CACHE_DIR}); already-"
                             "computed points are skipped on re-runs")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache (every point runs)")
    parser.add_argument("--durable", action="store_true",
                        help="run under the crash-safe queue executor: "
                             "every point's lifecycle is journaled, failed "
                             "points retry with backoff and are quarantined "
                             "after --max-attempts, and an interrupted "
                             "campaign can be finished with --resume")
    parser.add_argument("--resume", action="store_true",
                        help="replay the campaign journal and execute only "
                             "unfinished points (implies --durable); the "
                             "final report is byte-identical to an "
                             "uninterrupted run")
    parser.add_argument("--point-timeout", type=float, metavar="SECONDS",
                        help="kill any single simulation point that exceeds "
                             "this wall-clock budget; the point is journaled "
                             "as failed and retried/quarantined instead of "
                             "wedging the campaign (implies --durable)")
    parser.add_argument("--max-attempts", type=int, default=3, metavar="N",
                        help="attempts per point before the durable executor "
                             "quarantines it as poison (default 3)")
    parser.add_argument("--lease-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="heartbeat lease duration for durable workers; "
                             "a worker silent this long is presumed dead and "
                             "its point is reclaimed (default 30)")
    parser.add_argument("--journal-dir", metavar="DIR",
                        help="campaign journal location (default "
                             "<cache-dir>/journals)")
    parser.add_argument("--chaos", metavar="SPEC",
                        help="seeded self-chaos injection for the durable "
                             "executor (e.g. 'kill:point=1,attempt=1;"
                             "halt:after=2;seed=7'); implies --durable")
    parser.add_argument("--summary-dir", metavar="DIR",
                        help="trace every campaign and write per-point "
                             "summaries plus a merged campaign-summary.json "
                             "under DIR, content-addressed by campaign "
                             "fingerprint (see python -m repro.obs.analytics)")
    parser.add_argument("--profile", metavar="DIR", dest="profile_dir",
                        help="profile every campaign point (host wall-clock "
                             "+ simulated cost) and write merged "
                             "<id>-{host,cost}.{json,folded} artifacts under "
                             "DIR (see python -m repro.obs.profile); leaves "
                             "the rendered report byte-identical")
    parser.add_argument("--status", metavar="DIR", nargs="?",
                        const=DEFAULT_CACHE_DIR,
                        help="render the per-campaign state of every durable "
                             "journal under DIR (a cache dir or a journals "
                             f"dir; default {DEFAULT_CACHE_DIR}) and exit")
    args = parser.parse_args(argv)
    if args.analyze_static:
        from repro.analyze.static.__main__ import main as static_main

        return static_main(["--check"])
    if args.status is not None:
        from repro.harness.status import render_status

        print(render_status(args.status))
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    if args.point_timeout is not None and args.point_timeout <= 0:
        parser.error("--point-timeout must be > 0")
    if args.lease_timeout <= 0:
        parser.error("--lease-timeout must be > 0")
    if args.chaos:
        from repro.harness.chaos import ChaosPlan

        try:
            ChaosPlan.parse(args.chaos)
        except FaultError as exc:
            parser.error(f"--chaos: {exc}")

    # `run` compat: accept `python -m repro.harness run f4_2` like the
    # docs' short form `python -m repro.harness f4_2`.
    if args.experiments and args.experiments[0] == "run":
        args.experiments = args.experiments[1:]

    if args.list:
        # static titles: no heavy experiment-module imports for a listing
        for eid in EXPERIMENTS.ids():
            print(f"{eid:6s} {EXPERIMENTS.title(eid)}")
        return 0

    ids = EXPERIMENTS.ids() if args.all else args.experiments
    if not ids:
        parser.error("no experiments given (use ids, --all, or --list)")
    if args.trace and len(ids) > 1:
        parser.error("--trace takes exactly one experiment (one trace file)")

    chunks = []
    ok = True
    for eid in ids:
        t0 = time.time()
        try:
            result = run_experiment(
                eid, scale=args.scale, faults=args.faults,
                trace_path=args.trace, breakdown=args.report_breakdown,
                sanitize=args.sanitize, jobs=args.jobs,
                cache_dir=None if args.no_cache else args.cache_dir,
                durable=args.durable, resume=args.resume,
                point_timeout=args.point_timeout,
                max_attempts=args.max_attempts,
                lease_timeout=args.lease_timeout,
                chaos=args.chaos, journal_dir=args.journal_dir,
                summary_dir=args.summary_dir,
                profile_dir=args.profile_dir,
            )
        except FaultError as exc:
            parser.error(f"--faults: {exc}")
        except ValueError as exc:
            if "--faults" in str(exc) or "faults" in str(exc):
                parser.error(str(exc))
            raise
        wall = time.time() - t0
        chunk = result.render() + f"\n(wall time {wall:.1f}s)\n"
        chunks.append(chunk)
        print(chunk)
        ok = ok and result.shape_ok and not result.sanitizer_findings
    report = "\n".join(chunks)
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.profile_dir:
        print(f"profiles written to {args.profile_dir}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"report written to {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
