"""Experiment registry and dispatch."""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.reporting import ExperimentResult

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]

SCALES = ("quick", "paper")

#: experiment id -> (module path, static title).  One module per paper
#: table/figure, plus extensions such as the fault-injection resilience
#: study.  Titles live here (not only on the module's EXPERIMENT) so
#: ``--list`` can print them without importing heavy app code.
_MODULES = {
    "t2_1": ("repro.harness.experiments.t2_1",
             "Table 2.1 - Platform Characteristics"),
    "t3_1": ("repro.harness.experiments.t3_1",
             "Table 3.1 - Twisted STREAM Triad"),
    "t3_2": ("repro.harness.experiments.t3_2",
             "Table 3.2 - UTS profiling"),
    "f3_3": ("repro.harness.experiments.f3_3",
             "Fig 3.3 - UTS scalability"),
    "f3_4": ("repro.harness.experiments.f3_4",
             "Fig 3.4 - FT all-to-all optimizations"),
    "f4_2": ("repro.harness.experiments.f4_2",
             "Fig 4.2 - Multi-link microbenchmark"),
    "t4_1": ("repro.harness.experiments.t4_1",
             "Table 4.1 - hybrid STREAM placement"),
    "f4_4": ("repro.harness.experiments.f4_4",
             "Fig 4.4 - FT runtime breakdown"),
    "f4_5": ("repro.harness.experiments.f4_5",
             "Fig 4.5 - FT communication time"),
    "f4_6": ("repro.harness.experiments.f4_6",
             "Fig 4.6 - FT overall performance"),
    "r1": ("repro.harness.experiments.resilience",
           "R1 - UTS under injected faults"),
}


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact, declared as a campaign.

    ``points(scale)`` returns the ordered :class:`~repro.harness.spec.RunSpec`
    list the artifact needs; ``collate(scale, outputs)`` folds the
    outputs (same order) into an :class:`ExperimentResult`.  Experiments
    with ``accepts_faults=True`` take a ``faults=`` keyword in both.
    """

    experiment_id: str
    title: str
    points: Callable[..., Sequence]
    collate: Callable[..., ExperimentResult]
    #: True when the campaign takes a fault plan (the ``--faults`` flag).
    accepts_faults: bool = False

    def __call__(self, scale: str = "quick", faults=None) -> ExperimentResult:
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
        if faults is not None and not self.accepts_faults:
            raise ValueError(
                f"experiment {self.experiment_id!r} does not accept a "
                "--faults spec"
            )
        from repro.harness.campaign import Campaign

        return Campaign(self, scale=scale, faults=faults).run().result


class _Registry:
    """Lazy experiment registry (experiments import heavy app code)."""

    def __init__(self) -> None:
        self._cache: Dict[str, Experiment] = {}

    def ids(self) -> List[str]:
        return list(_MODULES)

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in _MODULES

    def title(self, experiment_id: str) -> str:
        """Static title — no experiment module import."""
        if experiment_id not in _MODULES:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; available: {self.ids()}"
            )
        return _MODULES[experiment_id][1]

    def get(self, experiment_id: str) -> Experiment:
        if experiment_id not in _MODULES:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; available: {self.ids()}"
            )
        if experiment_id not in self._cache:
            module = importlib.import_module(_MODULES[experiment_id][0])
            self._cache[experiment_id] = module.EXPERIMENT
        return self._cache[experiment_id]


EXPERIMENTS = _Registry()


def get_experiment(experiment_id: str) -> Experiment:
    return EXPERIMENTS.get(experiment_id)


def run_experiment(
    experiment_id: str,
    scale: str = "quick",
    faults=None,
    trace_path=None,
    breakdown: bool = False,
    sanitize: bool = False,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    durable: bool = False,
    resume: bool = False,
    point_timeout: Optional[float] = None,
    max_attempts: int = 3,
    lease_timeout: float = 30.0,
    chaos: Optional[str] = None,
    journal_dir: Optional[str] = None,
    summary_dir: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment's campaign; optionally trace and/or sanitize it.

    ``jobs`` selects the executor: 1 runs every point inline (the
    historical behavior, byte-identical reports), >1 fans independent
    points across a process pool.  ``cache_dir`` arms the
    content-addressed result cache there (None disables caching);
    already-computed points are then skipped and the hit/executed
    counters surface on the result.  ``trace_path`` writes a Chrome
    trace-event JSON covering every simulated program the experiment
    ran; ``breakdown`` attaches the critical-path time attribution and
    communication matrix to the result (rendered by
    :meth:`ExperimentResult.render`); ``sanitize`` arms the dynamic PGAS
    sanitizer (:mod:`repro.analyze`) and attaches its findings.  All
    default off, in which case neither a tracer nor a sanitizer is
    attached and the simulation runs at full speed.

    ``durable`` (implied by ``resume``, ``point_timeout``, or ``chaos``)
    swaps in the crash-safe :class:`~repro.harness.queue.QueueExecutor`:
    every point's lifecycle is journaled under ``journal_dir`` (default
    ``<cache or .repro-cache>/journals``), failed points retry up to
    ``max_attempts`` times with backoff and are then quarantined,
    workers run under ``lease_timeout``-second heartbeat leases and an
    optional per-point ``point_timeout`` wall-clock limit, and
    ``resume=True`` replays the journal to execute only unfinished
    points — the final report is byte-identical to an uninterrupted run.
    ``chaos`` injects deterministic executor faults
    (:mod:`repro.harness.chaos`) for self-testing.

    ``summary_dir`` arms the campaign-analytics completion hook: the
    campaign runs traced and its per-point summaries plus the merged
    ``campaign-summary.json`` are written content-addressed under that
    root (see :mod:`repro.obs.analytics`), ready for ``python -m
    repro.obs.analytics diff/check``.

    ``profile_dir`` arms :mod:`repro.obs.profile` per point and writes
    the merged ``<experiment>-{host,cost}.{json,folded}`` artifacts
    there.  Profiling appends no result note, so a profiled untraced
    run's rendered report stays byte-identical to a plain run (the same
    zero-perturbation contract the tracer honors for simulated results).
    """
    exp = get_experiment(experiment_id)
    if faults and not exp.accepts_faults:
        raise ValueError(
            f"experiment {experiment_id!r} does not accept a --faults spec"
        )
    cache = None
    if cache_dir is not None:
        from repro.harness.cache import ResultCache

        cache = ResultCache(cache_dir)
    from repro.harness.campaign import Campaign

    executor = None
    durable = durable or resume or chaos is not None or point_timeout is not None
    if durable:
        import os

        from repro.harness.cache import DEFAULT_CACHE_DIR
        from repro.harness.queue import QueueExecutor

        if journal_dir is None:
            journal_dir = os.path.join(cache_dir or DEFAULT_CACHE_DIR,
                                       "journals")
        executor = QueueExecutor(
            jobs=jobs, journal_dir=journal_dir, resume=resume,
            max_attempts=max_attempts, lease_s=lease_timeout,
            point_timeout=point_timeout, chaos=chaos,
            meta={"experiment": experiment_id, "scale": scale},
        )
    campaign = Campaign(exp, scale=scale, faults=faults, jobs=jobs,
                        cache=cache, executor=executor, chaos=chaos)
    trace = bool(trace_path) or breakdown or summary_dir is not None
    outcome = campaign.run(trace=trace, sanitize=sanitize,
                           profile=profile_dir is not None)
    result = outcome.result
    if profile_dir is not None:
        from repro.obs.profile import write_profiles

        write_profiles(profile_dir, experiment_id, outcome.batch.profiles)
    if summary_dir is not None:
        from repro.harness.summaries import summarize_outcome

        summary_path = summarize_outcome(outcome, experiment_id, scale,
                                         summary_dir)
        result.notes.append(f"campaign summary written to {summary_path}")
    if trace_path:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(trace_path, outcome.batch.tracers)
        result.notes.append(
            f"trace written ({len(outcome.batch.tracers)} runs)"
        )
    if breakdown:
        from repro.obs.critical_path import breakdown_rows, comm_matrix_rows

        result.breakdown = breakdown_rows(outcome.batch.tracers)
        result.comm_matrix = comm_matrix_rows(outcome.batch.tracers)
    if sanitize:
        result.sanitized = True
        result.sanitizer_findings = list(outcome.batch.findings)
        result.notes.append(
            f"sanitizer: {len(outcome.batch.findings)} finding(s) across "
            f"{outcome.batch.sanitizer_runs} run(s)"
        )
    return result
