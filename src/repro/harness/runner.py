"""Experiment registry and dispatch."""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.harness.reporting import ExperimentResult

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]

SCALES = ("quick", "paper")

#: experiment id -> module path (one module per paper table/figure,
#: plus extensions such as the fault-injection resilience study)
_MODULES = {
    "t2_1": "repro.harness.experiments.t2_1",
    "t3_1": "repro.harness.experiments.t3_1",
    "t3_2": "repro.harness.experiments.t3_2",
    "f3_3": "repro.harness.experiments.f3_3",
    "f3_4": "repro.harness.experiments.f3_4",
    "f4_2": "repro.harness.experiments.f4_2",
    "t4_1": "repro.harness.experiments.t4_1",
    "f4_4": "repro.harness.experiments.f4_4",
    "f4_5": "repro.harness.experiments.f4_5",
    "f4_6": "repro.harness.experiments.f4_6",
    "r1": "repro.harness.experiments.resilience",
}


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    experiment_id: str
    title: str
    run: Callable[[str], ExperimentResult]  # run(scale[, faults]) -> result
    #: True when ``run`` takes a ``faults`` spec (the ``--faults`` CLI flag).
    accepts_faults: bool = False

    def __call__(self, scale: str = "quick", faults=None) -> ExperimentResult:
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
        if self.accepts_faults:
            return self.run(scale, faults=faults)
        return self.run(scale)


class _Registry:
    """Lazy experiment registry (experiments import heavy app code)."""

    def __init__(self) -> None:
        self._cache: Dict[str, Experiment] = {}

    def ids(self) -> List[str]:
        return list(_MODULES)

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in _MODULES

    def get(self, experiment_id: str) -> Experiment:
        if experiment_id not in _MODULES:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; available: {self.ids()}"
            )
        if experiment_id not in self._cache:
            module = importlib.import_module(_MODULES[experiment_id])
            self._cache[experiment_id] = module.EXPERIMENT
        return self._cache[experiment_id]


EXPERIMENTS = _Registry()


def get_experiment(experiment_id: str) -> Experiment:
    return EXPERIMENTS.get(experiment_id)


def run_experiment(
    experiment_id: str,
    scale: str = "quick",
    faults=None,
    trace_path=None,
    breakdown: bool = False,
    sanitize: bool = False,
) -> ExperimentResult:
    """Run one experiment; optionally trace and/or sanitize it.

    ``trace_path`` writes a Chrome trace-event JSON covering every
    simulated program the experiment ran; ``breakdown`` attaches the
    critical-path time attribution and communication matrix to the
    result (rendered by :meth:`ExperimentResult.render`); ``sanitize``
    arms the dynamic PGAS sanitizer (:mod:`repro.analyze`) and attaches
    its findings.  All default off, in which case neither a tracer nor a
    sanitizer is attached and the simulation runs at full speed.
    """
    exp = get_experiment(experiment_id)
    if faults and not exp.accepts_faults:
        raise ValueError(
            f"experiment {experiment_id!r} does not accept a --faults spec"
        )
    if not trace_path and not breakdown and not sanitize:
        return exp(scale, faults=faults)

    from contextlib import ExitStack

    with ExitStack() as stack:
        san_session = None
        if sanitize:
            from repro.analyze.sanitizer import sanitize_session

            san_session = stack.enter_context(sanitize_session(experiment_id))
        session = None
        if trace_path or breakdown:
            from repro.obs.session import trace_session

            session = stack.enter_context(trace_session(experiment_id))
        result = exp(scale, faults=faults)
    if trace_path:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(trace_path, session.tracers)
        result.notes.append(f"trace written ({len(session.tracers)} runs)")
    if breakdown:
        from repro.obs.critical_path import breakdown_rows, comm_matrix_rows

        result.breakdown = breakdown_rows(session.tracers)
        result.comm_matrix = comm_matrix_rows(session.tracers)
    if sanitize:
        findings = san_session.findings
        result.sanitized = True
        result.sanitizer_findings = [f.row() for f in findings]
        result.notes.append(
            f"sanitizer: {len(findings)} finding(s) across "
            f"{len(san_session.sanitizers)} run(s)"
        )
    return result
