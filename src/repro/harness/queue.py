"""Durable, lease-based campaign executor: the crash-safe work queue.

:class:`QueueExecutor` implements the executor contract of
:mod:`repro.harness.executor` as a coordinator over single-point worker
processes, journaling every lifecycle transition so a campaign survives
anything short of losing the journal file itself:

* **Leases + heartbeats** — each in-flight point is a time-limited lease;
  the worker's heartbeat thread refreshes it.  A worker that stops
  heartbeating (hung interpreter, livelocked simulation, SIGSTOP) has
  its lease reclaimed: the coordinator kills it and requeues the point.
* **Retries with backoff** — a failed attempt (worker SIGKILLed, lease
  expired, per-point timeout, dropped result, app exception) is retried
  under exponential backoff with deterministic jitter (a pure hash of
  the point fingerprint and attempt number — no RNG state to lose).
* **Quarantine** — a point that fails ``max_attempts`` times is poison:
  it is journaled as quarantined and surfaced in the batch's
  ``failures`` while every other point completes, so the campaign
  degrades to a partial report instead of aborting.
* **Resume** — ``resume=True`` replays the journal first and executes
  only points without a durable ``done`` record; because every point is
  a pure function of its spec, the resumed report is byte-identical to
  an uninterrupted run.

The coordinator is the journal's only writer (workers report through
pipes), which keeps the journal single-writer-append-only — the same
property that makes its replay trivially consistent.

Observability caveat: replayed outputs carry no tracers or profiles
(they were produced by a dead process), so a traced, sanitized or
profiled run ignores the replay and re-executes every point — mirroring
how the campaign cache bypasses reads under
``--trace``/``--sanitize``/``--profile``.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import signal
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.chaos import ChaosPlan
from repro.harness.executor import (
    ExecutionBatch,
    ExecutorError,
    _compute_payload,
)
from repro.harness.journal import CampaignJournal, campaign_fingerprint
from repro.harness.spec import RunSpec

__all__ = ["QueueExecutor"]

#: Forever, as far as one campaign point is concerned.
_STALL_S = 3600.0


def _queue_worker(conn, index: int, spec: RunSpec, attempt: int,
                  trace: bool, sanitize: bool, profile: bool,
                  chaos_spec: Optional[str], heartbeat_s: float) -> None:
    """Worker entry: compute one point, heartbeat while doing so.

    All reporting goes through ``conn``: ``("hb", i)`` keeps the lease
    alive, ``("result", i, payload)`` delivers the point, and
    ``("error", i, msg)`` reports an app exception without killing the
    campaign.  A worker that dies without sending anything is exactly
    the failure the lease/retry machinery exists for.
    """
    import threading

    plan = ChaosPlan.parse(chaos_spec) if chaos_spec else None
    fingerprint = spec.fingerprint()
    stalled = plan is not None and plan.decide("stall", index, fingerprint,
                                               attempt)
    send_lock = threading.Lock()
    stop = threading.Event()
    if not stalled:
        # Chaos "stall" suppresses heartbeats too: a hung interpreter
        # does not run helper threads either, and the whole point is to
        # force the coordinator down the lease-expiry path.
        def _beat() -> None:
            while not stop.wait(heartbeat_s):
                try:
                    with send_lock:
                        conn.send(("hb", index))
                except OSError:
                    return

        threading.Thread(target=_beat, daemon=True).start()
    try:
        if stalled:
            time.sleep(_STALL_S)
        payload = _compute_payload(spec, trace, sanitize, profile)
        if plan is not None:
            if plan.decide("fail", index, fingerprint, attempt):
                raise RuntimeError(f"chaos: injected failure at point {index}")
            if plan.decide("kill", index, fingerprint, attempt):
                os.kill(os.getpid(), signal.SIGKILL)
            if plan.decide("drop", index, fingerprint, attempt):
                return      # exit 0 with no result: a dropped message
        with send_lock:
            conn.send(("result", index, payload))
    except BaseException as exc:
        try:
            with send_lock:
                conn.send(("error", index, f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        stop.set()
        conn.close()


class _Task:
    """Coordinator-side state of one leased, in-flight point."""

    __slots__ = ("point", "attempt", "proc", "conn", "started", "last_hb",
                 "result", "error")

    def __init__(self, point: int, attempt: int, proc, conn, now: float):
        self.point = point
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = now
        self.last_hb = now
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None


class QueueExecutor:
    """Durable lease-based executor (``--durable``/``--resume``)."""

    def __init__(self, jobs: int = 1, *, journal_dir,
                 resume: bool = False, max_attempts: int = 3,
                 lease_s: float = 30.0, heartbeat_s: Optional[float] = None,
                 point_timeout: Optional[float] = None,
                 retry_base_s: float = 0.25,
                 chaos: Optional[str] = None,
                 meta: Optional[Dict[str, Any]] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError(f"point_timeout must be > 0, got {point_timeout}")
        self.jobs = jobs
        self.journal_dir = journal_dir
        self.resume = resume
        self.max_attempts = max_attempts
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s if heartbeat_s is not None else lease_s / 4.0
        self.point_timeout = point_timeout
        self.retry_base_s = retry_base_s
        self.chaos = chaos
        #: descriptive header fields (experiment id, scale) journaled so
        #: ``--status`` can label the campaign; never part of identity.
        self.meta = dict(meta) if meta else {}

    # -- retry policy -----------------------------------------------------

    def backoff_s(self, fingerprint: str, attempt: int) -> float:
        """Delay before retrying ``attempt`` (which just failed).

        Exponential in the attempt number with deterministic jitter: the
        jitter is a pure hash of (fingerprint, attempt), so two runs of
        the same campaign schedule retries identically — no RNG state to
        persist, nothing to desynchronize across a resume.
        """
        base = self.retry_base_s * (2.0 ** (attempt - 1))
        digest = hashlib.sha256(
            f"backoff:{fingerprint}:{attempt}".encode()
        ).digest()
        jitter = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + 0.5 * jitter)

    # -- the campaign loop ------------------------------------------------

    def run(self, specs: Sequence[RunSpec], *, trace: bool = False,
            sanitize: bool = False, profile: bool = False) -> ExecutionBatch:
        batch = ExecutionBatch()
        if not specs:
            return batch
        specs = list(specs)
        total = len(specs)
        fingerprint = campaign_fingerprint(specs)
        plan = ChaosPlan.parse(self.chaos) if self.chaos else None
        journal = CampaignJournal.for_campaign(self.journal_dir, fingerprint)

        outputs: List[Optional[Dict[str, Any]]] = [None] * total
        attempts = {i: 0 for i in range(total)}
        quarantined: Dict[int, str] = {}
        replayed = 0

        with journal:
            if self.resume and journal.exists:
                state = journal.replay()
                header = state.header
                if header is not None and (
                        header.get("fp") != fingerprint
                        or header.get("points") != total):
                    raise ExecutorError(
                        f"journal {journal.path} was recorded for a "
                        "different campaign (fingerprint or point count "
                        "mismatch); remove it or run without --resume"
                    )
                for i, point in state.points.items():
                    if not 0 <= i < total:
                        continue
                    attempts[i] = point.attempts
                    if point.status == "done" and not (trace or sanitize
                                                      or profile):
                        outputs[i] = point.output
                        replayed += 1
                    elif point.status == "quarantined":
                        quarantined[i] = point.error or "quarantined"
                journal.append({"e": "resume", "pending": total - replayed
                                - len(quarantined)})
            else:
                if not self.resume:
                    journal.discard()
                journal.append({"e": "campaign", "fp": fingerprint,
                                "points": total,
                                "version": _package_version(),
                                **self.meta})
            pending = [i for i in range(total)
                       if outputs[i] is None and i not in quarantined]
            results = self._drain(specs, pending, attempts, journal, plan,
                                  trace, sanitize, profile, quarantined)

        tracers: List[Any] = []
        findings: List[Dict[str, Any]] = []
        for i in range(total):
            payload = results.get(i)
            if payload is None:
                if trace:
                    batch.tracer_groups.append([])
                if profile:
                    # Quarantined/replayed-missing points contribute no
                    # profile; the merged artifact covers only the
                    # healthy remainder.
                    batch.profiles.append(None)
                continue
            outputs[i] = payload["output"]
            tracers.extend(payload["tracers"])
            if trace:
                batch.tracer_groups.append(list(payload["tracers"]))
            if profile:
                batch.profiles.append(payload["profile"])
            findings.extend(payload["findings"])
            batch.sanitizer_runs += payload["sanitizer_runs"]
        for index, tracer in enumerate(tracers, start=1):
            tracer.run_index = index
        batch.outputs = outputs
        batch.tracers = tracers
        batch.findings = findings
        batch.replayed = replayed
        batch.failures = [
            {"point": i, "app": specs[i].app,
             "fingerprint": specs[i].fingerprint()[:12],
             "attempts": max(attempts[i], 1), "error": quarantined[i]}
            for i in sorted(quarantined)
        ]
        return batch

    def _drain(self, specs, pending, attempts, journal, plan,
               trace, sanitize, profile,
               quarantined) -> Dict[int, Dict[str, Any]]:
        """Run every pending point to done or quarantine; the inner loop."""
        import multiprocessing as mp
        from multiprocessing.connection import wait as conn_wait

        ctx = mp.get_context()
        results: Dict[int, Dict[str, Any]] = {}
        fresh_done = 0
        ready: List[tuple] = []     # (not_before, point, attempt)
        for i in pending:
            heapq.heappush(ready, (0.0, i, attempts[i] + 1))
        inflight: Dict[Any, _Task] = {}

        def launch(point: int, attempt: int) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_queue_worker,
                args=(child_conn, point, specs[point], attempt, trace,
                      sanitize, profile, self.chaos, self.heartbeat_s),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            attempts[point] = attempt
            journal.append({"e": "lease", "p": point, "attempt": attempt,
                            "pid": proc.pid, "lease_s": self.lease_s})
            inflight[parent_conn] = _Task(point, attempt, proc, parent_conn,
                                          time.monotonic())

        def finish(task: _Task) -> None:
            nonlocal fresh_done
            del inflight[task.conn]
            try:
                task.conn.close()
            except OSError:
                pass
            if task.proc.is_alive():
                task.proc.kill()
            task.proc.join(5.0)
            if task.result is not None:
                results[task.point] = task.result
                journal.append({"e": "done", "p": task.point,
                                "attempt": task.attempt,
                                "output": task.result["output"]})
                fresh_done += 1
                if (plan is not None and plan.halt_after is not None
                        and fresh_done >= plan.halt_after):
                    # Chaos "halt": die exactly like a machine reboot
                    # would — mid-campaign, journal intact, no cleanup.
                    os.kill(os.getpid(), signal.SIGKILL)
                return
            error = task.error
            if error is None:
                code = task.proc.exitcode
                if code == 0:
                    error = "worker exited without reporting a result"
                elif code is not None and code < 0:
                    error = (f"worker killed by signal "
                             f"{signal.Signals(-code).name}")
                else:
                    error = f"worker died (exit code {code})"
            journal.append({"e": "failed", "p": task.point,
                            "attempt": task.attempt, "error": error})
            if task.attempt >= self.max_attempts:
                journal.append({"e": "quarantined", "p": task.point,
                                "attempt": task.attempt})
                quarantined[task.point] = error
            else:
                delay = self.backoff_s(specs[task.point].fingerprint(),
                                       task.attempt)
                heapq.heappush(ready, (time.monotonic() + delay, task.point,
                                       task.attempt + 1))

        while ready or inflight:
            now = time.monotonic()
            while (ready and len(inflight) < self.jobs
                   and ready[0][0] <= now):
                _, point, attempt = heapq.heappop(ready)
                launch(point, attempt)
            deadlines = []
            if ready:
                deadlines.append(ready[0][0])
            for task in inflight.values():
                deadlines.append(task.last_hb + self.lease_s)
                if self.point_timeout is not None:
                    deadlines.append(task.started + self.point_timeout)
            now = time.monotonic()
            timeout = min(deadlines) - now if deadlines else 0.05
            timeout = max(0.0, min(timeout, 0.25))
            if inflight:
                for conn in conn_wait(list(inflight), timeout):
                    task = inflight.get(conn)
                    if task is None:
                        continue
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        finish(task)       # worker gone without a result
                        continue
                    kind = message[0]
                    if kind == "hb":
                        task.last_hb = time.monotonic()
                    elif kind == "result":
                        task.result = message[2]
                        finish(task)
                    elif kind == "error":
                        task.error = message[2]
                        finish(task)
            elif timeout > 0:
                time.sleep(timeout)
            now = time.monotonic()
            for task in list(inflight.values()):
                if (self.point_timeout is not None
                        and now - task.started > self.point_timeout):
                    task.error = (f"point timeout: exceeded "
                                  f"{self.point_timeout:g}s wall clock")
                    finish(task)
                elif now - task.last_hb > self.lease_s:
                    task.error = (f"lease expired: no heartbeat for "
                                  f"{self.lease_s:g}s")
                    finish(task)
        return results


def _package_version() -> str:
    from repro._version import __version__

    return __version__
