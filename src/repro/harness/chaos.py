"""Self-chaos plans: deterministic fault injection aimed at the harness.

:mod:`repro.faults` breaks the *simulated* machine; this module turns
the same mindset on the campaign executor itself.  A :class:`ChaosPlan`
is a pure description of what goes wrong around point execution — worker
SIGKILLs, dropped results, stalled workers (lease expiry), injected
exceptions (poison points), corrupted cache entries, and a coordinator
SIGKILL after N completions — parsed from a compact spec grammar
(``--chaos``)::

    kill:point=2[,attempt=1]       worker SIGKILLs itself before reporting
    drop:point=0[,attempt=1]       worker exits 0 without sending a result
    stall:point=3[,attempt=1]      worker hangs with heartbeats suppressed
    fail:point=1[,attempt=K]       worker raises (no attempt= -> poison)
    kill:prob=0.25                 seeded per-(point,attempt) coin instead
    corrupt-cache:point=1          garbage written over the cache entry
    halt:after=2                   coordinator SIGKILLs itself after 2 dones
    seed=7

Clauses are separated by ``;``.  Probabilistic draws hash
``seed:kind:fingerprint:attempt`` — no RNG state, so a decision is a
pure function of the plan and the point, identical across retries of
*other* points, across ``--resume``, and across hosts.  That determinism
is what lets the chaos tests assert byte-identical final reports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import FaultError

__all__ = ["ChaosRule", "ChaosPlan"]

#: Worker-side actions, in the order the worker applies them.
_WORKER_KINDS = ("stall", "fail", "kill", "drop")
_KINDS = _WORKER_KINDS + ("corrupt-cache",)


@dataclass(frozen=True)
class ChaosRule:
    """One injection: ``kind`` hits a point/attempt, or a seeded coin."""

    kind: str
    point: Optional[int] = None    #: executor-local point index filter
    attempt: Optional[int] = None  #: attempt-number filter (None: every)
    prob: Optional[float] = None   #: seeded per-(point,attempt) coin

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultError(
                f"chaos kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if (self.point is None) == (self.prob is None):
            raise FaultError(
                f"chaos {self.kind!r} rule needs exactly one of point= or prob="
            )
        if self.prob is not None and not 0 <= self.prob <= 1:
            raise FaultError(f"probability must be in [0, 1], got {self.prob}")
        if self.point is not None and self.point < 0:
            raise FaultError(f"point index must be >= 0, got {self.point}")
        if self.attempt is not None and self.attempt < 1:
            raise FaultError(f"attempt must be >= 1, got {self.attempt}")


@dataclass(frozen=True)
class ChaosPlan:
    """One campaign's complete, deterministic self-sabotage schedule."""

    rules: Tuple[ChaosRule, ...] = ()
    halt_after: Optional[int] = None   #: coordinator SIGKILL after N dones
    seed: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.rules and self.halt_after is None

    def decide(self, kind: str, point: int, fingerprint: str,
               attempt: int) -> bool:
        """Does ``kind`` strike this (point, attempt)?  Pure function."""
        for rule in self.rules:
            if rule.kind != kind:
                continue
            if rule.attempt is not None and attempt != rule.attempt:
                continue
            if rule.point is not None:
                if rule.point == point:
                    return True
                continue
            digest = hashlib.sha256(
                f"{self.seed}:{kind}:{fingerprint}:{attempt}".encode()
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            if draw < rule.prob:
                return True
        return False

    def corrupt_cache_entries(self, cache, specs) -> int:
        """Overwrite targeted points' cache entries with garbage.

        Exercises the cache's self-healing: a corrupted entry must read
        as a miss and be recomputed, never poison the report.  Returns
        how many entries were clobbered.
        """
        clobbered = 0
        for index, spec in enumerate(specs):
            if not self.decide("corrupt-cache", index, spec.fingerprint(), 1):
                continue
            path = cache.path(spec)
            if path.exists():
                path.write_text("{ \"chaos\": truncated garbag")
                clobbered += 1
        return clobbered

    @staticmethod
    def parse(spec: Union[str, "ChaosPlan", None],
              seed: int = 0) -> "ChaosPlan":
        """Parse the ``--chaos`` spec grammar (see module docstring)."""
        if spec is None:
            return ChaosPlan(seed=seed)
        if isinstance(spec, ChaosPlan):
            return spec
        from repro.faults.plan import _parse_kv, _take_float, _take_int

        rules = []
        halt_after = None
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            head, _, body = clause.partition(":")
            head = head.strip()
            kv = _parse_kv(body, clause)
            if head == "halt":
                halt_after = _take_int(kv, "after", clause)
                if halt_after < 1:
                    raise FaultError(
                        f"halt after= must be >= 1, got {halt_after}"
                    )
            elif head in _KINDS:
                rules.append(ChaosRule(
                    kind=head,
                    point=_take_int(kv, "point", clause, default=None),
                    attempt=_take_int(kv, "attempt", clause, default=None),
                    prob=_take_float(kv, "prob", clause, default=None),
                ))
            else:
                raise FaultError(
                    f"unknown chaos clause {head!r} in {clause!r} "
                    f"(expected {'|'.join(_KINDS)}|halt|seed=N)"
                )
            if kv:
                raise FaultError(
                    f"unknown key(s) {sorted(kv)} in chaos clause {clause!r}"
                )
        return ChaosPlan(rules=tuple(rules), halt_after=halt_after, seed=seed)
