"""Table 2.1 — Platform Characteristics.

Descriptive: prints the two experimental platforms as configured in
:mod:`repro.machine.presets` and checks the structural facts (core/thread
counts, SMT on Lehman only, network generations).
"""

from __future__ import annotations

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.machine.presets import lehman, platform_table, pyramid


def points(scale: str) -> list:
    return []  # descriptive: no simulation points, collate does it all


def collate(scale: str, outputs: list) -> ExperimentResult:
    rows = platform_table()
    result = ExperimentResult(
        experiment_id="t2_1",
        title="Table 2.1 - Platform Characteristics",
        scale=scale,
        rows=rows,
        paper_values=[
            "Lehman: Intel Nehalem, 2 sockets x 4 cores x 2 SMT, 12 nodes, QDR IB",
            "Pyramid: AMD Barcelona, 2 sockets x 4 cores, 128 nodes, DDR IB",
        ],
    )
    fails = result.shape_failures
    le, py = lehman(), pyramid()
    if le.machine.node.pus != 16:
        fails.append("Lehman should expose 16 hardware threads per node")
    if py.machine.node.pus != 8:
        fails.append("Pyramid should expose 8 hardware threads per node")
    if le.machine.node.smt_per_core != 2 or py.machine.node.smt_per_core != 1:
        fails.append("SMT must be 2-way on Lehman and absent on Pyramid")
    if le.default_conduit != "ib-qdr" or py.default_conduit != "ib-ddr":
        fails.append("default conduits must be QDR (Lehman) / DDR (Pyramid)")
    return result


EXPERIMENT = Experiment("t2_1", "Table 2.1 - Platform Characteristics",
                        points, collate)
