"""Table 4.1 — Performance of the STREAM Triad (hybrid placement study).

Pure UPC and pure OpenMP at 8 threads, then UPC×OpenMP at 1×8 / 2×4 / 4×2
on the dual-socket Nehalem node.  Paper finding: the un-bound 1×8
configuration achieves barely more than half the node bandwidth (all
first-touch pages on one socket); properly bound 2×4 and 4×2 match the
pure models.
"""

from __future__ import annotations

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import RunSpec

_PAPER = {
    "upc (8)": 24.5,
    "openmp (8)": 23.7,
    "1*8 (unbound)": 13.9,
    "2*4": 24.7,
    "4*2": 24.7,
}


def _cases(scale: str):
    """(config label, spec) rows, in the table's order."""
    n = 2_000_000 if scale == "paper" else 300_000
    base = dict(scale=scale, preset="lehman", nodes=1)
    for model in ("upc", "openmp"):
        yield f"{model} (8)", RunSpec.make(
            "stream.pure", policy=model, threads=8,
            elements_per_thread=n, **base,
        )
    for upc, omp, bound in ((1, 8, False), (2, 4, True), (4, 2, True)):
        label = f"{upc}*{omp}" + ("" if bound else " (unbound)")
        yield label, RunSpec.make(
            "stream.hybrid", upc_threads=upc, omp_threads=omp,
            bound=bound, total_elements=8 * n, **base,
        )


def points(scale: str) -> list:
    return [spec for _label, spec in _cases(scale)]


def collate(scale: str, outputs: list) -> ExperimentResult:
    measured = {}
    for (label, _spec), r in zip(_cases(scale), outputs):
        measured[label] = r["throughput_gbs"]
    rows = [
        {"Config": k, "Throughput (GB/s)": round(v, 1), "Paper (GB/s)": _PAPER[k]}
        for k, v in measured.items()
    ]
    result = ExperimentResult(
        experiment_id="t4_1",
        title="Table 4.1 - STREAM Triad under hybrid placement",
        scale=scale,
        rows=rows,
        paper_values=[f"{k}: {v} GB/s" for k, v in _PAPER.items()],
    )
    fails = result.shape_failures
    if measured["1*8 (unbound)"] > 0.65 * measured["2*4"]:
        fails.append("un-bound 1*8 should achieve roughly half of bound 2*4")
    if abs(measured["2*4"] - measured["4*2"]) > 0.1 * measured["2*4"]:
        fails.append("bound 2*4 and 4*2 should match")
    for k in ("upc (8)", "openmp (8)", "2*4", "4*2"):
        if not 20 <= measured[k] <= 27:
            fails.append(f"{k}: {measured[k]:.1f} GB/s outside the 20-27 band "
                         f"(paper: {_PAPER[k]})")
    return result


EXPERIMENT = Experiment("t4_1", "Table 4.1 - hybrid STREAM placement",
                        points, collate)
