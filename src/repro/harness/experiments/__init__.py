"""One experiment module per paper table/figure (see DESIGN.md §4)."""
