"""Fig 4.4 — NAS FT runtime performance breakdown.

Per-phase speedup of class B on 8 Lehman nodes, 1→128 threads (128 = two
SMT threads per core).  Paper findings: local compute kernels (evolve,
transpose, 1-D/2-D FFTs) scale essentially perfectly across cores with a
5–30% SMT bump at 128; the all-to-all stops scaling beyond 16 threads
(2 per node); the overlap variant's communication beats split-phase.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import Sweep, threads_per_node

_PHASES = ("evolve", "transpose", "fft1d", "fft2d")
_NODES = 8


def _params(scale: str):
    if scale == "paper":
        return (1, 2, 4, 8, 16, 32, 64, 128), 5
    return (1, 2, 4, 8, 16, 32), 2


def points(scale: str) -> list:
    thread_counts, iterations = _params(scale)
    return (
        Sweep("ft", scale=scale, preset="lehman", nodes=_NODES, clazz="B",
              model="upc", backing="virtual", iterations=iterations)
        .over("threads", thread_counts)
        .over("variant", ("split", "overlap"))
        .derive(lambda s: {
            "threads_per_node": threads_per_node(s.threads, _NODES)})
        .build()
    )


def collate(scale: str, outputs: list) -> ExperimentResult:
    thread_counts, _iterations = _params(scale)
    by_key = {(spec.threads, spec.extra("variant")): out
              for spec, out in zip(points(scale), outputs)}
    base: Dict[str, float] = {}
    series: Dict[str, Dict] = {p: {} for p in _PHASES}
    series["alltoall (split)"] = {}
    series["alltoall (overlap)"] = {}
    for threads in thread_counts:
        split = by_key[(threads, "split")]
        over = by_key[(threads, "overlap")]
        if threads == thread_counts[0]:
            for p in _PHASES:
                base[p] = split["phases"][p]
        for p in _PHASES:
            series[p][threads] = round(base[p] / split["phases"][p], 2)
        # A single thread exchanges nothing; anchor BOTH all-to-all curves
        # on split-phase at the first communicating count (speedup = T0
        # there, the ideal-line convention), so the overlap curve's height
        # directly reads as "communication hidden by overlap".
        t_split = split["phases"]["alltoall"]
        t_over = over["phases"]["alltoall"]
        if t_split > 0:
            if "alltoall" not in base:
                base["alltoall"] = t_split * threads
            series["alltoall (split)"][threads] = round(base["alltoall"] / t_split, 2)
            if t_over > 0:
                series["alltoall (overlap)"][threads] = round(
                    base["alltoall"] / t_over, 2
                )
    result = ExperimentResult(
        experiment_id="f4_4",
        title="Fig 4.4 - NAS FT per-phase speedup (class B, 8 nodes)",
        scale=scale,
        series=series,
        x_label="threads",
        paper_values=[
            "compute kernels scale ~linearly across all cores",
            "all-to-all does not scale beyond 16 threads (2 per node)",
            "SMT (128 threads) adds only 5-30% to compute kernels",
        ],
    )
    fails = result.shape_failures
    top = thread_counts[-1]
    ncores = min(top, 64) if scale == "paper" else top
    for p in ("fft1d", "fft2d"):
        sp = series[p][ncores]
        if sp < 0.8 * ncores:
            fails.append(f"{p} speedup {sp} at {ncores} threads is sub-linear "
                         "(paper: near-perfect)")
    for p in ("evolve", "transpose"):
        # memory-bound phases saturate at socket bandwidth at full density
        sp = series[p][ncores]
        if sp < 0.4 * ncores:
            fails.append(f"{p} speedup {sp} at {ncores} threads too low")
    a2a = series["alltoall (split)"]
    knee = max(k for k in a2a if k <= _NODES * 2)
    if a2a[top] > 1.6 * a2a[knee]:
        fails.append("all-to-all should saturate near 2 threads/node")
    over = series["alltoall (overlap)"]
    if over[top] <= a2a[top]:
        fails.append("overlap should hide communication that split exposes")
    if scale == "paper":
        smt = series["fft2d"][128] / series["fft2d"][64]
        if not 1.0 <= smt <= 1.35:
            fails.append(f"SMT bump {smt:.2f}x outside the 1.0-1.35 band")
    return result


EXPERIMENT = Experiment("f4_4", "Fig 4.4 - FT runtime breakdown",
                        points, collate)
