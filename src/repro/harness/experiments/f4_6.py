"""Fig 4.6 — NAS FT class B overall performance.

Panels (a)/(b): performance of each threading model relative to pure
process-based UPC at matched total core counts, for the split-phase and
overlap implementations.  Panels (c)/(d): scalability (speedup over one
thread).  Paper findings: hybrid sub-threads average ~10% over processes
at 64 threads and ~30% at 128 (SMT); OpenMP is the best sub-thread
runtime, the in-house pool second, Cilk++ worst; pthreads match the
hybrids but scale worse; ``8*n`` configurations decay (one socket/node).
"""

from __future__ import annotations

from typing import Dict

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import RunSpec, threads_per_node

_NODES = 8


def _params(scale: str):
    if scale == "paper":
        return ((8, 16, 32, 64, 128), ("split", "overlap"),
                ("processes", "pthreads", "openmp", "cilk", "pool"), 10)
    return ((8, 16, 32, 64), ("split",),
            ("processes", "pthreads", "openmp", "cilk", "pool"), 3)


def _spec(variant: str, flavor: str, cores: int, iterations: int,
          scale: str) -> RunSpec:
    tpn = threads_per_node(cores, _NODES)
    base = dict(scale=scale, preset="lehman", nodes=_NODES, clazz="B",
                model="upc", variant=variant, backing="virtual",
                iterations=iterations)
    if flavor == "processes":
        return RunSpec.make("ft", threads=cores, threads_per_node=tpn, **base)
    if flavor == "pthreads":
        return RunSpec.make("ft", threads=cores, threads_per_node=tpn,
                            threads_per_process=tpn, **base)
    if flavor in ("openmp", "cilk", "pool"):
        masters_per_node = min(2, tpn)
        omp = max(1, tpn // masters_per_node)
        return RunSpec.make("ft", threads=_NODES * masters_per_node,
                            threads_per_node=masters_per_node,
                            omp_threads=omp, subthread_runtime=flavor, **base)
    raise ValueError(flavor)


def _cases(scale: str):
    """((variant, flavor, cores), spec); cores=1 rows are the speedup base."""
    core_counts, variants, flavors, iterations = _params(scale)
    for variant in variants:
        for flavor in flavors:
            for cores in core_counts:
                yield (variant, flavor, cores), _spec(
                    variant, flavor, cores, iterations, scale)
        yield (variant, "processes", 1), _spec(
            variant, "processes", 1, iterations, scale)


def points(scale: str) -> list:
    return [spec for _key, spec in _cases(scale)]


def collate(scale: str, outputs: list) -> ExperimentResult:
    core_counts, variants, flavors, _iterations = _params(scale)
    elapsed: Dict[tuple, float] = {}
    for (key, _spec_), r in zip(_cases(scale), outputs):
        elapsed[key] = r["elapsed_s"]
    series: Dict[str, Dict] = {}
    rows = []
    for variant in variants:
        base1 = elapsed[(variant, "processes", 1)]
        for flavor in flavors:
            key = f"{variant}:{flavor}"
            series[key] = {
                cores: round(base1 / elapsed[(variant, flavor, cores)], 1)
                for cores in core_counts
            }
        for cores in core_counts:
            proc = elapsed[(variant, "processes", cores)]
            for flavor in flavors:
                if flavor == "processes":
                    continue
                gain = 100.0 * (proc / elapsed[(variant, flavor, cores)] - 1.0)
                rows.append({
                    "Variant": variant,
                    "Cores": cores,
                    "Flavor": flavor,
                    "Improvement over processes %": round(gain, 1),
                })
    result = ExperimentResult(
        experiment_id="f4_6",
        title="Fig 4.6 - NAS FT class B overall performance",
        scale=scale,
        rows=rows,
        series=series,
        x_label="cores",
        paper_values=[
            "hybrids average ~10% over processes at 64 threads, ~30% at 128",
            "OpenMP best sub-thread runtime; thread pool second; Cilk++ worst",
            "pthreads comparable to hybrids but scale worse with SMT",
        ],
    )
    fails = result.shape_failures
    top = core_counts[-1]
    for variant in variants:
        t = {f: elapsed[(variant, f, top)] for f in flavors}
        # the hybrid advantage appears at full node density (>= 8/node),
        # where process-per-core NIC contention bites (paper: ~10% at 64)
        if top >= _NODES * 8 and t["openmp"] > t["processes"]:
            fails.append(f"{variant}: OpenMP hybrid should beat processes at "
                         f"{top} cores")
        if not t["openmp"] <= t["pool"] <= t["cilk"] * 1.02:
            fails.append(f"{variant}: expected OpenMP <= pool <= Cilk ordering "
                         f"(got {t['openmp']:.2f}/{t['pool']:.2f}/{t['cilk']:.2f})")
        if scale == "paper":
            gain128 = 100.0 * (t["processes"] / t["openmp"] - 1.0)
            if gain128 < 10:
                fails.append(f"{variant}: hybrid gain at 128 threads "
                             f"{gain128:.0f}% (paper: ~30%)")
    return result


EXPERIMENT = Experiment("f4_6", "Fig 4.6 - FT overall performance",
                        points, collate)
