"""Table 3.2 — Profiling Results of UTS.

Fixed node count, growing threads-per-node; for each network the
baseline's and the optimized (local + rapid diffusion) policy's overall
time and local-steal percentage.  The paper reports local-steal shares of
36–72% (baseline) and 58–91% (optimized); our baseline's share is lower
(uniform random victims make a local hit a 1-in-(T-1) event — see
EXPERIMENTS.md), but the two findings under test are directional: the
optimization raises the local share and the gain grows with the number of
local workers.
"""

from __future__ import annotations

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import Sweep

_PAPER = [
    "IB 32/2: +3.4% overall, local steals 36.2% -> 59.0%",
    "IB 64/4: +7.1% overall, local steals 58.1% -> 82.9%",
    "IB 128/8: +11.2% overall, local steals 72.2% -> 90.9%",
    "Eth 32/2: +49.4% overall, local steals 18.2% -> 57.8%",
    "Eth 64/4: +66.5% overall, local steals 40.5% -> 81.1%",
    "Eth 128/8: +99.5% overall, local steals 58.1% -> 89.7%",
]


def _params(scale: str):
    if scale == "paper":
        return "paper", [(32, 2), (64, 4), (128, 8)], 16
    return "medium", [(16, 2), (32, 4), (64, 8)], 8


def points(scale: str) -> list:
    tree, configs, nodes = _params(scale)
    return (
        Sweep("uts", scale=scale, preset="pyramid", nodes=nodes, tree=tree)
        .over("net", [{"conduit": "ib-ddr", "steal_chunk": 8},
                      {"conduit": "gige", "steal_chunk": 20}])
        .over("shape", [{"threads": t, "threads_per_node": tpn}
                        for t, tpn in configs])
        .over("policy", ("baseline", "local+diffusion"))
        .build()
    )


def collate(scale: str, outputs: list) -> ExperimentResult:
    specs = points(scale)
    by_spec = dict(zip(specs, outputs))
    rows = []
    for spec in specs:
        if spec.policy != "baseline":
            continue
        base = by_spec[spec]
        opt = by_spec[spec.with_updates(policy="local+diffusion")]
        improvement = 100.0 * (base["elapsed_s"] / opt["elapsed_s"] - 1.0)
        rows.append({
            "Config": f"{spec.conduit} {spec.threads}/{spec.threads_per_node}",
            "Overall improvement %": round(improvement, 1),
            "% local (baseline)": round(base["pct_local_steals"], 1),
            "% local (optimized)": round(opt["pct_local_steals"], 1),
        })
    result = ExperimentResult(
        experiment_id="t3_2",
        title="Table 3.2 - Profiling Results of UTS",
        scale=scale,
        rows=rows,
        paper_values=_PAPER,
        notes=["baseline local-steal %: our uniform-random victim selection "
               "yields ~(tpn-1)/(T-1); the paper's baseline profile is higher "
               "(see EXPERIMENTS.md)"],
    )
    fails = result.shape_failures
    by_net = {"ib-ddr": [], "gige": []}
    for row in rows:
        net = row["Config"].split()[0]
        by_net[net].append(row)
    for net, net_rows in by_net.items():
        for row in net_rows:
            if row["% local (optimized)"] <= row["% local (baseline)"]:
                fails.append(f"{row['Config']}: optimization did not raise "
                             "the local-steal share")
        locals_opt = [r["% local (optimized)"] for r in net_rows]
        if locals_opt != sorted(locals_opt):
            fails.append(f"{net}: optimized local share should grow with "
                         "threads-per-node")
        if net_rows[-1]["Overall improvement %"] <= 0:
            fails.append(f"{net}: optimization should win at the largest config")
    eth_gain = by_net["gige"][-1]["Overall improvement %"]
    ib_gain = by_net["ib-ddr"][-1]["Overall improvement %"]
    if eth_gain <= 0 or ib_gain <= 0:
        fails.append("both networks should benefit at the largest config")
    return result


EXPERIMENT = Experiment("t3_2", "Table 3.2 - UTS profiling", points, collate)
