"""R1 — UTS completed work under injected faults (extension study).

Not a paper artifact: the thesis assumes a fail-free cluster.  This
experiment exercises the fault-injection layer (``repro.faults``) on the
UTS work-stealing benchmark and reports how much of the tree each
scenario completes, alongside the retry/recovery counters.  Scenarios:

* ``none``      — empty fault plan; must match the fault-free run exactly.
* ``lossy``     — per-message loss + corruption; the GASNet retransmit
  layer must recover to full completion (fraction 1.0).
* ``degraded``  — a mid-run NIC slowdown window; full completion, slower.
* ``crash``     — one node fail-stops mid-run; survivors must finish the
  reachable work without hanging (degraded-mode termination).

Pass ``--faults`` to override the ``crash`` scenario's plan with your own
spec (see ``FaultPlan.parse``).
"""

from __future__ import annotations

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import RunSpec

_SCENARIOS = [
    ("none", ""),
    ("lossy", "loss:prob=0.05;corrupt:prob=0.05;seed=11"),
    ("degraded", "degrade:node=0,start=0,end=1,factor=0.25;seed=11"),
    ("crash", "crash:node=3,at=3e-5;seed=11"),
]


def _params(scale: str):
    if scale == "paper":
        return "medium", 32, 4, 8
    return "small", 16, 4, 4


def _cases(scale: str, faults=None):
    tree, threads, tpn, nodes = _params(scale)
    scenarios = list(_SCENARIOS)
    if faults:
        scenarios = [(n, s) for n, s in scenarios if n != "crash"]
        scenarios.append(("custom", faults))
    for name, spec_string in scenarios:
        yield name, RunSpec.make(
            "uts", scale=scale, policy="local", preset="pyramid",
            nodes=nodes, threads=threads, threads_per_node=tpn,
            tree=tree, faults=spec_string or None,
        )


def points(scale: str, faults=None) -> list:
    return [spec for _name, spec in _cases(scale, faults)]


def collate(scale: str, outputs: list, faults=None) -> ExperimentResult:
    rows = []
    results = {}
    for (name, _spec), res in zip(_cases(scale, faults), outputs):
        results[name] = res
        rows.append({
            "Scenario": name,
            "Completed %": round(100.0 * (res["completed_fraction"] or 0), 1),
            "Threads lost": res["threads_lost"],
            "Tree nodes lost": res["nodes_lost"],
            "Timeouts": res["gasnet_timeouts"],
            "Retransmits": res["gasnet_retransmits"],
            "Msgs lost": res["net_messages_lost"],
            "Victims blacklisted": res["victims_blacklisted"],
            "Elapsed s": res["elapsed_s"],
        })
    result = ExperimentResult(
        experiment_id="r1",
        title="R1 - UTS completed work under injected faults",
        scale=scale,
        rows=rows,
        notes=["extension study, not a thesis artifact: the paper assumes "
               "a fail-free cluster (see DESIGN.md, Fault model)"],
    )
    fails = result.shape_failures
    clean, lossy = results["none"], results["lossy"]
    if clean["completed_fraction"] != 1.0 or clean["threads_lost"]:
        fails.append("fault-free scenario must complete the whole tree")
    if lossy["completed_fraction"] != 1.0:
        fails.append("retransmit layer should recover lossy links to 100%")
    if lossy["gasnet_retransmits"] <= 0:
        fails.append("lossy scenario should exercise retransmits")
    degraded = results["degraded"]
    if degraded["completed_fraction"] != 1.0:
        fails.append("degradation (no loss) should still complete 100%")
    if degraded["elapsed_s"] <= clean["elapsed_s"]:
        fails.append("NIC degradation window should slow the run down")
    crash = results.get("crash")
    if crash is not None:
        if crash["threads_lost"] <= 0:
            fails.append("crash scenario should lose threads")
        if not 0 < (crash["completed_fraction"] or 0) <= 1.0:
            fails.append("crashed run should complete a nonzero fraction")
    return result


EXPERIMENT = Experiment("r1", "R1 - UTS under injected faults",
                        points, collate, accepts_faults=True)
