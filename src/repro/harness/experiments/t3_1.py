"""Table 3.1 — Performance of the Twisted STREAM Triad.

8 threads on a dual-socket Nehalem node with thread binding; four
variants expose the shared-pointer translation cost and its cures.
"""

from __future__ import annotations

from repro.apps.stream import TWISTED_VARIANTS
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import Sweep

_PAPER = {
    "upc-baseline": 3.2,
    "upc-relocalization": 7.2,
    "upc-cast": 23.2,
    "openmp": 23.4,
}


def points(scale: str) -> list:
    elements = 2_000_000 if scale == "paper" else 300_000
    return (
        Sweep("stream.twisted", scale=scale, preset="lehman", nodes=1,
              threads=8, elements_per_thread=elements)
        .over("policy", TWISTED_VARIANTS)
        .build()
    )


def collate(scale: str, outputs: list) -> ExperimentResult:
    rows = []
    measured = {}
    for variant, r in zip(TWISTED_VARIANTS, outputs):
        measured[variant] = r["throughput_gbs"]
        rows.append({
            "Variant": variant,
            "Throughput (GB/s)": round(r["throughput_gbs"], 1),
            "Paper (GB/s)": _PAPER[variant],
        })
    result = ExperimentResult(
        experiment_id="t3_1",
        title="Table 3.1 - Twisted STREAM Triad throughput",
        scale=scale,
        rows=rows,
        paper_values=[f"{v}: {p} GB/s" for v, p in _PAPER.items()],
        notes=["re-localization lands above the paper's 7.2 GB/s because the "
               "model charges only the extra copy traffic, not the original "
               "code's strided relocation pattern"],
    )
    fails = result.shape_failures
    if not (measured["upc-baseline"]
            < measured["upc-relocalization"]
            < measured["upc-cast"]):
        fails.append("expected baseline < re-localization < cast")
    if abs(measured["upc-cast"] - measured["openmp"]) > 0.1 * measured["openmp"]:
        fails.append("cast should match OpenMP within 10%")
    ratio = measured["upc-cast"] / measured["upc-baseline"]
    if not 4 <= ratio <= 10:
        fails.append(f"cast/baseline speedup {ratio:.1f}x outside the 4-10x band "
                     "(paper: ~7x)")
    if not 2.5 <= measured["upc-baseline"] <= 4.5:
        fails.append(f"baseline {measured['upc-baseline']:.1f} GB/s outside "
                     "2.5-4.5 (paper: 3.2)")
    return result


EXPERIMENT = Experiment("t3_1", "Table 3.1 - Twisted STREAM Triad",
                        points, collate)
