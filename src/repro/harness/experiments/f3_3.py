"""Fig 3.3 — Parallel scalability of UTS on 16 cluster nodes.

Three policy variants over InfiniBand and Ethernet, 16→128 processors,
throughput in millions of tree nodes per second.  Paper findings: the
optimized variants consistently beat the baseline on both networks, the
Ethernet gain is proportionally larger (up to ~2×), and throughput keeps
rising to 128 processors.
"""

from __future__ import annotations

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import Sweep, threads_per_node

_POLICIES = ("baseline", "local", "local+diffusion")
_NODES = 16


def _params(scale: str):
    if scale == "paper":
        return "paper", (16, 32, 64, 128)
    return "large", (16, 32, 64)


def points(scale: str) -> list:
    tree, thread_counts = _params(scale)
    return (
        Sweep("uts", scale=scale, preset="pyramid", nodes=_NODES, tree=tree)
        .over("net", [{"conduit": "ib-ddr", "steal_chunk": 8},
                      {"conduit": "gige", "steal_chunk": 20}])
        .over("policy", _POLICIES)
        .over("threads", thread_counts)
        .derive(lambda s: {
            "threads_per_node": threads_per_node(s.threads, _NODES)})
        .build()
    )


def collate(scale: str, outputs: list) -> ExperimentResult:
    _tree, thread_counts = _params(scale)
    series: dict = {}
    for spec, r in zip(points(scale), outputs):
        key = f"{spec.conduit}:{spec.policy}"
        series.setdefault(key, {})[spec.threads] = round(r["mnodes_per_s"], 1)
    result = ExperimentResult(
        experiment_id="f3_3",
        title="Fig 3.3 - UTS parallel scalability (Mnodes/s)",
        scale=scale,
        series=series,
        x_label="threads",
        paper_values=[
            "IB, 128 procs: baseline ~100+, optimized ~230 Mnodes/s",
            "Ethernet gains up to 2x from the optimizations",
            "optimized variants consistently outperform the baseline",
        ],
    )
    fails = result.shape_failures
    top = thread_counts[-1]
    for conduit in ("ib-ddr", "gige"):
        base = series[f"{conduit}:baseline"]
        opt = series[f"{conduit}:local+diffusion"]
        if opt[top] <= base[top]:
            fails.append(f"{conduit}: optimized should beat baseline at {top}")
        if opt[top] <= opt[thread_counts[0]]:
            fails.append(f"{conduit}: optimized should scale {thread_counts[0]}"
                         f"->{top}")
    eth_ratio = (series["gige:local+diffusion"][top]
                 / series["gige:baseline"][top])
    ib_ratio = (series["ib-ddr:local+diffusion"][top]
                / series["ib-ddr:baseline"][top])
    if eth_ratio < 1.2:
        fails.append(f"Ethernet gain {eth_ratio:.2f}x too small (paper: up to 2x)")
    if ib_ratio < 1.1:
        fails.append(f"InfiniBand gain {ib_ratio:.2f}x too small")
    return result


EXPERIMENT = Experiment("f3_3", "Fig 3.3 - UTS scalability", points, collate)
