"""Fig 3.4 — NAS FT class-B all-to-all: runtime vs manual optimizations.

On 4 cluster nodes, the exchange step under five settings: the
process-without-PSHM baseline, PSHM, PSHM+cast, pthreads, pthreads+cast —
for blocking (a) and non-blocking (b) memory copies.  Paper findings:
~20% average gain of the manual cast over baseline, *no* difference
between runtime optimization (PSHM/pthreads) and the manual cast, and
improvements growing with threads per node.
"""

from __future__ import annotations

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import RunSpec

_VARIANTS = (
    ("base", dict(pshm=False, threads_per_process=1, privatized=False)),
    ("pshm", dict(pshm=True, threads_per_process=1, privatized=False)),
    ("pshm+cast", dict(pshm=True, threads_per_process=1, privatized=True)),
    ("pthreads", dict(pshm=False, privatized=False)),           # tpp set below
    ("pthreads+cast", dict(pshm=False, privatized=True)),
)

_NODES = 4


def _params(scale: str):
    if scale == "paper":
        return (4, 8, 16, 32, 64), 3
    return (4, 8, 16), 1


def _cases(scale: str):
    """(threads, asynchronous, variant name, spec), in sweep order."""
    thread_counts, repeats = _params(scale)
    for threads in thread_counts:
        tpn = threads // _NODES
        for asynchronous in (False, True):
            for name, kw in _VARIANTS:
                kw = dict(kw)
                if name.startswith("pthreads"):
                    if tpn < 2:
                        continue  # pthreads needs >1 thread per process
                    kw["threads_per_process"] = tpn
                spec = RunSpec.make(
                    "ft.exchange", scale=scale, preset="lehman", nodes=_NODES,
                    threads=threads, threads_per_node=tpn, clazz="B",
                    asynchronous=asynchronous, repeats=repeats,
                    variant=name, **kw,
                )
                yield threads, asynchronous, name, spec


def points(scale: str) -> list:
    return [spec for *_meta, spec in _cases(scale)]


def collate(scale: str, outputs: list) -> ExperimentResult:
    thread_counts, _repeats = _params(scale)
    times: dict = {}
    for (threads, asynchronous, name, _spec), r in zip(_cases(scale), outputs):
        times[(threads, name, asynchronous)] = r["exchange_s"]
    rows = []
    improvement: dict = {name: {} for name, _ in _VARIANTS if name != "base"}
    for threads in thread_counts:
        for asynchronous in (False, True):
            base = times.get((threads, "base", asynchronous))
            for name, _kw in _VARIANTS:
                t = times.get((threads, name, asynchronous))
                if t is None or name == "base":
                    continue
                gain = 100.0 * (base / t - 1.0)
                rows.append({
                    "Threads": f"{threads}({_NODES}x{threads // _NODES})",
                    "Mode": "async" if asynchronous else "blocking",
                    "Variant": name,
                    "Exchange (s)": round(t, 4),
                    "Improvement over base %": round(gain, 1),
                })
                if not asynchronous:
                    improvement[name][threads] = gain
    result = ExperimentResult(
        experiment_id="f3_4",
        title="Fig 3.4 - FT all-to-all with runtime vs manual optimizations",
        scale=scale,
        rows=rows,
        paper_values=[
            "manual cast averages ~20% over baseline (blocking and async)",
            "PSHM/pthreads runtime path == manual cast (no difference)",
            "improvement grows with threads per node (up to ~120%)",
        ],
        notes=["at low threads-per-node the pthreads backend can lose to the "
               "baseline: one shared connection caps inter-node bandwidth "
               "before the shared-memory win on intra-node pairs kicks in "
               "(the Fig 4.2 trade-off); at full density it recovers"],
    )
    fails = result.shape_failures
    top = thread_counts[-1]
    if improvement["pshm"].get(top, 0) <= 0:
        fails.append("PSHM should beat the no-PSHM baseline at high density")
    for t, gain_cast in improvement["pshm+cast"].items():
        gain_pshm = improvement["pshm"][t]
        base = max(abs(gain_pshm), 5.0)
        if abs(gain_cast - gain_pshm) > 0.30 * base:
            fails.append(
                f"at {t} threads cast ({gain_cast:.0f}%) should match the "
                f"PSHM runtime path ({gain_pshm:.0f}%)"
            )
    gains = [improvement["pshm"][t] for t in thread_counts]
    if gains[-1] <= gains[0]:
        fails.append("PSHM gain should grow with thread count")
    return result


EXPERIMENT = Experiment("f3_4", "Fig 3.4 - FT all-to-all optimizations",
                        points, collate)
