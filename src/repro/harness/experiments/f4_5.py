"""Fig 4.5 — Time in communication calls, split-phase NAS FT class B.

MPI vs UPC processes vs UPC pthreads vs hierarchical UPC×threads, on
Lehman (8 nodes) and Pyramid (16 nodes), from 1 to 8(+SMT) cores/node.
Paper findings: the all-to-all stops scaling past 2 threads/node for every
model; pthreads UPC strong-scales better than processes (but still
degrades); the hierarchical sub-thread hybrid has the lowest
communication time at full node counts; MPI's tuned collectives beat the
UPC point-to-point exchanges but also degrade past 2 cores/node.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import RunSpec, threads_per_node

_MODELS = ("mpi", "upc-processes", "upc-pthreads", "upc-hybrid")


def _params(scale: str):
    if scale == "paper":
        return [("Lehman", "lehman", 8, (8, 16, 32, 64, 128)),
                ("Pyramid", "pyramid", 16, (16, 32, 64, 128))], 20
    return [("Lehman", "lehman", 8, (8, 16, 32))], 5


def _spec(model: str, cores: int, preset: str, nodes: int,
          iterations: int, scale: str) -> RunSpec:
    tpn = threads_per_node(cores, nodes)
    base = dict(scale=scale, preset=preset, nodes=nodes, clazz="B",
                backing="virtual", iterations=iterations)
    if model == "mpi":
        return RunSpec.make("ft", model="mpi", threads=cores,
                            threads_per_node=tpn, **base)
    if model == "upc-processes":
        return RunSpec.make("ft", model="upc", variant="split", threads=cores,
                            threads_per_node=tpn, **base)
    if model == "upc-pthreads":
        return RunSpec.make("ft", model="upc", variant="split", threads=cores,
                            threads_per_node=tpn, threads_per_process=tpn,
                            **base)
    if model == "upc-hybrid":
        # best-practice hybrid: 2 masters per node, sub-threads fill the rest
        masters_per_node = min(2, tpn)
        omp = max(1, tpn // masters_per_node)
        return RunSpec.make("ft", model="upc", variant="split",
                            threads=nodes * masters_per_node,
                            threads_per_node=masters_per_node,
                            omp_threads=omp, **base)
    raise ValueError(model)


def _cases(scale: str):
    platforms, iterations = _params(scale)
    for plat_name, preset, nodes, core_counts in platforms:
        for model in _MODELS:
            for cores in core_counts:
                yield plat_name, model, cores, _spec(
                    model, cores, preset, nodes, iterations, scale)


def points(scale: str) -> list:
    return [spec for *_meta, spec in _cases(scale)]


def collate(scale: str, outputs: list) -> ExperimentResult:
    platforms, _iterations = _params(scale)
    series: Dict[str, Dict] = {}
    for (plat_name, model, cores, _spec_), r in zip(_cases(scale), outputs):
        series.setdefault(f"{plat_name}:{model}", {})[cores] = round(
            r["comm_s"], 3
        )
    result = ExperimentResult(
        experiment_id="f4_5",
        title="Fig 4.5 - FT split-phase communication time (s)",
        scale=scale,
        series=series,
        x_label="cores",
        paper_values=[
            "no model scales the all-to-all past 2 threads/node (~0.5-1.2 s)",
            "hybrid sub-threads have the lowest comm time at full nodes",
            "MPI < UPC processes at high density; pthreads degrade least",
        ],
    )
    fails = result.shape_failures
    for plat_name, _preset, nodes, core_counts in platforms:
        top = core_counts[-1]
        knee = nodes * 2
        proc = series[f"{plat_name}:upc-processes"]
        if knee in proc and proc[top] < proc[knee]:
            fails.append(f"{plat_name}: UPC processes should not keep scaling "
                         f"past 2 threads/node")
        hybrid = series[f"{plat_name}:upc-hybrid"][top]
        if hybrid > proc[top]:
            fails.append(f"{plat_name}: hybrid comm should beat processes at "
                         f"{top} cores")
        mpi = series[f"{plat_name}:mpi"][top]
        if mpi > proc[top] * 1.05:
            fails.append(f"{plat_name}: MPI should not lose to UPC processes "
                         f"at {top} cores")
        # "pthreads realize stronger strong scaling": their curve is flat
        # while processes decay from the 2/node knee — compare slopes,
        # not endpoints (at the very top they nearly converge).
        pthr = series[f"{plat_name}:upc-pthreads"]
        if knee in proc and knee in pthr:
            proc_degradation = proc[top] / proc[knee]
            pthr_degradation = pthr[top] / pthr[knee]
            if top >= nodes * 8 and pthr_degradation > proc_degradation:
                fails.append(f"{plat_name}: pthreads should degrade less than "
                             f"processes from the 2/node knee")
    return result


EXPERIMENT = Experiment("f4_5", "Fig 4.5 - FT communication time",
                        points, collate)
