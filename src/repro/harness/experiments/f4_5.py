"""Fig 4.5 — Time in communication calls, split-phase NAS FT class B.

MPI vs UPC processes vs UPC pthreads vs hierarchical UPC×threads, on
Lehman (8 nodes) and Pyramid (16 nodes), from 1 to 8(+SMT) cores/node.
Paper findings: the all-to-all stops scaling past 2 threads/node for every
model; pthreads UPC strong-scales better than processes (but still
degrades); the hierarchical sub-thread hybrid has the lowest
communication time at full node counts; MPI's tuned collectives beat the
UPC point-to-point exchanges but also degrade past 2 cores/node.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.ft import run_ft
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.machine.presets import lehman, pyramid

_MODELS = ("mpi", "upc-processes", "upc-pthreads", "upc-hybrid")


def _comm_time(model: str, cores: int, nodes: int, preset, iterations: int) -> float:
    tpn = max(1, cores // nodes)
    if model == "mpi":
        r = run_ft("B", model="mpi", threads=cores, threads_per_node=tpn,
                   preset=preset, backing="virtual", iterations=iterations)
    elif model == "upc-processes":
        r = run_ft("B", model="upc", variant="split", threads=cores,
                   threads_per_node=tpn, preset=preset, backing="virtual",
                   iterations=iterations)
    elif model == "upc-pthreads":
        r = run_ft("B", model="upc", variant="split", threads=cores,
                   threads_per_node=tpn, threads_per_process=tpn,
                   preset=preset, backing="virtual", iterations=iterations)
    elif model == "upc-hybrid":
        # best-practice hybrid: 2 masters per node, sub-threads fill the rest
        masters_per_node = min(2, tpn)
        omp = max(1, tpn // masters_per_node)
        r = run_ft("B", model="upc", variant="split",
                   threads=nodes * masters_per_node,
                   threads_per_node=masters_per_node, omp_threads=omp,
                   preset=preset, backing="virtual", iterations=iterations)
    else:
        raise ValueError(model)
    return r["comm_s"]


def run(scale: str) -> ExperimentResult:
    if scale == "paper":
        platforms = [("Lehman", lehman(nodes=8), 8, (8, 16, 32, 64, 128)),
                     ("Pyramid", pyramid(nodes=16), 16, (16, 32, 64, 128))]
        iterations = 20
    else:
        platforms = [("Lehman", lehman(nodes=8), 8, (8, 16, 32))]
        iterations = 5
    series: Dict[str, Dict] = {}
    for plat_name, preset, nodes, core_counts in platforms:
        for model in _MODELS:
            key = f"{plat_name}:{model}"
            series[key] = {}
            for cores in core_counts:
                series[key][cores] = round(
                    _comm_time(model, cores, nodes, preset, iterations), 3
                )
    result = ExperimentResult(
        experiment_id="f4_5",
        title="Fig 4.5 - FT split-phase communication time (s)",
        scale=scale,
        series=series,
        x_label="cores",
        paper_values=[
            "no model scales the all-to-all past 2 threads/node (~0.5-1.2 s)",
            "hybrid sub-threads have the lowest comm time at full nodes",
            "MPI < UPC processes at high density; pthreads degrade least",
        ],
    )
    fails = result.shape_failures
    for plat_name, _preset, nodes, core_counts in platforms:
        top = core_counts[-1]
        knee = nodes * 2
        proc = series[f"{plat_name}:upc-processes"]
        if knee in proc and proc[top] < proc[knee]:
            fails.append(f"{plat_name}: UPC processes should not keep scaling "
                         f"past 2 threads/node")
        hybrid = series[f"{plat_name}:upc-hybrid"][top]
        if hybrid > proc[top]:
            fails.append(f"{plat_name}: hybrid comm should beat processes at "
                         f"{top} cores")
        mpi = series[f"{plat_name}:mpi"][top]
        if mpi > proc[top] * 1.05:
            fails.append(f"{plat_name}: MPI should not lose to UPC processes "
                         f"at {top} cores")
        # "pthreads realize stronger strong scaling": their curve is flat
        # while processes decay from the 2/node knee — compare slopes,
        # not endpoints (at the very top they nearly converge).
        pthr = series[f"{plat_name}:upc-pthreads"]
        if knee in proc and knee in pthr:
            proc_degradation = proc[top] / proc[knee]
            pthr_degradation = pthr[top] / pthr[knee]
            if top >= nodes * 8 and pthr_degradation > proc_degradation:
                fails.append(f"{plat_name}: pthreads should degrade less than "
                             f"processes from the 2/node knee")
    return result


EXPERIMENT = Experiment("f4_5", "Fig 4.5 - FT communication time", run)
