"""Fig 4.2 — Multi-link network microbenchmark.

Two QDR-connected nodes, 1–8 link pairs, processes vs pthreads:
round-trip latency (a) and unidirectional flood bandwidth (b).
Paper findings: more pairs → more aggregate bandwidth (to the NIC limit)
but also higher latency; pthread pairs (one shared connection) extract
less bandwidth and their latency serializes.
"""

from __future__ import annotations

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.harness.spec import RunSpec


def _params(scale: str):
    if scale == "paper":
        pair_counts = (1, 2, 4, 8)
        lat_sizes = tuple(1 << k for k in range(0, 16, 2))
        bw_sizes = tuple(1 << k for k in range(6, 22, 2))
    else:
        pair_counts = (1, 2, 4)
        lat_sizes = (8, 1 << 10, 16 << 10)
        bw_sizes = (1 << 10, 64 << 10, 1 << 20)
    return pair_counts, lat_sizes, bw_sizes


def _cases(scale: str):
    """(panel, series key, spec) per combo — sweep_multilink's order.

    The 1-link series is backend-independent (a single thread per node),
    so it is measured once and keyed "single", as in the figure.
    """
    pair_counts, lat_sizes, bw_sizes = _params(scale)
    for panel, sizes in (("latency", lat_sizes), ("bandwidth", bw_sizes)):
        for backend in ("processes", "pthreads"):
            for pairs in pair_counts:
                if pairs == 1 and backend != "processes":
                    continue
                key = (pairs, backend if pairs > 1 else "single")
                spec = RunSpec.make(
                    f"microbench.{panel}", scale=scale, preset="lehman",
                    nodes=2, link_pairs=pairs, backend=backend, sizes=sizes,
                )
                yield panel, key, spec


def points(scale: str) -> list:
    return [spec for *_meta, spec in _cases(scale)]


def collate(scale: str, outputs: list) -> ExperimentResult:
    pair_counts, lat_sizes, _bw = _params(scale)
    panels: dict = {"latency": {}, "bandwidth": {}}
    for (panel, key, _spec), r in zip(_cases(scale), outputs):
        panels[panel][key] = {size: value for size, value in r["by_size"]}
    series = {}
    for (pairs, backend), ys in panels["latency"].items():
        series[f"lat_us {pairs}-{backend}"] = {s: round(v, 2) for s, v in ys.items()}
    for (pairs, backend), ys in panels["bandwidth"].items():
        series[f"bw_MB/s {pairs}-{backend}"] = {s: round(v) for s, v in ys.items()}
    result = ExperimentResult(
        experiment_id="f4_2",
        title="Fig 4.2 - Multi-link latency and flood bandwidth",
        scale=scale,
        series=series,
        x_label="bytes",
        paper_values=[
            "small-message round trip ~4 us; rises sharply past 1 KB",
            "1 link floods ~1.4 GB/s; multiple process links reach ~2.4 GB/s",
            "pthread link pairs extract less bandwidth; latency serializes",
        ],
    )
    fails = result.shape_failures
    lat1 = panels["latency"][(1, "single")]
    small = min(lat1)
    if not 2.0 < lat1[small] < 8.0:
        fails.append(f"1-link small-message RTT {lat1[small]:.1f} us outside 2-8")
    bw1 = panels["bandwidth"][(1, "single")]
    big = max(bw1)
    if not 1100 < bw1[big] < 1700:
        fails.append(f"1-link flood {bw1[big]:.0f} MB/s outside 1100-1700")
    biggest_pairs = pair_counts[-1]
    bw_proc = panels["bandwidth"][(biggest_pairs, "processes")][big]
    bw_pthr = panels["bandwidth"][(biggest_pairs, "pthreads")][big]
    if bw_proc <= bw1[big] * 1.2:
        fails.append("multiple process links should beat a single link")
    if bw_pthr >= bw_proc:
        fails.append("pthread pairs should extract less than process pairs")
    lat_proc = panels["latency"][(biggest_pairs, "processes")]
    lat_pthr = panels["latency"][(biggest_pairs, "pthreads")]
    mid = max(lat_sizes)
    if lat_pthr[mid] <= lat_proc[mid]:
        fails.append("pthread latency should serialize above process latency")
    return result


EXPERIMENT = Experiment("f4_2", "Fig 4.2 - Multi-link microbenchmark",
                        points, collate)
