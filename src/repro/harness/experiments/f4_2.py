"""Fig 4.2 — Multi-link network microbenchmark.

Two QDR-connected nodes, 1–8 link pairs, processes vs pthreads:
round-trip latency (a) and unidirectional flood bandwidth (b).
Paper findings: more pairs → more aggregate bandwidth (to the NIC limit)
but also higher latency; pthread pairs (one shared connection) extract
less bandwidth and their latency serializes.
"""

from __future__ import annotations

from repro.apps.microbench import sweep_multilink
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Experiment
from repro.machine.presets import lehman


def run(scale: str) -> ExperimentResult:
    if scale == "paper":
        pair_counts = (1, 2, 4, 8)
        lat_sizes = tuple(1 << k for k in range(0, 16, 2))
        bw_sizes = tuple(1 << k for k in range(6, 22, 2))
    else:
        pair_counts = (1, 2, 4)
        lat_sizes = (8, 1 << 10, 16 << 10)
        bw_sizes = (1 << 10, 64 << 10, 1 << 20)
    out = sweep_multilink(
        pair_counts=pair_counts,
        latency_sizes=lat_sizes,
        bandwidth_sizes=bw_sizes,
        preset=lehman(nodes=2),
    )
    series = {}
    for (pairs, backend), ys in out["latency_us"].items():
        series[f"lat_us {pairs}-{backend}"] = {s: round(v, 2) for s, v in ys.items()}
    for (pairs, backend), ys in out["bandwidth_mbs"].items():
        series[f"bw_MB/s {pairs}-{backend}"] = {s: round(v) for s, v in ys.items()}
    result = ExperimentResult(
        experiment_id="f4_2",
        title="Fig 4.2 - Multi-link latency and flood bandwidth",
        scale=scale,
        series=series,
        x_label="bytes",
        paper_values=[
            "small-message round trip ~4 us; rises sharply past 1 KB",
            "1 link floods ~1.4 GB/s; multiple process links reach ~2.4 GB/s",
            "pthread link pairs extract less bandwidth; latency serializes",
        ],
    )
    fails = result.shape_failures
    lat1 = out["latency_us"][(1, "single")]
    small = min(lat1)
    if not 2.0 < lat1[small] < 8.0:
        fails.append(f"1-link small-message RTT {lat1[small]:.1f} us outside 2-8")
    bw1 = out["bandwidth_mbs"][(1, "single")]
    big = max(bw1)
    if not 1100 < bw1[big] < 1700:
        fails.append(f"1-link flood {bw1[big]:.0f} MB/s outside 1100-1700")
    biggest_pairs = pair_counts[-1]
    bw_proc = out["bandwidth_mbs"][(biggest_pairs, "processes")][big]
    bw_pthr = out["bandwidth_mbs"][(biggest_pairs, "pthreads")][big]
    if bw_proc <= bw1[big] * 1.2:
        fails.append("multiple process links should beat a single link")
    if bw_pthr >= bw_proc:
        fails.append("pthread pairs should extract less than process pairs")
    lat_proc = out["latency_us"][(biggest_pairs, "processes")]
    lat_pthr = out["latency_us"][(biggest_pairs, "pthreads")]
    mid = max(lat_sizes)
    if lat_pthr[mid] <= lat_proc[mid]:
        fails.append("pthread latency should serialize above process latency")
    return result


EXPERIMENT = Experiment("f4_2", "Fig 4.2 - Multi-link microbenchmark", run)
