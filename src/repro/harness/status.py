"""Campaign status: render the durable journals' per-campaign state.

``python -m repro.harness --status <cache-dir>`` replays every campaign
journal under the cache directory (or a journal directory given
directly) and renders one row per campaign: how many points are done,
leased (in flight when the coordinator last wrote), failed awaiting
retry, or quarantined, plus the total attempts spent.  A campaign whose
coordinator died mid-flight shows up with leased/failed points — exactly
the ones ``--resume`` would pick up.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List

from repro.harness.journal import CampaignJournal
from repro.harness.reporting import format_table

__all__ = ["journal_status_rows", "render_status"]


def _journals_dir(directory) -> Path:
    """Accept either a cache dir (with a journals/ inside) or the
    journal directory itself."""
    directory = Path(directory)
    nested = directory / "journals"
    return nested if nested.is_dir() else directory


def journal_status_rows(directory) -> List[Dict[str, Any]]:
    """One status row per campaign journal under ``directory``, sorted
    by journal filename (i.e. campaign fingerprint)."""
    rows: List[Dict[str, Any]] = []
    journals = _journals_dir(directory)
    for path in sorted(journals.glob("*.jsonl")):
        state = CampaignJournal(path).replay()
        header = state.header or {}
        total = header.get("points", len(state.points))
        counts = {"done": 0, "leased": 0, "failed": 0, "quarantined": 0}
        attempts = 0
        for point in state.points.values():
            if point.status in counts:
                counts[point.status] += 1
            attempts += point.attempts
        if counts["done"] >= total and total > 0:
            status = "complete"
        elif counts["quarantined"]:
            status = "degraded"
        elif counts["leased"] or counts["failed"]:
            status = "interrupted"
        else:
            status = "pending"
        rows.append({
            "campaign": path.stem,
            "experiment": header.get("experiment", "?"),
            "scale": header.get("scale", "?"),
            "points": total,
            "done": counts["done"],
            "leased": counts["leased"],
            "failed": counts["failed"],
            "quarantined": counts["quarantined"],
            "attempts": attempts,
            "status": status,
        })
    return rows


def render_status(directory) -> str:
    """The ``--status`` report for one cache/journal directory."""
    journals = _journals_dir(directory)
    rows = journal_status_rows(directory)
    if not rows:
        return f"no campaign journals under {journals}"
    header = f"campaign journals in {journals}:"
    return header + "\n" + format_table(rows)
