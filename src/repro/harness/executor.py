"""Executors: the *how to schedule it* half of the campaign pipeline.

An executor takes an ordered list of :class:`~repro.harness.spec.RunSpec`
points and returns their outputs **in the same order**, plus any
observability payloads (tracers, sanitizer findings) the caller asked
for.  Three implementations share that contract:

* :class:`InlineExecutor` — runs every point in this process, one after
  the other; exactly the historical harness behavior (and the only mode
  in which a single trace session spans the whole campaign in one go).
* :class:`ParallelExecutor` — fans independent points across a
  ``ProcessPoolExecutor``.  Each worker runs its point inside its own
  trace/sanitize session and ships the finished tracers (detached from
  their simulator) and finding rows back through pickle; the parent
  re-numbers tracer ``run_index`` in spec order so exports are
  byte-identical to an inline run.  A worker death surfaces as a clear
  :class:`ExecutorError` naming the point instead of an opaque
  ``BrokenProcessPool`` abort.
* :class:`~repro.harness.queue.QueueExecutor` — the durable, lease-based
  executor (``--durable``/``--resume``): journals every point's
  lifecycle, retries failures with backoff, and quarantines poison
  points instead of aborting the campaign.

Every simulation point is a pure function of its spec (fixed seeds, no
wall-clock reads), so scheduling cannot change results — only wall time.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ExecutorError
from repro.harness.spec import RunSpec

__all__ = [
    "ExecutionBatch",
    "ExecutorError",
    "InlineExecutor",
    "ParallelExecutor",
    "execute_spec",
    "make_executor",
]

#: app id prefix -> package exposing the normalized ``run_request`` adapter
_ADAPTER_PACKAGES = {
    "uts": "repro.apps.uts",
    "ft": "repro.apps.ft",
    "stream": "repro.apps.stream",
    "microbench": "repro.apps.microbench",
}


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Run one simulation point via its app's ``run_request`` adapter."""
    import importlib

    prefix = spec.app.split(".", 1)[0]
    package = _ADAPTER_PACKAGES.get(prefix)
    if package is None:
        raise ValueError(
            f"no adapter for app {spec.app!r}; known: {sorted(_ADAPTER_PACKAGES)}"
        )
    module = importlib.import_module(package)
    return module.run_request(spec)


@dataclass
class ExecutionBatch:
    """Outputs (in spec order) plus observability payloads of one batch."""

    outputs: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    #: finished tracers from every simulated run, in spec order
    #: (empty unless the batch was traced).
    tracers: List[Any] = field(default_factory=list)
    #: the same tracers grouped per executed point — ``tracer_groups[i]``
    #: holds point ``i``'s runs (a point may simulate several programs).
    #: Empty unless the batch was traced; a quarantined point's slot is
    #: an empty list.  The campaign summarizer keys on this grouping.
    tracer_groups: List[List[Any]] = field(default_factory=list)
    #: per-point profile snapshots (:meth:`ProfileSession.snapshot`), in
    #: spec order; empty unless the batch was profiled.  A quarantined
    #: point's slot is None — merged profiles cover only healthy points.
    profiles: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    #: sanitizer finding rows, in spec order (empty unless sanitized).
    findings: List[Dict[str, Any]] = field(default_factory=list)
    #: how many sanitizers were armed (== simulated runs when sanitizing).
    sanitizer_runs: int = 0
    #: quarantined points (queue executor only): rows of {point, app,
    #: fingerprint, attempts, error} with batch-local point indices; the
    #: matching ``outputs`` slots hold None.
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: points whose outputs were replayed from a journal (``--resume``)
    #: instead of executed.
    replayed: int = 0


class InlineExecutor:
    """Sequential in-process execution — the historical harness path."""

    jobs = 1

    def run(self, specs: Sequence[RunSpec], *, trace: bool = False,
            sanitize: bool = False, profile: bool = False) -> ExecutionBatch:
        from contextlib import ExitStack

        batch = ExecutionBatch()
        if not specs:
            return batch
        with ExitStack() as stack:
            san_session = None
            if sanitize:
                from repro.analyze.sanitizer import sanitize_session

                san_session = stack.enter_context(sanitize_session("campaign"))
            session = None
            if trace:
                from repro.obs.session import trace_session

                session = stack.enter_context(trace_session("campaign"))
            bounds: List[int] = []
            for spec in specs:
                if profile:
                    # One profile session *per point* (not per campaign,
                    # unlike the trace session) so inline and parallel
                    # batches merge to byte-identical cost profiles.
                    from repro.obs.profile import profile_session

                    with profile_session(spec.app) as psession:
                        batch.outputs.append(execute_spec(spec))
                    batch.profiles.append(psession.snapshot())
                else:
                    batch.outputs.append(execute_spec(spec))
                if session is not None:
                    bounds.append(len(session.tracers))
        if session is not None:
            batch.tracers = list(session.tracers)
            lo = 0
            for hi in bounds:
                batch.tracer_groups.append(batch.tracers[lo:hi])
                lo = hi
        if san_session is not None:
            batch.findings = [f.row() for f in san_session.findings]
            batch.sanitizer_runs = len(san_session.sanitizers)
        return batch


def _compute_payload(spec: RunSpec, trace: bool, sanitize: bool,
                     profile: bool = False) -> Dict[str, Any]:
    """One spec inside its own trace/sanitize sessions → picklable payload.

    Tracers are detached from their simulator (``sim`` holds generators,
    which cannot cross a process boundary) — everything the exporter and
    critical-path attribution read is already materialized in the
    tracer's own lists.
    """
    from contextlib import ExitStack

    payload: Dict[str, Any] = {"tracers": [], "findings": [],
                               "sanitizer_runs": 0, "profile": None}
    with ExitStack() as stack:
        san_session = None
        if sanitize:
            from repro.analyze.sanitizer import sanitize_session

            san_session = stack.enter_context(sanitize_session(spec.app))
        session = None
        if trace:
            from repro.obs.session import trace_session

            session = stack.enter_context(trace_session(spec.app))
        psession = None
        if profile:
            from repro.obs.profile import profile_session

            psession = stack.enter_context(profile_session(spec.app))
        payload["output"] = execute_spec(spec)
    if psession is not None:
        payload["profile"] = psession.snapshot()
    if session is not None:
        for tracer in session.tracers:
            tracer.sim = None
        payload["tracers"] = list(session.tracers)
    if san_session is not None:
        payload["findings"] = [f.row() for f in san_session.findings]
        payload["sanitizer_runs"] = len(san_session.sanitizers)
    return payload


def _run_point(args) -> Dict[str, Any]:
    """Pool-worker entry: compute one point, honoring any chaos plan.

    The chaos hooks exist so the executor's own failure paths can be
    tested deterministically: ``stall`` hangs before computing, ``fail``
    raises after computing, ``kill`` SIGKILLs the worker right before it
    would report — the BrokenProcessPool case a real OOM kill produces.
    """
    index, spec, trace, sanitize, profile, chaos_spec = args
    plan = None
    if chaos_spec:
        from repro.harness.chaos import ChaosPlan

        plan = ChaosPlan.parse(chaos_spec)
    fingerprint = spec.fingerprint()
    if plan is not None and plan.decide("stall", index, fingerprint, 1):
        time.sleep(3600.0)
    payload = _compute_payload(spec, trace, sanitize, profile)
    if plan is not None:
        if plan.decide("fail", index, fingerprint, 1):
            raise RuntimeError(f"chaos: injected failure at point {index}")
        if plan.decide("kill", index, fingerprint, 1):
            os.kill(os.getpid(), signal.SIGKILL)
    return payload


class ParallelExecutor:
    """Fan independent points across worker processes (``--jobs N``)."""

    def __init__(self, jobs: int, chaos: Optional[str] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.chaos = chaos

    def run(self, specs: Sequence[RunSpec], *, trace: bool = False,
            sanitize: bool = False, profile: bool = False) -> ExecutionBatch:
        if not specs:
            return ExecutionBatch()
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        batch = ExecutionBatch()
        workers = min(self.jobs, len(specs))
        tasks = [(i, spec, trace, sanitize, profile, self.chaos)
                 for i, spec in enumerate(specs)]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # map() yields in submission order: deterministic spec
                # order regardless of which worker finishes first.
                for payload in pool.map(_run_point, tasks):
                    batch.outputs.append(payload["output"])
                    batch.tracers.extend(payload["tracers"])
                    if trace:
                        batch.tracer_groups.append(list(payload["tracers"]))
                    if profile:
                        batch.profiles.append(payload["profile"])
                    batch.findings.extend(payload["findings"])
                    batch.sanitizer_runs += payload["sanitizer_runs"]
        except BrokenProcessPool as exc:
            # map() has yielded every point before this one, so the
            # first unreturned point is where the batch stopped; with
            # several points in flight the dead worker held this point
            # or one shortly after it.
            index = len(batch.outputs)
            spec = specs[min(index, len(specs) - 1)]
            raise ExecutorError(
                f"worker process died while running point {index} of "
                f"{len(specs)} ({spec.app}, fingerprint "
                f"{spec.fingerprint()[:12]}); the process pool cannot "
                "recover — re-run with --durable to retry the point and "
                "quarantine it if it keeps killing workers"
            ) from exc
        # Re-number the merged tracers so exports are byte-identical to
        # an inline run's single session (run_index is lane-ordering).
        for index, tracer in enumerate(batch.tracers, start=1):
            tracer.run_index = index
        return batch


def make_executor(jobs: int = 1):
    """The executor for a job count: inline at 1, process pool above."""
    return InlineExecutor() if jobs <= 1 else ParallelExecutor(jobs)
