"""Content-addressed on-disk cache for simulation-point results.

Every executed :class:`~repro.harness.spec.RunSpec` is deterministic
(the simulation is a pure function of the spec), so its output can be
keyed by the spec's content fingerprint salted with the package version
and reused forever: re-running a sweep skips already-computed points,
and an interrupted paper-scale campaign resumes from where it stopped.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json`` written
atomically (temp file + rename), so a killed run never leaves a
half-written entry.  Outputs must round-trip JSON exactly — the same
invariant the parallel executor's worker transport relies on — and
:meth:`ResultCache.put` enforces it rather than caching a lossy copy.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro._version import __version__
from repro.harness.spec import RunSpec

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

#: Default CLI cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_MISS = object()


class ResultCache:
    """Spec-fingerprint → output-dict store on the local filesystem."""

    def __init__(self, root, version: str = __version__):
        self.root = Path(root)
        self.version = version

    def key(self, spec: RunSpec) -> str:
        """Cache key: fingerprint of the spec salted with the version.

        A version bump invalidates every entry — simulator changes move
        results, and a stale hit would silently freeze the old model.
        """
        payload = f"{spec.canonical_json()}\n{self.version}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def path(self, spec: RunSpec) -> Path:
        key = self.key(spec)
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The cached output for ``spec``, or None on a miss.

        Unreadable or mismatched entries count as misses (and will be
        overwritten by the next :meth:`put`), so a corrupted cache heals
        instead of wedging the campaign.
        """
        try:
            with open(self.path(spec)) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if entry.get("version") != self.version:
            return None
        if entry.get("spec") != spec.canonical_json():
            return None
        output = entry.get("output", _MISS)
        return None if output is _MISS else output

    def put(self, spec: RunSpec, output: Dict[str, Any]) -> None:
        """Store ``output`` for ``spec`` atomically, safe under racers.

        Raises TypeError when the output does not survive a JSON round
        trip — caching a lossy copy would make cached and fresh reports
        diverge, which is strictly worse than not caching.

        Concurrent multi-process writers (parallel and durable
        executors, several campaigns sharing one cache dir) are safe by
        construction: each writer stages into its own exclusive temp
        file (``mkstemp`` with a pid-tagged prefix, so a crashed
        writer's litter is attributable) and publishes with an atomic
        ``os.replace`` — last write wins whole, readers never observe a
        torn entry, and every racer writes identical bytes anyway
        because outputs are pure functions of the spec.
        """
        encoded = json.dumps(output)
        if json.loads(encoded) != output:
            raise TypeError(
                f"output for {spec.app} spec {self.key(spec)[:12]} is not "
                "JSON round-trip clean; fix the app adapter to return "
                "JSON-exact primitives"
            )
        target = self.path(spec)
        target.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": self.version,
            "spec": spec.canonical_json(),
            "output": output,
        }
        fd, tmp = tempfile.mkstemp(dir=str(target.parent),
                                   prefix=f".put-{os.getpid()}-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
