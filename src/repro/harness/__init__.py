"""Experiment harness: one module per paper table/figure.

Each experiment in :mod:`repro.harness.experiments` regenerates the rows
or series of one artifact from the thesis's evaluation, at two scales:

* ``quick`` — minutes on a laptop; same machine *shapes*, smaller
  problems (used by the benchmark suite and CI);
* ``paper`` — the thesis's own problem sizes and thread counts.

Run everything from the command line::

    python -m repro.harness --list
    python -m repro.harness t3_1 f3_3 --scale quick
    python -m repro.harness --all --scale quick --out results.md

Every experiment carries the paper's reported numbers and a
``check_shape`` that asserts the qualitative findings (who wins, rough
factors, crossover locations) hold in the reproduction.
"""

from repro.harness.reporting import ExperimentResult, format_series, format_table
from repro.harness.runner import EXPERIMENTS, Experiment, get_experiment, run_experiment

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "format_series",
    "format_table",
    "get_experiment",
    "run_experiment",
]

from repro.harness.campaign import Campaign  # noqa: E402
from repro.harness.cache import ResultCache  # noqa: E402
from repro.harness.chaos import ChaosPlan  # noqa: E402
from repro.harness.executor import (  # noqa: E402
    ExecutorError,
    InlineExecutor,
    ParallelExecutor,
)
from repro.harness.journal import CampaignJournal, campaign_fingerprint  # noqa: E402
from repro.harness.queue import QueueExecutor  # noqa: E402
from repro.harness.spec import RunSpec, Sweep, threads_per_node  # noqa: E402

__all__ += [
    "Campaign",
    "CampaignJournal",
    "ChaosPlan",
    "ExecutorError",
    "InlineExecutor",
    "ParallelExecutor",
    "QueueExecutor",
    "ResultCache",
    "RunSpec",
    "Sweep",
    "campaign_fingerprint",
    "threads_per_node",
]
