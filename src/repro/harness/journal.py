"""Durable campaign journals: the crash-safe record of a campaign's life.

A :class:`CampaignJournal` is an append-only JSONL file, one per
campaign, keyed by the campaign's content fingerprint (the hash of every
point's canonical spec plus the package version).  The queue executor
(:mod:`repro.harness.queue`) writes one event per lifecycle transition —

* ``campaign`` — header: fingerprint, point count, version;
* ``resume``   — a later coordinator reopened the journal;
* ``lease``    — point ``p`` claimed for attempt ``k`` by worker ``pid``;
* ``done``     — point ``p`` finished; the JSON output rides along;
* ``failed``   — attempt ``k`` on point ``p`` died (worker killed, lease
  expired, timeout, dropped result, or an exception — ``kind`` says which);
* ``quarantined`` — point ``p`` exhausted its attempts and is poison —

so replaying the file reconstructs exactly where an interrupted campaign
stopped.  Only the single coordinator process appends (workers report
through pipes), every append is flushed and fsynced, and replay
tolerates a torn final line (a coordinator SIGKILLed mid-append), so a
campaign killed at *any* instant leaves a resumable journal.

Heartbeats are deliberately **not** journaled: they are coordinator-side
liveness state, worthless after the coordinator itself dies, and would
bloat the journal by orders of magnitude.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro._version import __version__

__all__ = [
    "CampaignJournal",
    "JournalState",
    "PointState",
    "campaign_fingerprint",
]

#: Point lifecycle states a replay can land in.
PENDING, LEASED, DONE, FAILED, QUARANTINED = (
    "pending", "leased", "done", "failed", "quarantined",
)


def campaign_fingerprint(specs: Sequence, version: str = __version__) -> str:
    """Stable content hash of an ordered point list.

    Includes the package version so a simulator change starts a fresh
    journal instead of resuming onto outputs the new code would not
    reproduce — the same invalidation rule the result cache uses.
    """
    payload = "\n".join(spec.canonical_json() for spec in specs)
    return hashlib.sha256(f"{payload}\n{version}".encode()).hexdigest()


@dataclass
class PointState:
    """Where one point stands after replaying its journal events."""

    status: str = PENDING
    attempts: int = 0          #: highest attempt number seen
    output: Optional[Dict[str, Any]] = None   #: set iff status == done
    error: str = ""            #: last failure message, if any

    @property
    def runnable(self) -> bool:
        """True when a resuming coordinator should (re)execute the point.

        ``leased`` counts as runnable: a lease without a ``done`` means
        the previous coordinator died while the point was in flight.
        """
        return self.status in (PENDING, LEASED, FAILED)


@dataclass
class JournalState:
    """The fold of a journal's events: header plus per-point states."""

    header: Optional[Dict[str, Any]] = None
    points: Dict[int, PointState] = field(default_factory=dict)

    def point(self, index: int) -> PointState:
        return self.points.setdefault(index, PointState())

    @property
    def done(self) -> List[int]:
        return sorted(i for i, p in self.points.items() if p.status == DONE)

    @property
    def quarantined(self) -> List[int]:
        return sorted(i for i, p in self.points.items()
                      if p.status == QUARANTINED)


class CampaignJournal:
    """Append-only JSONL event log for one campaign."""

    def __init__(self, path):
        self.path = Path(path)
        self._fh = None

    @classmethod
    def for_campaign(cls, journal_dir, fingerprint: str) -> "CampaignJournal":
        """The canonical journal location for a campaign fingerprint."""
        return cls(Path(journal_dir) / f"{fingerprint[:16]}.jsonl")

    @property
    def exists(self) -> bool:
        return self.path.exists()

    def discard(self) -> None:
        """Remove any previous journal (a fresh, non-resumed run)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def append(self, event: Dict[str, Any]) -> None:
        """Durably append one event (flushed and fsynced per line).

        fsync-per-event is deliberate: the journal exists precisely for
        the case where the coordinator is SIGKILLed an instant later,
        and campaign points are seconds-long simulations, so the sync
        cost is noise next to the work it protects.
        """
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay -----------------------------------------------------------

    def events(self) -> Iterator[Dict[str, Any]]:
        """Parsed events in append order, tolerating a torn tail.

        A coordinator killed mid-append leaves a final line that is
        truncated or non-JSON; replay stops there — everything before it
        was fsynced whole, everything after it never durably happened.
        """
        try:
            with open(self.path) as fh:
                for line in fh:
                    try:
                        event = json.loads(line)
                    except ValueError:
                        return
                    if isinstance(event, dict):
                        yield event
        except OSError:
            return

    def replay(self) -> JournalState:
        """Fold the event stream into per-point lifecycle states."""
        state = JournalState()
        for event in self.events():
            kind = event.get("e")
            if kind == "campaign" and state.header is None:
                state.header = event
                continue
            if kind in ("campaign", "resume"):
                continue
            index = event.get("p")
            if not isinstance(index, int):
                continue
            point = state.point(index)
            attempt = event.get("attempt")
            if isinstance(attempt, int):
                point.attempts = max(point.attempts, attempt)
            if kind == "lease":
                if point.status in (PENDING, LEASED, FAILED):
                    point.status = LEASED
            elif kind == "done":
                point.status = DONE
                point.output = event.get("output")
                point.error = ""
            elif kind == "failed":
                if point.status != DONE:
                    point.status = FAILED
                    point.error = str(event.get("error", ""))
            elif kind == "quarantined":
                point.status = QUARANTINED
        return state
