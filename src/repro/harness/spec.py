"""Run specifications: the *what to run* half of the campaign pipeline.

A :class:`RunSpec` names one simulation point — app, policy, platform,
conduit, thread shape, seed, faults, scale, plus app-specific ``extras``
— as a frozen, hashable value with a canonical JSON form and a stable
content fingerprint.  Specs carry only primitives (strings, numbers,
bools, None, nested tuples), so they pickle across process boundaries
for the parallel executor and hash identically across interpreter runs
for the result cache.

:class:`Sweep` builds the cross-products the experiments declare:
axes are applied in declaration order, so the resulting spec list — and
therefore every collated table and series — has a deterministic order
regardless of how the points are later scheduled.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "RunSpec",
    "Sweep",
    "threads_per_node",
    "freeze_value",
]

#: RunSpec fields that are *not* app extras (kept in sync with the
#: dataclass below; everything else passed to builders lands in extras).
_CORE_FIELDS = (
    "app", "policy", "preset", "nodes", "conduit", "threads",
    "threads_per_node", "seed", "faults", "scale",
)


def threads_per_node(threads: int, nodes: int) -> int:
    """Threads placed on each node for a ``threads``-wide run on ``nodes``.

    The canonical ``max(1, threads // nodes)`` shared by the sweep
    declarations (one definition instead of a copy per experiment
    module); a run narrower than the node count packs one thread per
    occupied node.
    """
    return max(1, threads // nodes)


def freeze_value(value: Any) -> Any:
    """Recursively freeze ``value`` into a hashable, canonical form.

    Lists/tuples become tuples; dicts become sorted ``(key, value)``
    tuples; scalars pass through.  Anything else (objects, sets) is
    rejected so a spec can never smuggle unserializable state.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), freeze_value(v)) for k, v in value.items()))
    raise TypeError(
        f"spec values must be JSON-like primitives, got {type(value).__name__}"
    )


def _thaw(value: Any) -> Any:
    """Tuples back to lists for the canonical JSON form."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class RunSpec:
    """One simulation point: everything an executor needs to run it."""

    app: str                                   #: adapter id, e.g. "uts", "ft.exchange"
    policy: Optional[str] = None               #: app policy/variant/model name
    preset: Optional[str] = None               #: platform preset factory ("lehman", "pyramid")
    nodes: Optional[int] = None                #: cluster nodes for the preset
    conduit: Optional[str] = None              #: network conduit override
    threads: Optional[int] = None              #: total UPC threads / MPI ranks
    threads_per_node: Optional[int] = None
    seed: Optional[int] = None                 #: app-level seed, when it takes one
    faults: Optional[str] = None               #: FaultPlan spec string
    scale: str = "quick"
    #: app-specific parameters, frozen as sorted ``(key, value)`` tuples.
    extras: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, app: str, **params: Any) -> "RunSpec":
        """Build a spec, routing unknown keywords into ``extras``."""
        core = {k: params.pop(k) for k in list(params) if k in _CORE_FIELDS}
        extras = tuple(sorted((k, freeze_value(v)) for k, v in params.items()))
        return cls(app=app, extras=extras, **core)

    def extras_dict(self) -> Dict[str, Any]:
        return dict(self.extras)

    def extra(self, key: str, default: Any = None) -> Any:
        for k, v in self.extras:
            if k == key:
                return v
        return default

    def with_updates(self, **params: Any) -> "RunSpec":
        """A copy with core fields replaced and/or extras merged."""
        core = {k: params.pop(k) for k in list(params) if k in _CORE_FIELDS}
        merged = self.extras_dict()
        for k, v in params.items():
            merged[k] = freeze_value(v)
        return replace(self, extras=tuple(sorted(merged.items())), **core)

    # -- canonical form ---------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Plain dict (extras nested, tuples thawed) — the JSON shape."""
        out = {f.name: getattr(self, f.name) for f in fields(self)
               if f.name != "extras"}
        out["extras"] = {k: _thaw(v) for k, v in self.extras}
        return out

    def canonical_json(self) -> str:
        """Deterministic JSON: sorted keys, compact separators."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """Stable content hash of the canonical form (hex sha256)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        data = dict(data)
        extras = data.pop("extras", {}) or {}
        return cls.make(data.pop("app"), **data, **dict(extras))

    # -- execution helpers ------------------------------------------------

    def build_preset(self):
        """Reconstruct the platform preset named by this spec."""
        if self.preset is None:
            return None
        from repro.machine import presets

        factory = getattr(presets, self.preset, None)
        if factory is None:
            raise ValueError(f"unknown platform preset {self.preset!r}")
        if self.nodes is not None:
            return factory(nodes=self.nodes)
        return factory()


class Sweep:
    """Declarative cross-product builder for :class:`RunSpec` lists.

    Axes multiply in declaration order (first axis outermost), matching
    the nesting of the loops they replace, so collation sees points in
    the historical order.  An axis value may be a scalar (assigned to
    the axis's field) or a dict of several field/extra updates that vary
    together (e.g. a conduit with its tuned steal chunk).
    """

    def __init__(self, app: str, **base: Any):
        self._base = RunSpec.make(app, **base)
        self._axes: List[List[Dict[str, Any]]] = []
        self._filters: List[Callable[[RunSpec], bool]] = []
        self._derives: List[Callable[[RunSpec], Dict[str, Any]]] = []

    def over(self, axis: str, values: Iterable[Any]) -> "Sweep":
        """Add an axis: one spec per value, crossed with every other axis."""
        points = []
        for v in values:
            points.append(dict(v) if isinstance(v, dict) else {axis: v})
        if not points:
            raise ValueError(f"axis {axis!r} has no values")
        self._axes.append(points)
        return self

    def where(self, predicate: Callable[[RunSpec], bool]) -> "Sweep":
        """Drop cross-product cells the predicate rejects."""
        self._filters.append(predicate)
        return self

    def derive(self, fn: Callable[[RunSpec], Dict[str, Any]]) -> "Sweep":
        """Compute dependent fields (e.g. threads_per_node) per point."""
        self._derives.append(fn)
        return self

    def build(self) -> List[RunSpec]:
        specs = [self._base]
        for axis in self._axes:
            specs = [s.with_updates(**updates) for s in specs for updates in axis]
        for fn in self._derives:
            specs = [s.with_updates(**fn(s)) for s in specs]
        for pred in self._filters:
            specs = [s for s in specs if pred(s)]
        return specs
