"""Result containers and plain-text rendering for experiments."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "format_series"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
                     for r in cells)
    return f"{header}\n{sep}\n{body}"


def format_series(series: Dict[str, Dict], x_label: str = "x") -> str:
    """Render ``{series_name: {x: y}}`` as one aligned table, x as rows."""
    if not series:
        return "(no series)"
    xs = sorted({x for ys in series.values() for x in ys})
    rows = []
    for x in xs:
        row = {x_label: x}
        for name, ys in series.items():
            row[name] = ys.get(x, "")
        rows.append(row)
    return format_table(rows)


@dataclass
class ExperimentResult:
    """One experiment's regenerated artifact plus its provenance."""

    experiment_id: str
    title: str
    scale: str
    rows: List[Dict] = field(default_factory=list)
    series: Dict[str, Dict] = field(default_factory=dict)
    x_label: str = "x"
    notes: List[str] = field(default_factory=list)
    paper_values: List[str] = field(default_factory=list)
    shape_failures: List[str] = field(default_factory=list)
    #: critical-path time attribution (``--report-breakdown``): rows of
    #: {category, seconds, share}, categories summing to the total row.
    breakdown: List[Dict] = field(default_factory=list)
    #: traced communication matrix: rows of {src_node, dst_node,
    #: messages, bytes}, aggregated over every run in the experiment.
    comm_matrix: List[Dict] = field(default_factory=list)
    #: True when the run was sanitized (``--sanitize``); lets render()
    #: distinguish "clean" from "not checked".
    sanitized: bool = False
    #: dynamic-sanitizer findings (``--sanitize``): rows of
    #: {checker, threads, time, phase, message} from repro.analyze.
    sanitizer_findings: List[Dict] = field(default_factory=list)
    #: campaign counters ({points, executed, cache_hits}) — populated
    #: only when a result cache was in play, so uncached reports render
    #: byte-identically to the pre-campaign harness.
    campaign: Dict = field(default_factory=dict)
    #: quarantined points from a degraded durable campaign: rows of
    #: {point, app, fingerprint, attempts, error}.  Non-empty only when
    #: the queue executor gave up on a poison point; the rest of the
    #: campaign still completed and this result carries the partial
    #: outcome instead of an aborted run.
    failures: List[Dict] = field(default_factory=list)

    @property
    def shape_ok(self) -> bool:
        return not self.shape_failures

    # -- serialization ----------------------------------------------------
    #
    # Results cross process boundaries (parallel workers) and sit in the
    # on-disk cache, so they must survive pickle and JSON round trips
    # *exactly* — including the insertion order of series points and
    # their integer x-values, which plain JSON dict keys would turn into
    # strings.  Series are therefore encoded as ordered [x, y] pairs.

    def to_dict(self) -> Dict:
        """JSON-safe dict; ``from_dict`` inverts it exactly."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "scale": self.scale,
            "rows": self.rows,
            "series": {name: [[x, y] for x, y in ys.items()]
                       for name, ys in self.series.items()},
            "x_label": self.x_label,
            "notes": self.notes,
            "paper_values": self.paper_values,
            "shape_failures": self.shape_failures,
            "breakdown": self.breakdown,
            "comm_matrix": self.comm_matrix,
            "sanitized": self.sanitized,
            "sanitizer_findings": self.sanitizer_findings,
            "campaign": self.campaign,
            "failures": self.failures,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentResult":
        data = dict(data)
        data["series"] = {name: {x: y for x, y in pairs}
                          for name, pairs in data.get("series", {}).items()}
        return cls(**data)

    def to_json(self) -> str:
        # no sort_keys: row dicts render their columns in insertion
        # order, and a round trip must not reorder the report's tables
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        parts = [f"## {self.title} [{self.experiment_id}, scale={self.scale}]", ""]
        if self.rows:
            parts += [format_table(self.rows), ""]
        if self.series:
            parts += [format_series(self.series, self.x_label), ""]
        if self.breakdown:
            rows = [
                {**r, "share": f"{100 * r['share']:.1f}%"} for r in self.breakdown
            ]
            parts += ["Simulated-time breakdown (critical path):",
                      format_table(rows), ""]
        if self.comm_matrix:
            parts += ["Communication matrix (src node -> dst node):",
                      format_table(self.comm_matrix), ""]
        if self.failures:
            parts += ["Failed points (quarantined after retries):",
                      format_table(
                          self.failures,
                          columns=["point", "app", "fingerprint",
                                   "attempts", "error"],
                      ), ""]
        if self.sanitizer_findings:
            parts += ["Sanitizer findings:",
                      format_table(
                          self.sanitizer_findings,
                          columns=["checker", "threads", "time", "phase",
                                   "message"],
                      ), ""]
        elif self.sanitized:
            parts += ["Sanitizer: clean (0 findings)", ""]
        if self.paper_values:
            parts.append("Paper reported:")
            parts += [f"  - {p}" for p in self.paper_values]
            parts.append("")
        if self.notes:
            parts += [f"Note: {n}" for n in self.notes]
            parts.append("")
        if self.campaign:
            parts.append(
                f"Campaign: {self.campaign.get('points', 0)} point(s), "
                f"{self.campaign.get('executed', 0)} executed, "
                f"{self.campaign.get('cache_hits', 0)} cache hit(s)"
            )
            parts.append("")
        status = "OK" if self.shape_ok else "SHAPE MISMATCH"
        parts.append(f"Shape check: {status}")
        for f in self.shape_failures:
            parts.append(f"  ! {f}")
        return "\n".join(parts)
