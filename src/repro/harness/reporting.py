"""Result containers and plain-text rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "format_series"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
                     for r in cells)
    return f"{header}\n{sep}\n{body}"


def format_series(series: Dict[str, Dict], x_label: str = "x") -> str:
    """Render ``{series_name: {x: y}}`` as one aligned table, x as rows."""
    if not series:
        return "(no series)"
    xs = sorted({x for ys in series.values() for x in ys})
    rows = []
    for x in xs:
        row = {x_label: x}
        for name, ys in series.items():
            row[name] = ys.get(x, "")
        rows.append(row)
    return format_table(rows)


@dataclass
class ExperimentResult:
    """One experiment's regenerated artifact plus its provenance."""

    experiment_id: str
    title: str
    scale: str
    rows: List[Dict] = field(default_factory=list)
    series: Dict[str, Dict] = field(default_factory=dict)
    x_label: str = "x"
    notes: List[str] = field(default_factory=list)
    paper_values: List[str] = field(default_factory=list)
    shape_failures: List[str] = field(default_factory=list)
    #: critical-path time attribution (``--report-breakdown``): rows of
    #: {category, seconds, share}, categories summing to the total row.
    breakdown: List[Dict] = field(default_factory=list)
    #: traced communication matrix: rows of {src_node, dst_node,
    #: messages, bytes}, aggregated over every run in the experiment.
    comm_matrix: List[Dict] = field(default_factory=list)
    #: True when the run was sanitized (``--sanitize``); lets render()
    #: distinguish "clean" from "not checked".
    sanitized: bool = False
    #: dynamic-sanitizer findings (``--sanitize``): rows of
    #: {checker, threads, time, phase, message} from repro.analyze.
    sanitizer_findings: List[Dict] = field(default_factory=list)

    @property
    def shape_ok(self) -> bool:
        return not self.shape_failures

    def render(self) -> str:
        parts = [f"## {self.title} [{self.experiment_id}, scale={self.scale}]", ""]
        if self.rows:
            parts += [format_table(self.rows), ""]
        if self.series:
            parts += [format_series(self.series, self.x_label), ""]
        if self.breakdown:
            rows = [
                {**r, "share": f"{100 * r['share']:.1f}%"} for r in self.breakdown
            ]
            parts += ["Simulated-time breakdown (critical path):",
                      format_table(rows), ""]
        if self.comm_matrix:
            parts += ["Communication matrix (src node -> dst node):",
                      format_table(self.comm_matrix), ""]
        if self.sanitizer_findings:
            parts += ["Sanitizer findings:",
                      format_table(
                          self.sanitizer_findings,
                          columns=["checker", "threads", "time", "phase",
                                   "message"],
                      ), ""]
        elif self.sanitized:
            parts += ["Sanitizer: clean (0 findings)", ""]
        if self.paper_values:
            parts.append("Paper reported:")
            parts += [f"  - {p}" for p in self.paper_values]
            parts.append("")
        if self.notes:
            parts += [f"Note: {n}" for n in self.notes]
            parts.append("")
        status = "OK" if self.shape_ok else "SHAPE MISMATCH"
        parts.append(f"Shape check: {status}")
        for f in self.shape_failures:
            parts.append(f"  ! {f}")
        return "\n".join(parts)
