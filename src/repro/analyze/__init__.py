"""Correctness tooling for the simulated PGAS stack.

Two halves (DESIGN.md §9):

* **Dynamic sanitizer** (:mod:`repro.analyze.sanitizer`) — a run-time
  checker armed with :func:`sanitize_session`, off by default and
  near-zero-cost when off (the same NULL-object discipline as the
  tracer).  Three checkers share one happens-before engine:

  - a vector-clock **data-race detector** over :class:`SharedArray`
    element/block accesses,
  - a **privatization-legality** checker for ``bupc_cast`` pointers
    (affinity-boundary crossings, non-castable targets, stale pointers
    whose owner crashed under a fault plan),
  - a **collective/barrier-matching** checker (mismatched collective
    sequences, ``upc_notify``/``upc_wait`` misuse).

* **Static lint** (:mod:`repro.analyze.lint`) — an AST pass over the
  source tree with repo-specific rules, run as
  ``python -m repro.analyze.lint src``.

This package must stay importable with the standard library alone (plus
:mod:`repro.obs`, which shares that constraint): the simulation kernel
imports :data:`NULL_SANITIZER` at module load.
"""

from repro.analyze.findings import Finding, render_findings
from repro.analyze.sanitizer import (
    NULL_SANITIZER,
    NullSanitizer,
    SanitizeSession,
    Sanitizer,
    active_sanitize_session,
    sanitize_session,
    sanitizer_for,
)

__all__ = [
    "Finding",
    "render_findings",
    "NULL_SANITIZER",
    "NullSanitizer",
    "Sanitizer",
    "SanitizeSession",
    "active_sanitize_session",
    "sanitize_session",
    "sanitizer_for",
]
