"""Per-function control-flow graphs for the static PGAS analyzer.

One :class:`CFG` per function: basic blocks of statements linked by
successor edges, built from the AST with the usual shapes for if/else,
loops (explicit header block so loop-carried state reaches the guard),
try/except (handlers conservatively reachable from the try entry and
exit), break/continue/return/raise.  Nested function definitions are
single statements here — each closure gets its own CFG.

Two lookup tables drive the flow-sensitive passes:

* ``stmt_block`` — every statement's containing block;
* ``guard_block`` — for each ``if``/``while`` test and ``for`` iterable,
  the block whose dataflow state is live when that guard is evaluated.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = ["Block", "CFG", "build_cfg"]


class Block:
    __slots__ = ("id", "stmts", "succ")

    def __init__(self, bid: int):
        self.id = bid
        self.stmts: List[ast.stmt] = []
        self.succ: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.id} stmts={len(self.stmts)} succ={self.succ}>"


class CFG:
    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        self.stmt_block: Dict[int, int] = {}   #: id(stmt) -> block id
        self.guard_block: Dict[int, int] = {}  #: id(test/iter expr) -> block id
        self._reach: Dict[int, frozenset] = {}

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def link(self, src: Block, dst: Block) -> None:
        if dst.id not in src.succ:
            src.succ.append(dst.id)

    def preds(self, block: Block) -> List[Block]:
        return [b for b in self.blocks if block.id in b.succ]

    def reaches(self, src: int, dst: int) -> bool:
        """True when ``dst`` is reachable from ``src`` along edges."""
        cached = self._reach.get(src)
        if cached is None:
            seen = set()
            stack = list(self.blocks[src].succ)
            while stack:
                b = stack.pop()
                if b in seen:
                    continue
                seen.add(b)
                stack.extend(self.blocks[b].succ)
            cached = self._reach[src] = frozenset(seen)
        return dst in cached


class _Builder:
    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loops: List[tuple] = []  # (header, after)

    def seq(self, stmts: List[ast.stmt], cur: Block) -> Block:
        for stmt in stmts:
            nxt = self.stmt(stmt, cur)
            # after return/break/... the rest of the suite is unreachable;
            # keep threading through a fresh (edge-less) block so later
            # statements still get stmt_block entries
            cur = nxt if nxt is not None else self.cfg.new_block()
        return cur

    def stmt(self, s: ast.stmt, cur: Block) -> Optional[Block]:
        cfg = self.cfg
        cfg.stmt_block[id(s)] = cur.id
        if isinstance(s, ast.If):
            cur.stmts.append(s)
            cfg.guard_block[id(s.test)] = cur.id
            after = cfg.new_block()
            then_in = cfg.new_block()
            cfg.link(cur, then_in)
            then_out = self.seq(s.body, then_in)
            cfg.link(then_out, after)
            if s.orelse:
                else_in = cfg.new_block()
                cfg.link(cur, else_in)
                cfg.link(self.seq(s.orelse, else_in), after)
            else:
                cfg.link(cur, after)
            return after
        if isinstance(s, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.new_block()
            cfg.link(cur, header)
            cfg.stmt_block[id(s)] = header.id
            header.stmts.append(s)
            if isinstance(s, ast.While):
                # guard re-evaluated each iteration: loop-carried state
                # (the header's merged in-state) is what it sees
                cfg.guard_block[id(s.test)] = header.id
            else:
                # the iterable is evaluated once, before the loop
                cfg.guard_block[id(s.iter)] = cur.id
            after = cfg.new_block()
            body_in = cfg.new_block()
            cfg.link(header, body_in)
            self.loops.append((header, after))
            body_out = self.seq(s.body, body_in)
            self.loops.pop()
            cfg.link(body_out, header)
            if s.orelse:
                else_in = cfg.new_block()
                cfg.link(header, else_in)
                cfg.link(self.seq(s.orelse, else_in), after)
            cfg.link(header, after)
            return after
        if isinstance(s, ast.Try):
            cur.stmts.append(s)
            after = cfg.new_block()
            body_in = cfg.new_block()
            cfg.link(cur, body_in)
            body_out = self.seq(s.body, body_in)
            if s.orelse:
                body_out = self.seq(s.orelse, body_out)
            outs = [body_out]
            for handler in s.handlers:
                h_in = cfg.new_block()
                # conservative: a handler can run with state from anywhere
                # in the body; entry and exit edges over-approximate that
                cfg.link(cur, h_in)
                cfg.link(body_out, h_in)
                cfg.stmt_block[id(handler)] = h_in.id
                outs.append(self.seq(handler.body, h_in))
            if s.finalbody:
                fin_in = cfg.new_block()
                for out in outs:
                    cfg.link(out, fin_in)
                cfg.link(self.seq(s.finalbody, fin_in), after)
            else:
                for out in outs:
                    cfg.link(out, after)
            return after
        if isinstance(s, (ast.With, ast.AsyncWith)):
            cur.stmts.append(s)
            return self.seq(s.body, cur)
        if isinstance(s, ast.Match):
            cur.stmts.append(s)
            after = cfg.new_block()
            for case in s.cases:
                c_in = cfg.new_block()
                cfg.link(cur, c_in)
                cfg.link(self.seq(case.body, c_in), after)
            cfg.link(cur, after)
            return after
        if isinstance(s, (ast.Return, ast.Raise)):
            cur.stmts.append(s)
            cfg.link(cur, cfg.exit)
            return None
        if isinstance(s, ast.Break):
            cur.stmts.append(s)
            if self.loops:
                cfg.link(cur, self.loops[-1][1])
            return None
        if isinstance(s, ast.Continue):
            cur.stmts.append(s)
            if self.loops:
                cfg.link(cur, self.loops[-1][0])
            return None
        cur.stmts.append(s)
        return cur


def build_cfg(func_node: ast.AST) -> CFG:
    """CFG over one function's own statements (nested defs opaque)."""
    cfg = CFG()
    out = _Builder(cfg).seq(func_node.body, cfg.entry)
    cfg.link(out, cfg.exit)
    return cfg
