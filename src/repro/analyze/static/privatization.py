"""PGAS011: privatization candidates (affinity makes the access local).

Two shapes, both cross-checked against the sanitizer's legality rules
(``Upc.can_cast`` is always true for the calling thread's own block, and
a cast is legal exactly when ``can_cast(owner)`` holds — see the dynamic
privatization checker):

* **affinity loops** — inside ``for i in forall.indices(upc, ...,
  affinity=A)`` the iteration ``i`` is owned by the executing thread, so
  an element access ``A.read_elem(upc, i)`` / ``A.write_elem(upc, i,
  v)`` pays shared-pointer translation for provably local data.  The
  reported rewrite is the paper's Fig 3.3 cast:
  ``SharedPointer(A, i).privatize(upc)`` -> ``LocalPointer``.

* **guarded bulk ops** — a ``memget``/``memput`` (or block access)
  issued under an ``if ...can_cast(...)`` guard without
  ``privatized=True`` takes the translated path the guard just proved
  avoidable.

The ``repro.upc`` runtime itself is exempt: it *implements* the
privatized paths this rule points app code at.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analyze.findings import StaticFinding
from repro.analyze.static.loader import FunctionInfo, walk_own

__all__ = ["run"]

#: Bulk/element ops that accept ``privatized=`` and charge the
#: translated path without it.
_PRIVATIZABLE_ATTRS = {
    "memget", "memget_nb", "memput", "memput_nb",
    "get_block", "put_block",
}

#: The runtime implements privatization; pointing it at itself is noise.
_RUNTIME_EXEMPT = ("repro/upc/", "repro/gasnet/")

#: Names bound anywhere inside a suite (loop body, branch body).
def _assigned_names(stmts) -> set:
    names: set = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for t in targets:
                    for sub in ast.walk(t):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
            elif isinstance(node, ast.NamedExpr):
                names.add(node.target.id)
    return names


def _forall_affinity(loop: ast.For) -> Optional[ast.Name]:
    """The ``affinity=A`` array of a ``forall.indices(...)`` loop, if any."""
    call = loop.iter
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    named = (isinstance(func, ast.Attribute) and func.attr == "indices") or \
            (isinstance(func, ast.Name) and func.id == "indices")
    if not named:
        return None
    for kw in call.keywords:
        if kw.arg == "affinity" and isinstance(kw.value, ast.Name):
            return kw.value
    return None


def _has_can_cast(test: ast.expr) -> bool:
    """Whether a branch condition positively includes ``...can_cast(...)``.

    Direct calls and ``and`` conjunctions count; a negated or ``or``-ed
    query does not prove locality on the true branch.
    """
    if isinstance(test, ast.Call):
        return (isinstance(test.func, ast.Attribute)
                and test.func.attr == "can_cast")
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_has_can_cast(v) for v in test.values)
    return False


def run(fn: FunctionInfo) -> List[StaticFinding]:
    if any(fn.module.path.startswith(prefix) for prefix in _RUNTIME_EXEMPT):
        return []
    findings: List[StaticFinding] = []

    def add(node: ast.AST, message: str) -> None:
        findings.append(StaticFinding(
            path=fn.module.path, line=node.lineno, col=node.col_offset,
            rule="PGAS011", symbol=fn.qualname, message=message,
        ))

    for node in walk_own(fn.node):
        # -- shape 1: forall-affinity loops ------------------------------
        if isinstance(node, ast.For):
            arr = _forall_affinity(node)
            if arr is None or not isinstance(node.target, ast.Name):
                continue
            ivar = node.target.id
            rebound = _assigned_names(node.body)
            if arr.id in rebound or ivar in rebound:
                continue
            for call in (c for stmt in node.body for c in ast.walk(stmt)):
                if not (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in ("read_elem", "write_elem")
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id == arr.id
                        and len(call.args) >= 2
                        and isinstance(call.args[1], ast.Name)
                        and call.args[1].id == ivar):
                    continue
                add(call,
                    f"shared access {arr.id}.{call.func.attr}(..., {ivar}) "
                    f"inside upc_forall(affinity={arr.id}) touches only the "
                    "executing thread's own elements; privatize via "
                    f"SharedPointer({arr.id}, {ivar}).privatize(upc) to a "
                    "LocalPointer (legal: can_cast always holds for the "
                    "owner's own block)")
        # -- shape 2: can_cast-guarded bulk ops --------------------------
        elif isinstance(node, ast.If) and _has_can_cast(node.test):
            for call in (c for stmt in node.body for c in ast.walk(stmt)):
                if not (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in _PRIVATIZABLE_ATTRS):
                    continue
                if any(kw.arg == "privatized" for kw in call.keywords):
                    continue
                add(call,
                    f".{call.func.attr}(...) is guarded by "
                    f"'{ast.unparse(node.test)}' (line {node.test.lineno}) "
                    "but issued without privatized=True: the castability "
                    "the guard just proved goes unused and the access pays "
                    "shared-pointer translation")
    return findings
