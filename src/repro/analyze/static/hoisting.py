"""PGAS012: loop-invariant remote accesses and affinity re-queries.

Remote operations cost simulated network time and host cycles; affinity
queries (``can_cast`` & co) are pure functions of the machine topology,
fixed for the whole run.  Three shapes of redundancy:

* **invariant remote reads** — a costed shared read (``memget``,
  ``read_elem``, ``get_block``...) or affinity query inside a loop whose
  receiver/arguments never change across iterations: hoist it (or its
  result) above the loop.  (For a shared *read* this is a candidate, not
  a proof — another thread may be writing; the rule exists to make that
  choice explicit, and the baseline records the accepted ones.)

* **closure calls re-running affinity queries** — a loop calling a
  local closure whose transitive summary performs affinity queries (and
  no collective), with loop-invariant arguments *and* loop-invariant
  captured variables: the castability schedule it recomputes per
  iteration can be precomputed once (the paper's pointer-table idiom).

* **repeated castability queries** — ``can_cast(x)`` evaluated at two
  sites where the first reaches the second (CFG reachability) and ``x``
  is never reassigned in the function: the second query is a re-ask of
  a run-constant answer; keep it in a local (or the prebuilt
  :class:`~repro.upc.pointers.PointerTable`).

The ``repro.upc``/``repro.gasnet`` runtime is exempt (it implements the
primitives the rule reasons about).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analyze.findings import StaticFinding
from repro.analyze.static.callgraph import (
    AFFINITY_ATTRS, CallGraph, SHARED_READ_ATTRS,
)
from repro.analyze.static.cfg import CFG
from repro.analyze.static.loader import FunctionInfo, own_parents, walk_own
from repro.analyze.static.privatization import _assigned_names

__all__ = ["run"]

_RUNTIME_EXEMPT = ("repro/upc/", "repro/gasnet/")

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _free_names(expr: ast.AST) -> set:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _loop_bound_names(loop: ast.stmt) -> set:
    names = _assigned_names(loop.body + getattr(loop, "orelse", []))
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        names |= {n.id for n in ast.walk(loop.target)
                  if isinstance(n, ast.Name)}
    return names


def _enclosing_loops(parents, node: ast.AST) -> List[ast.stmt]:
    """Innermost-first loops containing ``node`` (headers excluded)."""
    loops: List[ast.stmt] = []
    child = node
    while id(child) in parents:
        parent = parents[id(child)]
        if isinstance(parent, _LOOPS):
            header = (parent.test,) if isinstance(parent, ast.While) \
                else (parent.iter, parent.target)
            if child not in header:
                loops.append(parent)
        child = parent
    return loops


def _stmt_of(parents, cfg: CFG, node: ast.AST) -> Optional[int]:
    """The CFG block holding the statement that contains ``node``."""
    child = node
    while child is not None:
        block = cfg.stmt_block.get(id(child))
        if block is not None:
            return block
        child = parents.get(id(child))
    return None


def run(fn: FunctionInfo, cfg: CFG, callgraph: CallGraph) -> List[StaticFinding]:
    if any(fn.module.path.startswith(prefix) for prefix in _RUNTIME_EXEMPT):
        return []
    findings: List[StaticFinding] = []
    parents = own_parents(fn.node)

    def add(node: ast.AST, message: str) -> None:
        findings.append(StaticFinding(
            path=fn.module.path, line=node.lineno, col=node.col_offset,
            rule="PGAS012", symbol=fn.qualname, message=message,
        ))

    can_cast_sites: Dict[str, List[ast.Call]] = {}
    assigned_in_fn = _assigned_names([fn.node])

    for node in walk_own(fn.node):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, (ast.Attribute, ast.Name))):
            continue
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None

        # collect can_cast sites for shape 3
        if attr == "can_cast":
            key = ", ".join(ast.unparse(a) for a in node.args)
            can_cast_sites.setdefault(key, []).append(node)

        loops = _enclosing_loops(parents, node)
        if not loops:
            continue

        # -- shape 1: invariant remote read / affinity query -------------
        if attr in SHARED_READ_ATTRS or attr in AFFINITY_ATTRS:
            invariant_in = None
            for loop in loops:  # innermost first; must clear each level
                if _free_names(node) & _loop_bound_names(loop):
                    break
                invariant_in = loop
            if invariant_in is not None:
                what = ("affinity query" if attr in AFFINITY_ATTRS
                        else "remote read")
                add(node,
                    f"loop-invariant {what} '{ast.unparse(node)}' "
                    f"(loop at line {invariant_in.lineno}): receiver and "
                    "arguments never change across iterations; hoist it "
                    "(or its result) above the loop")
            continue

        # -- shape 2: closure re-running affinity queries ----------------
        callee = callgraph.project.resolve_call(node.func, fn)
        if callee is None or callee.parent is None:
            continue
        summary = callgraph.summary(callee)
        if not summary.affinity or summary.collective:
            continue
        loop = loops[0]
        bound = _loop_bound_names(loop)
        arg_names = set()
        for arg in node.args:
            arg_names |= _free_names(arg)
        for kw in node.keywords:
            arg_names |= _free_names(kw.value)
        if (arg_names | callee.free_names()) & bound:
            continue
        add(node,
            f"call to closure {callee.name}() inside the loop at line "
            f"{loop.lineno} re-runs its affinity/castability queries every "
            "iteration although its arguments and captured variables are "
            "loop-invariant; precompute the castability schedule once "
            "before the loop (pointer-table idiom)")

    # -- shape 3: repeated castability queries ---------------------------
    for key in sorted(can_cast_sites):
        sites = sorted(can_cast_sites[key],
                       key=lambda c: (c.lineno, c.col_offset))
        if len(sites) < 2:
            continue
        if _free_names_of_args(sites[0]) & assigned_in_fn:
            continue
        first = sites[0]
        first_block = _stmt_of(parents, cfg, first)
        for later in sites[1:]:
            later_block = _stmt_of(parents, cfg, later)
            if first_block is None or later_block is None:
                continue
            same_block = first_block == later_block
            if same_block or cfg.reaches(first_block, later_block):
                add(later,
                    f"castability can_cast({key}) was already queried at "
                    f"line {first.lineno} and its inputs are never "
                    "reassigned; the answer is fixed for the run — keep it "
                    "in a local (or use the prebuilt pointer table)")

    return findings


def _free_names_of_args(call: ast.Call) -> set:
    names: set = set()
    for arg in call.args:
        names |= _free_names(arg)
    return names
