"""Canonical JSON report for the static analyzer.

Byte-deterministic by construction: findings arrive sorted, keys are
sorted, counters use registered names from :mod:`repro.obs.names`, and
nothing host- or time-dependent (timestamps, absolute paths, versions)
is recorded.  Running the analyzer twice over the same tree must
produce identical bytes — CI diffs the artifact on that promise.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.obs import names
from repro.analyze.static.baseline import BaselineDiff, fingerprint_findings

__all__ = ["build_report", "to_json", "render_text"]

REPORT_SCHEMA = 1


def build_report(result, diff: Optional[BaselineDiff] = None) -> Dict:
    """The canonical report document for one analysis run.

    ``result`` is an :class:`~repro.analyze.static.AnalysisResult`;
    ``diff`` (when gating) adds the baseline verdict.
    """
    doc = {
        "schema": REPORT_SCHEMA,
        "tool": "repro.analyze.static",
        "counters": {
            names.STATIC_FILES: result.files,
            names.STATIC_FUNCTIONS: result.functions,
            names.STATIC_FINDINGS: len(result.findings),
            names.STATIC_SUPPRESSED: result.suppressed,
            names.STATIC_BASELINED: diff.matched if diff else 0,
        },
        "findings": [
            {**f.row(), "fingerprint": digest}
            for f, digest in fingerprint_findings(result.findings)
        ],
    }
    if diff is not None:
        doc["baseline"] = {
            "clean": diff.clean,
            "matched": diff.matched,
            "new": [{**f.row(), "fingerprint": digest}
                    for f, digest in diff.new],
            "stale": diff.stale,
        }
    return doc


def to_json(doc: Dict) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_text(result, diff: Optional[BaselineDiff] = None) -> str:
    """Human-readable summary (CLI stdout)."""
    lines = []
    if diff is None:
        lines += [str(f) for f in result.findings]
        lines.append(
            f"{len(result.findings)} finding(s) over {result.files} file(s), "
            f"{result.functions} function(s); {result.suppressed} noqa-"
            "suppressed"
        )
    else:
        for f, _digest in diff.new:
            lines.append(f"NEW  {f}")
        for entry in diff.stale:
            lines.append(
                f"STALE {entry['path']} {entry['rule']} "
                f"[{entry['fingerprint']}] {entry['message']}"
            )
        verdict = "clean" if diff.clean else (
            f"{len(diff.new)} new finding(s), {len(diff.stale)} stale "
            "baseline entr(ies)"
        )
        lines.append(
            f"baseline check: {verdict}; {diff.matched} baselined, "
            f"{result.suppressed} noqa-suppressed, {result.files} file(s) "
            "scanned"
        )
    return "\n".join(lines)
