"""Thread-dependence ("single-valued") taint analysis.

The PGAS collective-alignment discipline (DESIGN.md §9, Titanium's
single-valued qualifier) requires every thread to execute the same
collective sequence.  This module computes, flow-sensitively over a
function's CFG, which local names hold *thread-dependent* values — ones
that may differ across UPC threads at the same program point:

* ``upc.MYTHREAD``, ``upc.rng`` draws, ``upc.wtime()`` (threads'
  simulated clocks agree only at barriers);
* affinity/castability queries: ``can_cast(...)``,
  ``peers_sharing_memory()``, ``shared_memory_group(...)``,
  hierarchy coordinates (``my_node``/``my_socket``/``pu``);
* ``upc_forall`` iteration (``forall.indices(...)`` yields each thread
  its own index subset);
* anything computed from the above.

Taint propagates through assignments (tuple-to-tuple unpacking is
element-wise, so ``me, T = upc.MYTHREAD, upc.THREADS`` taints only
``me``), loop targets, and ``with ... as`` bindings.  In-place mutation
through method calls (``upc.rng.shuffle(xs)``) is *not* tracked — a
documented under-approximation; the dynamic collective checker remains
the runtime backstop.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional

from repro.analyze.static.cfg import CFG

__all__ = ["TaintState", "expr_tainted", "analyze_taint"]

#: Attribute reads that are thread-dependent whatever the receiver.
TAINT_ATTRS = {"MYTHREAD", "rng", "my_node", "my_socket", "pu"}

#: Method names whose call result is thread-dependent regardless of args.
TAINT_CALL_ATTRS = {
    "can_cast", "peers_sharing_memory", "supernode_peers", "wtime",
    "indices",  # forall.indices: each thread iterates its own subset
}

#: Plain-name calls whose result is thread-dependent.
TAINT_CALL_NAMES = {"shared_memory_group", "indices"}


def expr_tainted(expr: ast.expr, env: FrozenSet[str]) -> bool:
    """Whether ``expr`` may evaluate differently on different threads."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in env:
            return True
        if isinstance(node, ast.Attribute) and node.attr in TAINT_ATTRS:
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in TAINT_CALL_ATTRS:
                return True
            if isinstance(func, ast.Name) and func.id in TAINT_CALL_NAMES:
                return True
    return False


def _assign(target: ast.expr, value: Optional[ast.expr], env: set,
            value_tainted: Optional[bool] = None) -> None:
    """Strong update of ``env`` for one assignment target."""
    if (isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple)
            and len(target.elts) == len(value.elts)):
        for t, v in zip(target.elts, value.elts):
            _assign(t, v, env)
        return
    if value_tainted is None:
        value_tainted = value is not None and expr_tainted(value, env)
    if isinstance(target, ast.Name):
        (env.add if value_tainted else env.discard)(target.id)
    elif isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                (env.add if value_tainted else env.discard)(sub.id)
    # Subscript/Attribute targets: container mutation is not tracked


def _transfer(stmt: ast.stmt, env: set) -> None:
    """Apply one statement's effect on the taint environment, in place.

    Compound statements contribute only their headers here (guards do
    not assign; a ``for`` binds its target); their bodies live in other
    blocks of the CFG.
    """
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            _assign(target, stmt.value, env)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        _assign(stmt.target, stmt.value, env)
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            if expr_tainted(stmt.value, env):
                env.add(stmt.target.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        _assign(stmt.target, None, env,
                value_tainted=expr_tainted(stmt.iter, env))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                _assign(item.optional_vars, item.context_expr, env)
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.NamedExpr):
        _assign(stmt.value.target, stmt.value.value, env)


class TaintState:
    """Per-block taint environments plus guard lookups for one function."""

    def __init__(self, cfg: CFG, entry_env: Dict[int, FrozenSet[str]],
                 exit_env: Dict[int, FrozenSet[str]]):
        self.cfg = cfg
        self.entry_env = entry_env
        self.exit_env = exit_env

    def guard_env(self, guard_expr: ast.expr) -> FrozenSet[str]:
        """Taint environment live when a recorded guard is evaluated."""
        block = self.cfg.guard_block.get(id(guard_expr))
        if block is None:
            # unknown site: be conservative, union everything
            out: set = set()
            for env in self.exit_env.values():
                out |= env
            return frozenset(out)
        return self.exit_env[block]

    def guard_tainted(self, guard_expr: ast.expr) -> bool:
        return expr_tainted(guard_expr, self.guard_env(guard_expr))


def analyze_taint(cfg: CFG, seed: FrozenSet[str] = frozenset()) -> TaintState:
    """Fixed-point taint dataflow over one function's CFG.

    ``seed`` pre-taints names (closure captures known to be
    thread-dependent in the enclosing scope).
    """
    entry: Dict[int, set] = {b.id: set() for b in cfg.blocks}
    exit_: Dict[int, set] = {b.id: set() for b in cfg.blocks}
    entry[cfg.entry.id] = set(seed)

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            env = set(entry[block.id])
            if block.id != cfg.entry.id:
                for pred in cfg.preds(block):
                    env |= exit_[pred.id]
                if env != entry[block.id]:
                    entry[block.id] = set(env)
                    changed = True
            out = set(env)
            for stmt in block.stmts:
                _transfer(stmt, out)
            if out != exit_[block.id]:
                exit_[block.id] = out
                changed = True
    return TaintState(
        cfg,
        {k: frozenset(v) for k, v in entry.items()},
        {k: frozenset(v) for k, v in exit_.items()},
    )
