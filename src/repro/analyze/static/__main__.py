"""CLI for the static PGAS analyzer (the ``lint-analyze`` CI gate).

Usage::

    python -m repro.analyze.static                    # scan src/repro
    python -m repro.analyze.static --check            # gate vs baseline
    python -m repro.analyze.static --update-baseline  # accept current set
    python -m repro.analyze.static --json report.json # canonical report

Default scan root is the installed ``repro`` package tree; the default
baseline is ``analyze-baseline.json`` at the repo root (two levels above
the package, the ``src`` layout).  Exit codes: 0 clean, 1 findings (or
baseline drift under ``--check``), 2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analyze.static import analyze_project, load_sources, load_tree
from repro.analyze.static.baseline import (
    compare, load_baseline, render_baseline,
)
from repro.analyze.static.report import build_report, render_text, to_json


def _default_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _load(paths: List[str]):
    if not paths:
        return load_tree(_default_root())
    if len(paths) == 1 and Path(paths[0]).is_dir():
        return load_tree(Path(paths[0]))
    sources = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            sources.extend(
                (f.read_text(encoding="utf-8"), str(f))
                for f in sorted(path.rglob("*.py"))
            )
        else:
            sources.append((path.read_text(encoding="utf-8"), str(path)))
    return load_sources(sources)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze.static",
        description="Flow-aware static PGAS analyzer (rules PGAS001-012).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or a package directory to analyze "
                             "(default: the installed repro package)")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed baseline: fail on "
                             "new findings AND on stale baseline entries")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline path (default: analyze-baseline.json "
                             "at the repo root)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the current findings as the new baseline")
    parser.add_argument("--json", metavar="FILE",
                        help="also write the canonical JSON report to FILE")
    parser.add_argument("--no-flow", action="store_true",
                        help="legacy rules only (skip CFG/dataflow passes)")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline) if args.baseline else \
        _default_root().parents[1] / "analyze-baseline.json"

    project = _load(list(args.paths))
    result = analyze_project(project, flow=not args.no_flow)

    if args.update_baseline:
        baseline_path.write_text(render_baseline(result.findings),
                                 encoding="utf-8")
        print(f"baseline written to {baseline_path} "
              f"({len(result.findings)} finding(s))")
        if args.json:
            Path(args.json).write_text(to_json(build_report(result)),
                                       encoding="utf-8")
        return 0

    diff = None
    if args.check:
        if not baseline_path.is_file():
            print(f"error: no baseline at {baseline_path} (run "
                  "--update-baseline first)", file=sys.stderr)
            return 2
        try:
            diff = compare(result.findings, load_baseline(baseline_path))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    print(render_text(result, diff))
    if args.json:
        Path(args.json).write_text(to_json(build_report(result, diff)),
                                   encoding="utf-8")
        print(f"report written to {args.json}")
    if diff is not None:
        return 0 if diff.clean else 1
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
