"""Flow-aware static PGAS analyzer (DESIGN.md §14).

The pipeline: :mod:`.loader` parses a tree into a :class:`Project`
(modules + symbol table), :mod:`.cfg` builds per-function control-flow
graphs, :mod:`.callgraph` resolves calls and computes effect summaries,
and the passes walk SPMD functions:

* :mod:`.legacy`        — PGAS001-004 (the original linter, re-homed);
* :mod:`.alignment`     — PGAS010 collective alignment;
* :mod:`.privatization` — PGAS011 privatization candidates;
* :mod:`.hoisting`      — PGAS012 loop-invariant remote accesses.

``# noqa: PGASxxx`` suppresses a finding on its line; ids must name a
known rule or they are themselves findings (PGAS009).  The CLI
(``python -m repro.analyze.static``) emits a canonical JSON report and
gates against the committed ``analyze-baseline.json`` (``--check``);
see :mod:`.baseline` for the ratchet semantics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analyze.findings import RULES, StaticFinding
from repro.analyze.static import (
    alignment, hoisting, legacy, privatization,
)
from repro.analyze.static.callgraph import CallGraph
from repro.analyze.static.cfg import build_cfg
from repro.analyze.static.dataflow import analyze_taint
from repro.analyze.static.loader import (
    FunctionInfo, ModuleInfo, Project, load_sources, load_tree,
)

__all__ = [
    "AnalysisResult", "analyze_project", "analyze_tree", "analyze_source",
    "load_tree", "load_sources", "Project",
]

_NOQA_RE = re.compile(r"#\s*noqa:\s*([A-Z0-9, ]+)")
#: Ids in our namespace: only these are audited against RULES, so other
#: tools' codes on shared noqa lines (E402, BLE001...) pass through.
_PGAS_ID_RE = re.compile(r"PGAS\d+")


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced (post-noqa, sorted)."""

    findings: List[StaticFinding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    functions: int = 0


def _noqa_map(module: ModuleInfo) -> Dict[int, Tuple[int, Set[str]]]:
    """``lineno -> (column, codes)`` for every noqa comment in a module."""
    table: Dict[int, Tuple[int, Set[str]]] = {}
    for lineno, line in enumerate(module.lines, start=1):
        match = _NOQA_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            table[lineno] = (match.start(), codes)
    return table


def _apply_noqa(project: Project,
                findings: List[StaticFinding]) -> Tuple[List[StaticFinding], int]:
    """Suppress per-line, flag unknown PGAS ids (PGAS009), sort, dedup."""
    tables = {}
    audited = list(findings)
    for module in project.modules:
        tables[module.path] = table = _noqa_map(module)
        for lineno, (col, codes) in table.items():
            for code in sorted(codes):
                if _PGAS_ID_RE.fullmatch(code) and code not in RULES:
                    audited.append(StaticFinding(
                        path=module.path, line=lineno, col=col,
                        rule="PGAS009",
                        symbol=module.function_at(lineno),
                        message=(f"unknown rule id {code!r} in noqa "
                                 "suppression: it suppresses nothing "
                                 "(known ids: PGAS000-PGAS012)"),
                    ))
    kept: List[StaticFinding] = []
    suppressed = 0
    for f in audited:
        entry = tables.get(f.path, {}).get(f.line)
        if entry is not None and f.rule in entry[1]:
            suppressed += 1
        else:
            kept.append(f)
    return sorted(set(kept)), suppressed


def analyze_project(project: Project, flow: bool = True) -> AnalysisResult:
    """Run every pass over an already-loaded project."""
    findings: List[StaticFinding] = []
    functions = 0
    for module in project.modules:
        if module.tree is None:
            exc = module.syntax_error
            findings.append(StaticFinding(
                path=module.path, line=exc.lineno or 0, col=exc.offset or 0,
                rule="PGAS000", symbol="",
                message=f"syntax error: {exc.msg}",
            ))
            continue
        findings.extend(legacy.run(module))
    if flow:
        callgraph = CallGraph(project)

        def analyze_fn(fn: FunctionInfo, seed: frozenset) -> None:
            nonlocal functions
            cfg = build_cfg(fn.node)
            taint = analyze_taint(cfg, seed)
            if fn.is_spmd:
                functions += 1
                findings.extend(alignment.run(fn, taint, callgraph))
                findings.extend(privatization.run(fn))
                findings.extend(hoisting.run(fn, cfg, callgraph))
            # seed closures with captures tainted anywhere in this scope
            ever: Set[str] = set()
            for env in taint.entry_env.values():
                ever |= env
            for env in taint.exit_env.values():
                ever |= env
            for child in fn.children.values():
                analyze_fn(child, frozenset(ever & child.free_names()))

        for module in project.modules:
            for fn in module.functions:
                if fn.parent is None:
                    analyze_fn(fn, frozenset())
    kept, suppressed = _apply_noqa(project, findings)
    return AnalysisResult(
        findings=kept,
        suppressed=suppressed,
        files=len(project.modules),
        functions=functions,
    )


def analyze_tree(root, flow: bool = True) -> AnalysisResult:
    """Load and analyze every ``*.py`` under a package directory."""
    return analyze_project(load_tree(root), flow=flow)


def analyze_source(source: str, path: str = "<string>",
                   flow: bool = True) -> AnalysisResult:
    """Analyze one source string (tests, fixtures, the lint shim)."""
    return analyze_project(load_sources([(source, path)]), flow=flow)
