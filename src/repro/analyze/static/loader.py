"""Module loader and symbol table for the static PGAS analyzer.

A :class:`Project` holds every parsed module under one root, plus a
symbol table of all functions (including nested closures and methods)
keyed by their dotted names, and an import map per module so calls like
``collectives.exchange(...)`` or ``shared_memory_group(upc)`` resolve to
the :class:`FunctionInfo` that defines them.

Paths are recorded tree-relative in posix form (``repro/upc/forall.py``)
so reports and the committed baseline are independent of where the
checkout lives.  Files that fail to parse become modules with
``tree is None``; the driver turns those into PGAS000 findings.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FunctionInfo", "ModuleInfo", "Project",
    "load_tree", "load_sources", "walk_own", "own_parents",
]

#: Parameter names that mark a function as SPMD code: the body runs once
#: per UPC thread (or MPI rank) against that thread's context object.
#: Nested functions inherit the property from their enclosing scope.
SPMD_PARAMS = ("upc", "rank")

#: Scopes the analyzer does not descend into when walking a function's
#: *own* code (each nested function is analyzed separately).
_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def own_parents(func_node: ast.AST) -> Dict[int, ast.AST]:
    """``id(child) -> parent`` map over one scope (nested defs opaque)."""
    parents: Dict[int, ast.AST] = {}
    stack = [func_node]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            if not isinstance(child, _NESTED_SCOPES):
                stack.append(child)
    return parents


def walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that stays inside one scope (skips nested defs)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _NESTED_SCOPES):
            stack.extend(ast.iter_child_nodes(child))


class FunctionInfo:
    """One function (or method, or closure) in the symbol table."""

    def __init__(self, name: str, qualname: str, node: ast.AST,
                 module: "ModuleInfo", parent: Optional["FunctionInfo"]):
        self.name = name
        self.qualname = qualname          #: dotted path inside the module
        self.node = node
        self.module = module
        self.parent = parent
        self.children: Dict[str, "FunctionInfo"] = {}

    @property
    def full_name(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    @property
    def params(self) -> Tuple[str, ...]:
        a = self.node.args
        return tuple(p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs))

    @property
    def is_spmd(self) -> bool:
        """True when the body executes per-thread (or is nested in one)."""
        if any(p in SPMD_PARAMS for p in self.params):
            return True
        return self.parent.is_spmd if self.parent is not None else False

    def local_names(self) -> set:
        """Names bound inside this function's own scope (params included)."""
        bound = set(self.params)
        for node in walk_own(self.node):
            bound.update(_bound_names(node))
        return bound

    def free_names(self) -> set:
        """Names read but never bound here: closure captures + globals."""
        bound = self.local_names()
        return {
            n.id for n in walk_own(self.node)
            if isinstance(n, ast.Name) and n.id not in bound
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.full_name}>"


def _bound_names(node: ast.AST) -> Iterator[str]:
    """Names a single statement binds (assignment targets, defs, etc.)."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            for sub in ast.walk(t):
                if isinstance(sub, ast.Name):
                    yield sub.id
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        for sub in ast.walk(node.target):
            if isinstance(sub, ast.Name):
                yield sub.id
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            if item.optional_vars is not None:
                for sub in ast.walk(item.optional_vars):
                    if isinstance(sub, ast.Name):
                        yield sub.id
    elif isinstance(node, ast.NamedExpr):
        yield node.target.id
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield node.name
    elif isinstance(node, ast.ExceptHandler) and node.name:
        yield node.name
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            yield (alias.asname or alias.name).split(".")[0]


class ModuleInfo:
    """One parsed source file: AST, functions, imports, raw lines."""

    def __init__(self, name: str, path: str, source: str):
        self.name = name                  #: dotted module name
        self.path = path                  #: tree-relative posix path
        self.source = source
        self.lines = source.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self.functions: List[FunctionInfo] = []
        self.imports: Dict[str, str] = {}  #: local name -> dotted origin
        if self.tree is not None:
            self._collect_functions(self.tree, parent=None, prefix="")
            self._collect_imports()

    # -- construction ----------------------------------------------------

    def _collect_functions(self, scope: ast.AST, parent: Optional[FunctionInfo],
                           prefix: str) -> None:
        # walk the whole scope (defs hide inside if/loop/try bodies too),
        # stopping at nested scopes, which recurse with themselves as parent
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                info = FunctionInfo(node.name, qualname, node, self, parent)
                self.functions.append(info)
                if parent is not None:
                    parent.children[node.name] = info
                self._collect_functions(node, info, f"{qualname}.")
            elif isinstance(node, ast.ClassDef):
                # methods: parentless (class attrs are not a call scope)
                self._collect_functions(node, None, f"{prefix}{node.name}.")
            elif not isinstance(node, ast.Lambda):
                stack.extend(ast.iter_child_nodes(node))

    def _collect_imports(self) -> None:
        package = self.name.rsplit(".", 1)[0] if "." in self.name else ""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = self.name.split(".")
                    parts = parts[: len(parts) - node.level]
                    base = ".".join(parts + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = \
                        f"{base}.{alias.name}" if base else alias.name

    # -- queries ---------------------------------------------------------

    def top_level(self, name: str) -> Optional[FunctionInfo]:
        for fn in self.functions:
            if fn.parent is None and fn.qualname == name:
                return fn
        return None

    def function_at(self, line: int) -> str:
        """Dotted name of the innermost function containing ``line``."""
        best = ""
        best_span = None
        for fn in self.functions:
            lo, hi = fn.node.lineno, fn.node.end_lineno or fn.node.lineno
            if lo <= line <= hi:
                span = hi - lo
                if best_span is None or span <= best_span:
                    best, best_span = fn.qualname, span
        return best


class Project:
    """All modules under one root, plus cross-module call resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = sorted(modules, key=lambda m: m.path)
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in self.modules}

    @property
    def functions(self) -> Iterator[FunctionInfo]:
        for module in self.modules:
            yield from module.functions

    def _lookup_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """``pkg.mod.fn`` -> FunctionInfo, or None."""
        if "." not in dotted:
            return None
        mod_name, _, fn_name = dotted.rpartition(".")
        module = self.by_name.get(mod_name)
        return module.top_level(fn_name) if module else None

    def resolve_call(self, func_expr: ast.expr,
                     scope: Optional[FunctionInfo]) -> Optional[FunctionInfo]:
        """Resolve a call's ``func`` expression to a project function.

        Handles: sibling/enclosing closures, same-module top-level
        functions, ``from x import f`` names and ``mod.f`` attribute
        calls through an imported module.  Returns None for anything
        dynamic (methods on objects, builtins, unresolved imports).
        """
        if isinstance(func_expr, ast.Name):
            name = func_expr.id
            walk = scope
            while walk is not None:
                if name in walk.children:
                    return walk.children[name]
                walk = walk.parent
            module = scope.module if scope else None
            if module is not None:
                top = module.top_level(name)
                if top is not None:
                    return top
                origin = module.imports.get(name)
                if origin:
                    return self._lookup_dotted(origin)
        elif isinstance(func_expr, ast.Attribute) and \
                isinstance(func_expr.value, ast.Name):
            module = scope.module if scope else None
            if module is not None:
                origin = module.imports.get(func_expr.value.id)
                if origin and origin in self.by_name:
                    return self.by_name[origin].top_level(func_expr.attr)
        return None


def load_tree(root: Path) -> Project:
    """Parse every ``*.py`` under ``root`` (a package directory).

    Module names and display paths are rooted at ``root.name``, so
    loading ``src/repro`` yields modules named ``repro.upc.forall`` at
    paths like ``repro/upc/forall.py``.
    """
    root = Path(root)
    modules = []
    for file in sorted(root.rglob("*.py")):
        rel = file.relative_to(root)
        parts = (root.name, *rel.parts[:-1])
        stem = rel.stem
        name = ".".join(parts if stem == "__init__" else (*parts, stem))
        display = (Path(root.name) / rel).as_posix()
        modules.append(ModuleInfo(name, display,
                                  file.read_text(encoding="utf-8")))
    return Project(modules)


def load_sources(sources: Iterable[Tuple[str, str]]) -> Project:
    """Build a project from ``(source, path)`` pairs (tests, lint shim)."""
    modules = []
    for source, path in sources:
        posix = Path(path).as_posix()
        name = Path(path).stem
        modules.append(ModuleInfo(name, posix, source))
    return Project(modules)
