"""PGAS001-004 re-homed onto the static framework (one walker).

Same rules as the original flat linter (see the module docstring of
:mod:`repro.analyze.lint`, which is now a thin shim over this pass):
wall clocks in simulated code, dropped costed generators, literal
metric names, ``SharedArray._data`` pokes.  Emits
:class:`~repro.analyze.findings.StaticFinding` like every other pass,
so the noqa mechanism, report and baseline are shared.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analyze.findings import StaticFinding
from repro.analyze.static.loader import ModuleInfo

__all__ = ["run"]

#: module-level callables that read the host's wall clock
_WALLCLOCK_TIME = {"time", "monotonic", "perf_counter", "process_time", "time_ns",
                   "monotonic_ns", "perf_counter_ns"}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}

#: methods returning simulated generators whose bare call is a no-op
_COSTED_GENERATORS = {
    "read_elem", "write_elem", "get_block", "put_block",
    "barrier", "barrier_notify", "barrier_wait",
    "compute", "compute_flops", "local_stream", "stream_from",
    "charge_shared_accesses", "memput", "memget", "am_roundtrip",
}

#: StatsCollector emitters whose first argument is a metric name
_STATS_EMITTERS = {"count", "add", "record"}

#: path suffixes (posix) where the wall clock is legitimate: the harness
#: measures wall time by design, and the host profiler's whole job is to
#: read ``perf_counter_ns`` around simulated code.
_WALLCLOCK_ALLOWED = ("repro/harness/", "repro/obs/profile/host.py")

#: path suffixes allowed to touch SharedArray._data
_DATA_ALLOWED = ("repro/upc/shared.py",)


def _is_stats_receiver(expr: ast.expr) -> bool:
    """``stats.count(...)``, ``self.stats.add(...)``, ``profiler.record(...)``.

    Profiler receivers (``repro.obs.profile``) emit under the same
    registered-name discipline as StatsCollector, so a literal metric
    name through either is the same lint error.
    """
    if isinstance(expr, ast.Name):
        return (expr.id in ("stats", "profiler")
                or expr.id.endswith(("_stats", "_profiler")))
    if isinstance(expr, ast.Attribute):
        return (expr.attr in ("stats", "profiler")
                or expr.attr.endswith(("_stats", "_profiler")))
    return False


def run(module: ModuleInfo) -> List[StaticFinding]:
    findings: List[StaticFinding] = []
    posix = module.path
    allow_wallclock = any(suffix in posix for suffix in _WALLCLOCK_ALLOWED)
    allow_data = any(posix.endswith(suffix) for suffix in _DATA_ALLOWED)

    def add(node: ast.AST, rule: str, message: str) -> None:
        findings.append(StaticFinding(
            path=module.path, line=node.lineno, col=node.col_offset,
            rule=rule, symbol=module.function_at(node.lineno),
            message=message,
        ))

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            # PGAS001 ----------------------------------------------------
            if (not allow_wallclock and isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)):
                mod, attr = func.value.id, func.attr
                if (mod == "time" and attr in _WALLCLOCK_TIME) or (
                    mod in ("datetime", "date") and attr in _WALLCLOCK_DATETIME
                ):
                    add(node, "PGAS001",
                        f"wall-clock call {mod}.{attr}() in simulated code "
                        "(use upc.wtime() / sim.now)")
            # PGAS003 ----------------------------------------------------
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _STATS_EMITTERS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and _is_stats_receiver(func.value)
            ):
                add(node, "PGAS003",
                    f"metric name {node.args[0].value!r} is a string literal; "
                    "use a constant from repro.obs.names")
        elif isinstance(node, ast.Expr):
            # PGAS002 ----------------------------------------------------
            call = node.value
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _COSTED_GENERATORS
            ):
                add(node, "PGAS002",
                    f"bare call to costed generator .{call.func.attr}(...): "
                    "the generator is dropped and the operation never "
                    "happens; drive it with 'yield from'")
        elif isinstance(node, ast.Attribute):
            # PGAS004 ----------------------------------------------------
            if node.attr == "_data" and not allow_data:
                add(node, "PGAS004",
                    "._data accessed outside SharedArray's accessors "
                    "(bypasses cost charging and the sanitizer)")
    return findings
