"""Call graph and effect summaries spanning apps down into repro.upc.

For every function in the project this computes a :class:`Summary` of
the PGAS effects its body may perform, directly or through calls the
symbol table can resolve (closures, same-module functions, imported
project functions):

* ``collective``    — barrier / split-phase barrier / team collective;
* ``shared_read``   — costed reads of remote shared data;
* ``shared_write``  — costed writes of remote shared data;
* ``affinity``      — castability / locality queries (``can_cast`` and
  friends), whose results are fixed for a run.

Functions defined in a ``collectives`` module are collective *by
contract* even when their implementation is pairwise (the UPC spec's
broadcast/reduce/exchange must be called by every thread), which is
exactly what the alignment pass needs to know.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analyze.static.loader import FunctionInfo, Project, walk_own

__all__ = [
    "Summary", "CallGraph",
    "COLLECTIVE_ATTRS", "SHARED_READ_ATTRS", "SHARED_WRITE_ATTRS",
    "AFFINITY_ATTRS",
]

#: Method names that are collective primitives wherever they appear
#: (Upc.barrier*, team/group barriers, named collective gates, shared
#: allocation).
COLLECTIVE_ATTRS = {
    "barrier", "barrier_notify", "barrier_wait", "all_alloc", "collective",
}

#: Costed shared-data reads (one-sided gets and element reads).
SHARED_READ_ATTRS = {
    "memget", "memget_nb", "read_elem", "get_block", "am_roundtrip",
}

#: Costed shared-data writes (one-sided puts and element writes).
SHARED_WRITE_ATTRS = {"memput", "memput_nb", "write_elem", "put_block"}

#: Affinity / castability queries: results are topological, fixed for
#: the whole run (crashes remove threads but never re-map memory).
AFFINITY_ATTRS = {"can_cast", "peers_sharing_memory", "supernode_peers"}


@dataclass
class Summary:
    collective: bool = False
    shared_read: bool = False
    shared_write: bool = False
    affinity: bool = False

    def merge(self, other: "Summary") -> bool:
        """Absorb ``other``; True when anything changed."""
        before = (self.collective, self.shared_read,
                  self.shared_write, self.affinity)
        self.collective |= other.collective
        self.shared_read |= other.shared_read
        self.shared_write |= other.shared_write
        self.affinity |= other.affinity
        return before != (self.collective, self.shared_read,
                          self.shared_write, self.affinity)


def _local_summary(fn: FunctionInfo) -> Summary:
    s = Summary()
    if fn.module.name.rsplit(".", 1)[-1] == "collectives":
        s.collective = True
    for node in walk_own(fn.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in COLLECTIVE_ATTRS:
                s.collective = True
            if attr in SHARED_READ_ATTRS:
                s.shared_read = True
            if attr in SHARED_WRITE_ATTRS:
                s.shared_write = True
            if attr in AFFINITY_ATTRS:
                s.affinity = True
    return s


class CallGraph:
    """Resolved call sites + fixed-point effect summaries."""

    def __init__(self, project: Project):
        self.project = project
        self.summaries: Dict[FunctionInfo, Summary] = {}
        #: per function: [(call node, resolved callee or None)]
        self.calls: Dict[FunctionInfo, List[Tuple[ast.Call,
                                                  Optional[FunctionInfo]]]] = {}
        for fn in project.functions:
            self.summaries[fn] = _local_summary(fn)
            sites = []
            for node in walk_own(fn.node):
                if isinstance(node, ast.Call):
                    sites.append((node, project.resolve_call(node.func, fn)))
            self.calls[fn] = sites
        # propagate callee effects to callers until stable
        changed = True
        while changed:
            changed = False
            for fn, sites in self.calls.items():
                summary = self.summaries[fn]
                for _node, callee in sites:
                    if callee is not None and \
                            summary.merge(self.summaries[callee]):
                        changed = True

    def summary(self, fn: FunctionInfo) -> Summary:
        return self.summaries[fn]

    def is_collective_call(self, call: ast.Call,
                           scope: FunctionInfo) -> Optional[str]:
        """Why ``call`` is a collective, or None.

        Either a primitive by method name, or a resolved callee whose
        summary (transitively) performs a collective.
        """
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in COLLECTIVE_ATTRS:
            return f"collective primitive .{func.attr}()"
        callee = self.project.resolve_call(func, scope)
        if callee is not None and self.summaries[callee].collective:
            return f"call to {callee.name}(), which performs a collective"
        return None
