"""Suppression baseline: the ratchet behind ``--check``.

The committed ``analyze-baseline.json`` records the accepted findings
as stable fingerprints — a hash of (rule, path, symbol, message, nth
occurrence), deliberately *not* line numbers, so unrelated edits to a
file don't invalidate its entries.  The gate fails on **both** sides of
a drift:

* a finding with no baseline entry — new debt; fix it or re-baseline
  deliberately (``--update-baseline``);
* a baseline entry with no finding — stale suppression; the gate makes
  the ratchet click forward instead of letting dead entries accumulate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analyze.findings import StaticFinding

__all__ = [
    "BASELINE_SCHEMA", "BaselineDiff",
    "fingerprint_findings", "load_baseline", "render_baseline", "compare",
]

BASELINE_SCHEMA = 1


def fingerprint_findings(
    findings: Iterable[StaticFinding],
) -> List[Tuple[StaticFinding, str]]:
    """Stable ``(finding, fingerprint)`` pairs, in finding sort order.

    Duplicate (rule, path, symbol, message) tuples are disambiguated by
    occurrence index in line order, so two identical messages in one
    function baseline independently.
    """
    counts: Dict[Tuple, int] = {}
    out = []
    for f in sorted(findings):
        key = (f.rule, f.path, f.symbol, f.message)
        counts[key] = occurrence = counts.get(key, 0) + 1
        digest = hashlib.sha1(
            "|".join((f.rule, f.path, f.symbol, f.message,
                      str(occurrence))).encode("utf-8")
        ).hexdigest()[:16]
        out.append((f, digest))
    return out


def render_baseline(findings: Iterable[StaticFinding]) -> str:
    """Canonical baseline JSON for the given findings."""
    suppressions = [
        {
            "fingerprint": digest,
            "rule": f.rule,
            "path": f.path,
            "symbol": f.symbol,
            "message": f.message,
        }
        for f, digest in fingerprint_findings(findings)
    ]
    suppressions.sort(key=lambda s: (s["path"], s["rule"], s["fingerprint"]))
    doc = {
        "schema": BASELINE_SCHEMA,
        "tool": "repro.analyze.static",
        "suppressions": suppressions,
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def load_baseline(path: Path) -> Dict[str, Dict]:
    """``fingerprint -> entry`` from a baseline file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {doc.get('schema')!r} != {BASELINE_SCHEMA} "
            f"({path})"
        )
    return {s["fingerprint"]: s for s in doc.get("suppressions", ())}


@dataclass
class BaselineDiff:
    """--check verdict: green iff both ``new`` and ``stale`` are empty."""

    new: List[Tuple[StaticFinding, str]] = field(default_factory=list)
    matched: int = 0
    stale: List[Dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def compare(findings: Iterable[StaticFinding],
            baseline: Dict[str, Dict]) -> BaselineDiff:
    diff = BaselineDiff()
    seen = set()
    for f, digest in fingerprint_findings(findings):
        if digest in baseline:
            diff.matched += 1
            seen.add(digest)
        else:
            diff.new.append((f, digest))
    diff.stale = sorted(
        (entry for fp, entry in baseline.items() if fp not in seen),
        key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
    )
    return diff
