"""PGAS010: collective alignment (static single-valuedness check).

Every UPC thread must execute the same sequence of collectives —
barriers, split-phase notify/wait, team collectives, shared allocation.
The dynamic collective checker proves this per run; this pass proves it
per *program point*: a collective call (primitive, or a call resolving
through the call graph to a collective-performing function) that is
control-dependent on a thread-dependent branch condition, loop guard or
loop iterable (see :mod:`.dataflow`) can desynchronize the threads on
paths a campaign never executes.

The check is intraprocedural over each SPMD function's CFG; call-graph
summaries make calls through helpers (``collectives.exchange``,
``shared_memory_group``) count as collectives at the call site.  Known
limits: branches whose two arms perform *matching* collective sequences
are still flagged (write the collective once, after the join), and
in-place mutation is untracked (dataflow docstring).
"""

from __future__ import annotations

import ast
from typing import List

from repro.analyze.findings import StaticFinding
from repro.analyze.static.callgraph import CallGraph
from repro.analyze.static.dataflow import TaintState
from repro.analyze.static.loader import FunctionInfo, own_parents, walk_own

__all__ = ["run"]


def _governing_guards(parents, call: ast.Call):
    """(guard expr, kind) pairs controlling whether/how often ``call`` runs."""
    node: ast.AST = call
    while id(node) in parents:
        parent = parents[id(node)]
        if isinstance(parent, ast.If) and node is not parent.test:
            yield parent.test, "branch"
        elif isinstance(parent, ast.While) and node is not parent.test:
            yield parent.test, "while"
        elif isinstance(parent, (ast.For, ast.AsyncFor)) and \
                node not in (parent.iter, parent.target):
            yield parent.iter, "for"
        node = parent


def run(fn: FunctionInfo, taint: TaintState,
        callgraph: CallGraph) -> List[StaticFinding]:
    findings: List[StaticFinding] = []
    parents = own_parents(fn.node)
    for node in walk_own(fn.node):
        if not isinstance(node, ast.Call):
            continue
        why = callgraph.is_collective_call(node, fn)
        if why is None:
            continue
        for guard, kind in _governing_guards(parents, node):
            if not taint.guard_tainted(guard):
                continue
            guard_src = ast.unparse(guard)
            if kind == "branch":
                shape = (f"reachable only under the thread-dependent branch "
                         f"'{guard_src}' (line {guard.lineno})")
            elif kind == "while":
                shape = (f"inside a loop guarded by the thread-dependent "
                         f"condition '{guard_src}' (line {guard.lineno})")
            else:
                shape = (f"inside a loop over the thread-dependent iterable "
                         f"'{guard_src}' (line {guard.lineno})")
            findings.append(StaticFinding(
                path=fn.module.path, line=node.lineno, col=node.col_offset,
                rule="PGAS010", symbol=fn.qualname,
                message=(f"{why} is {shape}; threads can disagree on the "
                         "collective sequence and deadlock (dynamic "
                         "collective checker would fire at runtime)"),
            ))
            break  # one finding per collective call site
    return findings
