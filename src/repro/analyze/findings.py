"""Analyzer findings: one diagnostic per detected defect.

A :class:`Finding` (dynamic, from the sanitizer) and a
:class:`StaticFinding` (static, from :mod:`repro.analyze.static`) are
deliberately plain data — no references into the simulated stack or the
parsed ASTs — so sessions can outlive the programs that produced them
and the harness can serialize findings into reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "Finding", "render_findings", "CHECKERS",
    "StaticFinding", "RULES",
]

#: The three dynamic checkers (DESIGN.md §9).
CHECKERS = ("race", "privatization", "collective")

#: Every static rule id (DESIGN.md §14).  ``# noqa: PGASxxx`` may only
#: name ids from this table; an unknown ``PGAS*`` id is itself a finding
#: (PGAS009) so suppressions cannot silently rot.
RULES = {
    "PGAS000": "syntax error: the file could not be parsed",
    "PGAS001": "wall-clock read in simulated code",
    "PGAS002": "costed generator called but never driven",
    "PGAS003": "literal metric name outside repro.obs.names",
    "PGAS004": "SharedArray._data poked outside its accessors",
    "PGAS009": "unknown PGAS rule id in a noqa suppression",
    "PGAS010": "collective under thread-dependent control flow",
    "PGAS011": "shared access provably local: privatization candidate",
    "PGAS012": "loop-invariant remote access or affinity re-query in a loop",
}


@dataclass(frozen=True, order=True)
class StaticFinding:
    """One static-analyzer diagnostic, ordered for deterministic reports.

    ``path`` is tree-relative posix (``repro/upc/forall.py``) so reports
    and the committed baseline are independent of the checkout location;
    ``symbol`` is the enclosing function's dotted name (empty at module
    level).
    """

    path: str
    line: int
    col: int
    rule: str
    symbol: str
    message: str

    def row(self) -> Dict:
        """Flat dict for JSON reports (report.py adds the fingerprint)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "symbol": self.symbol,
            "message": self.message,
        }

    def __str__(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}{where}"


@dataclass
class Finding:
    """One sanitizer diagnostic.

    ``phases`` carries the phase-timer context from :mod:`repro.obs`: the
    ``(name, key)`` pairs of every phase timer open at detection time, so
    a race inside the FT transpose reads "during fft1d" rather than just
    a simulated timestamp.
    """

    checker: str                      #: "race" | "privatization" | "collective"
    message: str                      #: human-readable one-liner
    time: float = 0.0                 #: simulated seconds at detection
    threads: Tuple[int, ...] = ()     #: UPC threads involved
    phases: Tuple[tuple, ...] = ()    #: open phase timers (name, key)
    details: Dict = field(default_factory=dict)

    def row(self) -> Dict:
        """Flat dict for table rendering (reporting.py)."""
        return {
            "checker": self.checker,
            "threads": ",".join(str(t) for t in self.threads),
            "time": self.time,
            "phase": ";".join(name for name, _key in self.phases),
            "message": self.message,
        }

    def __str__(self) -> str:
        who = ",".join(str(t) for t in self.threads)
        ctx = ""
        if self.phases:
            ctx = " during " + "+".join(name for name, _key in self.phases)
        return f"[{self.checker}] t={self.time:.3g} threads={{{who}}}{ctx}: {self.message}"


def render_findings(findings: List[Finding]) -> str:
    """Plain-text block for CLI output; empty string when clean."""
    if not findings:
        return ""
    lines = [f"sanitizer: {len(findings)} finding(s)"]
    lines += [f"  {f}" for f in findings]
    return "\n".join(lines)
