"""Sanitizer findings: one diagnostic per detected defect.

A :class:`Finding` is deliberately plain data (no references into the
simulated stack) so sessions can outlive the programs that produced them
and the harness can serialize findings into reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Finding", "render_findings", "CHECKERS"]

#: The three dynamic checkers (DESIGN.md §9).
CHECKERS = ("race", "privatization", "collective")


@dataclass
class Finding:
    """One sanitizer diagnostic.

    ``phases`` carries the phase-timer context from :mod:`repro.obs`: the
    ``(name, key)`` pairs of every phase timer open at detection time, so
    a race inside the FT transpose reads "during fft1d" rather than just
    a simulated timestamp.
    """

    checker: str                      #: "race" | "privatization" | "collective"
    message: str                      #: human-readable one-liner
    time: float = 0.0                 #: simulated seconds at detection
    threads: Tuple[int, ...] = ()     #: UPC threads involved
    phases: Tuple[tuple, ...] = ()    #: open phase timers (name, key)
    details: Dict = field(default_factory=dict)

    def row(self) -> Dict:
        """Flat dict for table rendering (reporting.py)."""
        return {
            "checker": self.checker,
            "threads": ",".join(str(t) for t in self.threads),
            "time": self.time,
            "phase": ";".join(name for name, _key in self.phases),
            "message": self.message,
        }

    def __str__(self) -> str:
        who = ",".join(str(t) for t in self.threads)
        ctx = ""
        if self.phases:
            ctx = " during " + "+".join(name for name, _key in self.phases)
        return f"[{self.checker}] t={self.time:.3g} threads={{{who}}}{ctx}: {self.message}"


def render_findings(findings: List[Finding]) -> str:
    """Plain-text block for CLI output; empty string when clean."""
    if not findings:
        return ""
    lines = [f"sanitizer: {len(findings)} finding(s)"]
    lines += [f"  {f}" for f in findings]
    return "\n".join(lines)
