"""The dynamic PGAS sanitizer: vector clocks + three checkers.

Arming follows the tracer discipline exactly (:mod:`repro.obs.session`):
a module-global :func:`sanitize_session` context manager; while one is
active every :class:`~repro.upc.runtime.UpcProgram` constructed attaches
a fresh :class:`Sanitizer` to its simulator, otherwise the simulator
keeps the shared :data:`NULL_SANITIZER` whose class-level
``enabled = False`` lets every hook site bail in one attribute load.

The sanitizer is an *observer*: it never yields, never charges simulated
cost, and never consumes random numbers, so a sanitized run's simulated
results are identical to an unsanitized one (asserted by tests).

Happens-before engine
---------------------
One integer vector clock per UPC thread.  Synchronization hooks move
knowledge between clocks:

* **barrier/collective arrive** — snapshot the arriver's clock under the
  current generation of that barrier key;
* **barrier/collective pass** — join the merged snapshot of the
  generation, then tick the thread's own component;
* **notify/wait** — notify snapshots (then ticks) per split-phase phase;
  wait joins every snapshot of its phase;
* **lock release/acquire** — release snapshots (then ticks) per lock
  key; acquire joins;
* **flag signal/join** — the collectives' pairwise rendezvous, same
  snapshot/join pair.

The race detector is FastTrack-flavoured: each :class:`SharedArray`
access is recorded as ``(thread, epoch, range, op)`` where ``epoch`` is
the thread's own clock component; a new access races with a recorded one
iff the ranges overlap, the threads differ, at least one is a write, and
the accessor's clock has not absorbed the recorded epoch.  A fully
subscribed world-barrier pass orders *everything* before it, so the
shadow memory is cleared there — steady-state BSP programs keep O(accesses
per superstep) shadow state, not O(run).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.analyze.findings import Finding
from repro.obs import names

__all__ = [
    "Sanitizer",
    "NullSanitizer",
    "NULL_SANITIZER",
    "SanitizeSession",
    "sanitize_session",
    "sanitizer_for",
    "active_sanitize_session",
]

#: Findings kept per checker before summarizing (protects pathological
#: fixtures from quadratic report blowup; the counter keeps exact totals).
MAX_FINDINGS_PER_CHECKER = 50

#: Shadow-memory records per (array, op-kind) list before compaction.
_SHADOW_PRUNE_THRESHOLD = 1024

_CHECKER_COUNTERS = {
    "race": names.SAN_RACE_FINDINGS,
    "privatization": names.SAN_PRIVATIZATION_FINDINGS,
    "collective": names.SAN_COLLECTIVE_FINDINGS,
}


class NullSanitizer:
    """Shared no-op: ``sim.sanitizer`` when no session is active.

    Class-level ``enabled`` so the hot-path guard
    ``if sim.sanitizer.enabled:`` costs two attribute loads and no
    branches into sanitizer code.
    """

    enabled = False
    findings: tuple = ()

    def finalize(self) -> tuple:
        return ()

    def mark_dead(self, thread: int) -> None:
        pass


NULL_SANITIZER = NullSanitizer()


def _key_label(key: tuple) -> str:
    kind, name = key
    if kind == "team":
        return f"barrier on team {name!r}"
    if kind == "collective":
        return f"collective {name!r}"
    return f"{kind} {name!r}"


class Sanitizer:
    """Per-program dynamic checker (see module docstring)."""

    enabled = True

    def __init__(self, program):
        self.program = program
        self.nthreads = program.threads
        self.sim = program.sim
        self.stats = program.stats
        self.findings: List[Finding] = []
        n = self.nthreads
        # clock[t][u] = latest epoch of u that t has absorbed.  Own
        # components start at 1 so epoch 0 never looks like real work.
        self._clock = [[1 if u == t else 0 for u in range(n)] for t in range(n)]
        self._dead: set = set()
        self._finalized = False
        self._seen: set = set()
        self._emitted: Dict[str, int] = {}
        self._suppressed: Dict[str, int] = {}
        # race shadow memory: id(array) -> state (holds a strong ref so
        # ids are never recycled under us)
        self._shadow: Dict[int, dict] = {}
        # barriers/collectives, keyed by ("team"|"collective", name)
        self._bar_members: Dict[tuple, tuple] = {}
        self._bar_arrives: Dict[tuple, Dict[int, int]] = {}
        self._bar_passes: Dict[tuple, Dict[int, int]] = {}
        self._bar_snaps: Dict[tuple, Dict[int, Dict[int, list]]] = {}
        self._bar_merged: Dict[tuple, Dict[int, list]] = {}
        self._bar_released: Dict[tuple, Dict[int, int]] = {}
        # split-phase notify/wait
        self._notify_snaps: Dict[int, Dict[int, list]] = {}
        self._notify_count: Dict[int, int] = {}
        self._wait_begin_count: Dict[int, int] = {}
        self._wait_done_count: Dict[int, int] = {}
        # locks and flags
        self._lock_clock: Dict[object, list] = {}
        self._flag_clock: Dict[object, list] = {}

    # -- vector-clock primitives ------------------------------------------

    def _snapshot(self, thread: int) -> list:
        return list(self._clock[thread])

    def _join(self, thread: int, other: list) -> None:
        mine = self._clock[thread]
        for i, v in enumerate(other):
            if v > mine[i]:
                mine[i] = v

    def _tick(self, thread: int) -> None:
        self._clock[thread][thread] += 1

    def _live(self) -> list:
        return [t for t in range(self.nthreads) if t not in self._dead]

    # -- finding emission -------------------------------------------------

    def _emit(
        self,
        checker: str,
        message: str,
        threads: Tuple[int, ...] = (),
        details: Optional[dict] = None,
        dedup=None,
    ) -> None:
        if dedup is not None:
            if dedup in self._seen:
                return
            self._seen.add(dedup)
        self.stats.count(_CHECKER_COUNTERS[checker])
        if self._emitted.get(checker, 0) >= MAX_FINDINGS_PER_CHECKER:
            self._suppressed[checker] = self._suppressed.get(checker, 0) + 1
            return
        self._emitted[checker] = self._emitted.get(checker, 0) + 1
        self.findings.append(
            Finding(
                checker=checker,
                message=message,
                time=self.sim.now,
                threads=tuple(sorted(set(threads))),
                phases=tuple(self.stats.open_timers()),
                details=details or {},
            )
        )

    # -- race detector ----------------------------------------------------

    def on_access(
        self, thread: int, array, start: int, count: int, is_write: bool, op: str
    ) -> None:
        """One SharedArray element/block access by ``thread``."""
        shadow = self._shadow.get(id(array))
        if shadow is None:
            shadow = self._shadow[id(array)] = {
                "array": array,
                "label": repr(array),
                "reads": [],
                "writes": [],
            }
        mine = self._clock[thread]
        end = start + count
        kinds = ("writes", "reads") if is_write else ("writes",)
        for kind in kinds:
            for rec in shadow[kind]:
                r_thread, r_epoch, r_start, r_end, r_op, r_time = rec
                if r_thread == thread:
                    continue
                if r_start >= end or r_end <= start:
                    continue
                if mine[r_thread] >= r_epoch:
                    continue  # ordered before us: not a race
                self._emit(
                    "race",
                    f"data race on {shadow['label']}: thread {r_thread} "
                    f"{r_op} [{r_start},{r_end}) vs thread {thread} {op} "
                    f"[{start},{end}) (no happens-before edge)",
                    threads=(r_thread, thread),
                    details={
                        "array": shadow["label"],
                        "first": (r_thread, r_op, r_start, r_end, r_time),
                        "second": (thread, op, start, end, self.sim.now),
                    },
                    dedup=(
                        "race", id(array),
                        tuple(sorted((r_thread, thread))),
                        tuple(sorted((r_op, op))),
                    ),
                )
        records = shadow["writes" if is_write else "reads"]
        epoch = mine[thread]
        if records:
            last = records[-1]
            # coalesce the sweep pattern: same thread/epoch, touching range
            if (
                last[0] == thread and last[1] == epoch and last[4] == op
                and start <= last[3] and end >= last[2]
            ):
                records[-1] = (
                    thread, epoch, min(start, last[2]), max(end, last[3]),
                    op, last[5],
                )
                return
        records.append((thread, epoch, start, end, op, self.sim.now))
        if len(records) > _SHADOW_PRUNE_THRESHOLD:
            self._prune(records)

    def _prune(self, records: list) -> None:
        """Drop records already ordered before every live thread."""
        live = self._live()
        kept = [
            rec for rec in records
            if any(
                self._clock[t][rec[0]] < rec[1] for t in live if t != rec[0]
            )
        ]
        records[:] = kept

    def _clear_shadow(self) -> None:
        for shadow in self._shadow.values():
            shadow["reads"].clear()
            shadow["writes"].clear()

    # -- privatization-legality checker -----------------------------------

    def on_private_access(
        self,
        thread: int,
        array,
        index: int,
        holder: int,
        base_owner: Optional[int],
        op: str,
    ) -> None:
        """A LocalPointer dereference (before the access is charged)."""
        owner = array.owner(index)
        if base_owner is not None and owner != base_owner:
            self._emit(
                "privatization",
                f"privatized pointer arithmetic crossed an affinity "
                f"boundary: cast for thread {base_owner}'s block, {op} at "
                f"index {index} lands in thread {owner}'s block",
                threads=(thread, owner),
                details={"index": index, "owner": owner, "base_owner": base_owner},
                dedup=("priv-cross", id(array), thread, base_owner, owner),
            )
        if not self.program.gasnet.can_bypass(thread, owner):
            self._emit(
                "privatization",
                f"privatized {op} from thread {thread} to thread {owner}'s "
                f"memory at index {index}: target is outside the holder's "
                f"castable supernode (no load/store path)",
                threads=(thread, owner),
                details={"index": index, "owner": owner, "holder": holder},
                dedup=("priv-cast", id(array), thread, owner),
            )
        if owner in self.program.dead_threads():
            self._emit(
                "privatization",
                f"stale privatized pointer: thread {thread} {op} at index "
                f"{index}, but owner thread {owner} was killed by a fault "
                f"plan",
                threads=(thread, owner),
                details={"index": index, "owner": owner},
                dedup=("priv-stale", id(array), thread, owner),
            )

    # -- barrier / collective matching + HB edges --------------------------

    def barrier_arrive(self, key: tuple, thread: int, members) -> None:
        if key not in self._bar_members:
            self._bar_members[key] = tuple(members)
        arrives = self._bar_arrives.setdefault(key, {})
        gen = arrives.get(thread, 0)
        arrives[thread] = gen + 1
        snaps = self._bar_snaps.setdefault(key, {})
        snaps.setdefault(gen, {})[thread] = self._snapshot(thread)

    def barrier_pass(self, key: tuple, thread: int) -> None:
        passes = self._bar_passes.setdefault(key, {})
        gen = passes.get(thread, 0)
        passes[thread] = gen + 1
        snaps = self._bar_snaps.get(key, {}).get(gen, {})
        merged_by_gen = self._bar_merged.setdefault(key, {})
        merged = merged_by_gen.get(gen)
        if merged is None:
            # first passer: fold the generation's snapshots once
            merged = [0] * self.nthreads
            for snap in snaps.values():
                for i, v in enumerate(snap):
                    if v > merged[i]:
                        merged[i] = v
            merged_by_gen[gen] = merged
            # a fully subscribed generation orders every prior access:
            # the race shadow can restart empty (see module docstring)
            if set(snaps) >= set(self._live()):
                self._clear_shadow()
        self._join(thread, merged)
        self._tick(thread)
        released = self._bar_released.setdefault(key, {})
        released[gen] = released.get(gen, 0) + 1
        if released[gen] >= len(snaps):
            # everyone through: retire the generation's bookkeeping
            self._bar_snaps.get(key, {}).pop(gen, None)
            merged_by_gen.pop(gen, None)
            released.pop(gen, None)

    # -- split-phase notify/wait ------------------------------------------

    def notify(self, thread: int) -> None:
        phase = self._notify_count.get(thread, 0)
        self._notify_count[thread] = phase + 1
        self._notify_snaps.setdefault(phase, {})[thread] = self._snapshot(thread)
        self._tick(thread)

    def wait_begin(self, thread: int) -> None:
        self._wait_begin_count[thread] = self._wait_begin_count.get(thread, 0) + 1

    def wait_join(self, thread: int) -> None:
        phase = self._wait_done_count.get(thread, 0)
        self._wait_done_count[thread] = phase + 1
        for snap in self._notify_snaps.get(phase, {}).values():
            self._join(thread, snap)
        self._tick(thread)

    # -- locks and flags ---------------------------------------------------

    def lock_acquire(self, key: object, thread: int) -> None:
        snap = self._lock_clock.get(key)
        if snap is not None:
            self._join(thread, snap)

    def lock_release(self, key: object, thread: int) -> None:
        self._lock_clock[key] = self._snapshot(thread)
        self._tick(thread)

    def flag_signal(self, key: object, thread: int) -> None:
        self._flag_clock[key] = self._snapshot(thread)
        self._tick(thread)

    def flag_join(self, key: object, thread: int) -> None:
        snap = self._flag_clock.get(key)
        if snap is not None:
            self._join(thread, snap)

    # -- misuse + lifecycle -------------------------------------------------

    def record_collective_misuse(self, thread: int, message: str) -> None:
        self._emit("collective", f"thread {thread}: {message}", threads=(thread,))

    def mark_dead(self, thread: int) -> None:
        self._dead.add(thread)

    def finalize(self) -> List[Finding]:
        """End-of-run matching checks; idempotent, returns all findings."""
        if self._finalized:
            return self.findings
        self._finalized = True
        # 1. barriers/collectives someone reached but that never released
        flagged_keys = set()
        for key in sorted(self._bar_members, key=repr):
            members = [t for t in self._bar_members[key] if t not in self._dead]
            snaps = self._bar_snaps.get(key, {})
            for gen in sorted(snaps):
                arrived = sorted(t for t in snaps[gen] if t not in self._dead)
                if not arrived or self._bar_released.get(key, {}).get(gen, 0):
                    continue
                missing = sorted(t for t in members if t not in snaps[gen])
                flagged_keys.add(key)
                self._emit(
                    "collective",
                    f"{_key_label(key)} never completed: threads {arrived} "
                    f"arrived, threads {missing} never did",
                    threads=tuple(arrived + missing),
                    details={"key": repr(key), "arrived": arrived, "missing": missing},
                )
        # 2. live members that completed different numbers of operations
        for key in sorted(self._bar_members, key=repr):
            if key in flagged_keys:
                continue  # the stuck generation above already explains it
            members = [t for t in self._bar_members[key] if t not in self._dead]
            if len(members) < 2:
                continue
            counts = {t: self._bar_passes.get(key, {}).get(t, 0) for t in members}
            if len(set(counts.values())) > 1:
                self._emit(
                    "collective",
                    f"mismatched {_key_label(key)} call counts across "
                    f"threads: {counts}",
                    threads=tuple(members),
                    details={"key": repr(key), "counts": counts},
                )
        # 3. split-phase pairs left dangling
        for t in self._live():
            notified = self._notify_count.get(t, 0)
            waited = self._wait_done_count.get(t, 0)
            if notified <= waited:
                continue
            began = self._wait_begin_count.get(t, 0)
            if began > waited:
                msg = (
                    f"thread {t}: upc_wait for split-phase {waited} never "
                    f"completed (some thread never notified)"
                )
            else:
                msg = (
                    f"thread {t}: upc_notify (phase {notified - 1}) without "
                    f"a matching upc_wait"
                )
            self._emit("collective", msg, threads=(t,))
        for checker, n in sorted(self._suppressed.items()):
            self.findings.append(
                Finding(
                    checker=checker,
                    message=f"{n} further {checker} finding(s) suppressed "
                    f"(cap {MAX_FINDINGS_PER_CHECKER}); counters hold exact totals",
                    time=self.sim.now,
                )
            )
        return self.findings


# -- session arming (mirrors repro.obs.session) ----------------------------

_ACTIVE: Optional["SanitizeSession"] = None


class SanitizeSession:
    """Collects the sanitizers of every program started while active."""

    def __init__(self, label: str = "sanitize"):
        self.label = label
        self.sanitizers: List[Sanitizer] = []

    @property
    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for s in self.sanitizers:
            out.extend(s.findings)
        return out

    def new_sanitizer(self, program) -> Sanitizer:
        san = Sanitizer(program)
        self.sanitizers.append(san)
        return san


def active_sanitize_session() -> Optional[SanitizeSession]:
    return _ACTIVE


def sanitizer_for(program):
    """A fresh Sanitizer when a session is active, else the no-op."""
    if _ACTIVE is None:
        return NULL_SANITIZER
    return _ACTIVE.new_sanitizer(program)


@contextmanager
def sanitize_session(label: str = "sanitize"):
    """Arm the sanitizer for the ``with`` body; yields the session.

    Sessions do not nest (same rationale as trace sessions: two sessions
    silently splitting a run's findings would be a debugging trap).
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a sanitize session is already active")
    session = SanitizeSession(label)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None
