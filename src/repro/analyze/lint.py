"""Static PGAS lint: repo-specific AST rules, stdlib only.

Run as ``python -m repro.analyze.lint src`` (CI job ``lint-analyze``).

Rules
-----
PGAS001
    Simulated code must not read wall clocks (``time.time()``,
    ``datetime.now()``...).  Real time leaking into a simulation makes
    runs irreproducible; use ``upc.wtime()`` / ``sim.now``.  The harness
    CLI legitimately times real execution, so ``repro/harness`` is
    exempt.
PGAS002
    Costed generator calls must be driven: a bare statement like
    ``arr.read_elem(upc, i)`` creates a generator and drops it — the
    access silently never happens.  Use ``yield from`` (or bind the
    generator/handle).
PGAS003
    Metric names passed to a ``*stats`` collector must come from
    :mod:`repro.obs.names`, not string literals, so the registry stays
    exhaustive and typos fail at import time.
PGAS004
    ``SharedArray._data`` is private to its accessors; touching it
    elsewhere bypasses cost charging and the sanitizer.

``# noqa: PGASxxx`` on the offending line suppresses a finding.  To add
a rule: give it a code + message, extend :class:`_Visitor` with the AST
pattern, and add a fixture to ``tests/analyze/test_lint.py``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

__all__ = ["Violation", "lint_source", "lint_file", "lint_paths", "main"]

#: module-level callables that read the host's wall clock
_WALLCLOCK_TIME = {"time", "monotonic", "perf_counter", "process_time", "time_ns",
                   "monotonic_ns", "perf_counter_ns"}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}

#: methods returning simulated generators whose bare call is a no-op
_COSTED_GENERATORS = {
    "read_elem", "write_elem", "get_block", "put_block",
    "barrier", "barrier_notify", "barrier_wait",
    "compute", "compute_flops", "local_stream", "stream_from",
    "charge_shared_accesses", "memput", "memget", "am_roundtrip",
}

#: StatsCollector emitters whose first argument is a metric name
_STATS_EMITTERS = {"count", "add", "record"}

#: path suffixes (posix) where the wall clock is legitimate: the harness
#: measures wall time by design, and the host profiler's whole job is to
#: read ``perf_counter_ns`` around simulated code.
_WALLCLOCK_ALLOWED = ("repro/harness/", "repro/obs/profile/host.py")

#: path suffixes allowed to touch SharedArray._data
_DATA_ALLOWED = ("repro/upc/shared.py",)

_NOQA_RE = re.compile(r"#\s*noqa:\s*([A-Z0-9, ]+)")


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


def _noqa_codes(line: str) -> set:
    m = _NOQA_RE.search(line)
    if not m:
        return set()
    return {c.strip() for c in m.group(1).split(",") if c.strip()}


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, allow_wallclock: bool, allow_data: bool):
        self.path = path
        self.allow_wallclock = allow_wallclock
        self.allow_data = allow_data
        self.violations: List[Violation] = []

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, node.lineno, node.col_offset, code, message)
        )

    # PGAS001 ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if not self.allow_wallclock:
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                mod, attr = func.value.id, func.attr
                if (mod == "time" and attr in _WALLCLOCK_TIME) or (
                    mod in ("datetime", "date") and attr in _WALLCLOCK_DATETIME
                ):
                    self._add(
                        node, "PGAS001",
                        f"wall-clock call {mod}.{attr}() in simulated code "
                        "(use upc.wtime() / sim.now)",
                    )
        # PGAS003 --------------------------------------------------------
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _STATS_EMITTERS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and self._is_stats_receiver(func.value)
        ):
            self._add(
                node, "PGAS003",
                f"metric name {node.args[0].value!r} is a string literal; "
                "use a constant from repro.obs.names",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_stats_receiver(expr: ast.expr) -> bool:
        """``stats.count(...)``, ``self.stats.add(...)``, ``profiler.record(...)``.

        Profiler receivers (``repro.obs.profile``) emit under the same
        registered-name discipline as StatsCollector, so a literal
        metric name through either is the same lint error.
        """
        if isinstance(expr, ast.Name):
            return (expr.id in ("stats", "profiler")
                    or expr.id.endswith(("_stats", "_profiler")))
        if isinstance(expr, ast.Attribute):
            return (expr.attr in ("stats", "profiler")
                    or expr.attr.endswith(("_stats", "_profiler")))
        return False

    # PGAS002 ------------------------------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in _COSTED_GENERATORS
        ):
            self._add(
                node, "PGAS002",
                f"bare call to costed generator .{call.func.attr}(...): the "
                "generator is dropped and the operation never happens; "
                "drive it with 'yield from'",
            )
        self.generic_visit(node)

    # PGAS004 ------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "_data" and not self.allow_data:
            self._add(
                node, "PGAS004",
                "._data accessed outside SharedArray's accessors (bypasses "
                "cost charging and the sanitizer)",
            )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one source string; path picks the per-file rule exemptions."""
    posix = Path(path).as_posix()
    allow_wallclock = any(suffix in posix for suffix in _WALLCLOCK_ALLOWED)
    allow_data = any(posix.endswith(suffix) for suffix in _DATA_ALLOWED)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, exc.offset or 0, "PGAS000",
                          f"syntax error: {exc.msg}")]
    visitor = _Visitor(path, allow_wallclock, allow_data)
    visitor.visit(tree)
    lines = source.splitlines()
    kept = []
    for v in visitor.violations:
        line = lines[v.line - 1] if 0 < v.line <= len(lines) else ""
        if v.code in _noqa_codes(line):
            continue
        kept.append(v)
    return kept


def lint_file(path: Path) -> List[Violation]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Sequence) -> List[Violation]:
    """Lint files and directories (recursing into ``*.py``)."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    violations: List[Violation] = []
    for f in files:
        violations.extend(lint_file(f))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze.lint",
        description="Repo-specific static rules for the simulated PGAS stack.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    args = parser.parse_args(argv)
    violations = lint_paths(args.paths)
    for v in violations:
        print(v)
    if violations:
        print(f"{len(violations)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
