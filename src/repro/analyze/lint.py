"""Static PGAS lint: the legacy rules (PGAS001-004), stdlib only.

This is now a thin compatibility shim over the static-analysis
framework in :mod:`repro.analyze.static`, which owns the single walker,
the noqa/suppression mechanism and the CLI.  Run the full analyzer
(flow-sensitive rules PGAS010-012 included, baseline gate) as
``python -m repro.analyze.static --check``; this module keeps the
original fast path — legacy rules only — and its API
(:class:`Violation`, :func:`lint_source`, :func:`lint_file`,
:func:`lint_paths`, :func:`main`) for callers and tests.

Rules
-----
PGAS001
    Simulated code must not read wall clocks (``time.time()``,
    ``datetime.now()``...).  Real time leaking into a simulation makes
    runs irreproducible; use ``upc.wtime()`` / ``sim.now``.  The harness
    CLI legitimately times real execution, so ``repro/harness`` is
    exempt.
PGAS002
    Costed generator calls must be driven: a bare statement like
    ``arr.read_elem(upc, i)`` creates a generator and drops it — the
    access silently never happens.  Use ``yield from`` (or bind the
    generator/handle).
PGAS003
    Metric names passed to a ``*stats`` collector must come from
    :mod:`repro.obs.names`, not string literals, so the registry stays
    exhaustive and typos fail at import time.
PGAS004
    ``SharedArray._data`` is private to its accessors; touching it
    elsewhere bypasses cost charging and the sanitizer.
PGAS009
    ``# noqa: PGASxxx`` may only name known rules; an unknown ``PGAS*``
    id suppresses nothing and is itself flagged so suppressions cannot
    silently rot.

``# noqa: PGASxxx`` on the offending line suppresses a finding.  To add
a rule: register the id in :data:`repro.analyze.findings.RULES`, add a
pass (or extend one) under ``repro.analyze.static``, and give it a
fixture in ``tests/analyze``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analyze.static import analyze_source

__all__ = ["Violation", "lint_source", "lint_file", "lint_paths", "main"]


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one source string; path picks the per-file rule exemptions."""
    result = analyze_source(source, path, flow=False)
    return [
        Violation(f.path, f.line, f.col, f.rule, f.message)
        for f in result.findings
    ]


def lint_file(path: Path) -> List[Violation]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Sequence) -> List[Violation]:
    """Lint files and directories (recursing into ``*.py``)."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    violations: List[Violation] = []
    for f in files:
        violations.extend(lint_file(f))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze.lint",
        description="Repo-specific static rules for the simulated PGAS stack "
                    "(legacy rules; see repro.analyze.static for the full "
                    "analyzer).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    args = parser.parse_args(argv)
    violations = lint_paths(args.paths)
    for v in violations:
        print(v)
    if violations:
        print(f"{len(violations)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
