"""Tuned MPI collectives (the library algorithms OpenMPI ships).

* :func:`alltoall` — pairwise exchange: ``P-1`` synchronized rounds of
  ``MPI_Sendrecv`` with partner ``(rank ± i) % P``.  Each rank keeps one
  bidirectional flow per round, which is why "the optimized collective
  functionalities used in the MPI-Fortran implementation" outperform
  hand-rolled blocking puts in Fig 4.5 — blocking puts serialize the wire
  latency per peer.
* :func:`allreduce` — recursive doubling (power-of-two ranks; a fold-in
  pre-phase handles the rest).
* :func:`bcast` — binomial tree.

All are SPMD generators: every rank calls with its own context.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import MpiError
from repro.mpi.comm import MpiRank

__all__ = ["alltoall", "allreduce", "bcast"]


def alltoall(rank: MpiRank, nbytes_per_pair: float, tag_base: int = 1000) -> Generator:
    """Pairwise-exchange all-to-all over COMM_WORLD."""
    me, size = rank.rank, rank.size
    yield rank.mem.compute(rank.pu, rank.program.params.collective_op_overhead)
    for i in range(1, size):
        dst = (me + i) % size
        src = (me - i) % size
        yield from rank.sendrecv(dst, nbytes_per_pair, src, tag=tag_base + i)
    yield from rank.barrier()


def allreduce(
    rank: MpiRank,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: float = 8.0,
    tag_base: int = 2000,
) -> Generator:
    """Recursive-doubling allreduce; returns the reduced value everywhere.

    Values travel through program flags (the data plane); timing comes
    from the paired sendrecv at each doubling distance.
    """
    me, size = rank.rank, rank.size
    prog = rank.program

    # Fold non-power-of-two ranks into the largest power-of-two group.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    acc = value
    seq = prog.world.op_tag(me)

    if me < 2 * rem and me % 2 == 1:
        # odd ranks in the remainder send their value down and wait
        yield from rank.send(me - 1, nbytes, tag=tag_base)
        prog.flag((seq, "fold", me)).succeed(acc)
        yield from rank.recv(me - 1, tag=tag_base + pof2)
        result = yield prog.flag((seq, "result", me))
        return result
    if me < 2 * rem:
        other = yield from _recv_value(rank, me + 1, tag_base, (seq, "fold", me + 1))
        acc = op(acc, other)

    new_rank = me // 2 if me < 2 * rem else me - rem
    mask = 1
    while mask < pof2:
        partner_new = new_rank ^ mask
        partner = partner_new * 2 if partner_new < rem else partner_new + rem
        prog.flag((seq, "x", mask, me)).succeed(acc)
        sr = rank.sendrecv(partner, nbytes, partner, tag=tag_base + mask)
        yield from sr
        other = yield prog.flag((seq, "x", mask, partner))
        acc = op(acc, other)
        mask *= 2

    if me < 2 * rem:
        yield from rank.send(me + 1, nbytes, tag=tag_base + pof2)
        prog.flag((seq, "result", me + 1)).succeed(acc)
    return acc


def _recv_value(rank: MpiRank, src: int, tag: int, flag_key) -> Generator:
    yield from rank.recv(src, tag=tag)
    value = yield rank.program.flag(flag_key)
    return value


def bcast(
    rank: MpiRank,
    nbytes: float,
    root: int = 0,
    value: Any = None,
    tag: int = 3000,
) -> Generator:
    """Binomial-tree broadcast; returns the value everywhere."""
    me, size = rank.rank, rank.size
    if not 0 <= root < size:
        raise MpiError(f"bcast root {root} out of range")
    prog = rank.program
    seq = prog.world.op_tag(me)
    rel = (me - root) % size
    box = prog.flag((seq, "v"))
    if rel == 0 and not box.done:
        box.succeed(value)
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel - mask) + root) % size
            yield from rank.recv(parent, tag=tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = rel + mask
        if child < size:
            yield from rank.send((child + root) % size, nbytes, tag=tag)
        mask >>= 1
    result = yield box
    return result
