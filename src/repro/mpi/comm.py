"""Two-sided MPI point-to-point on the simulated fabric.

Protocol model (standard for the OpenMPI generation the thesis used):

* **Eager** (``nbytes <= eager_threshold``): the sender copies into a
  system buffer and returns once the message is injected; the receiver
  matches, waits for delivery, and pays an unpack copy.
* **Rendezvous** (large messages): the sender posts a ready-to-send and
  blocks until the receiver's clear-to-send arrives, then streams the
  data zero-copy.  The extra handshake round-trip is what moves the
  crossover in the D5 ablation of DESIGN.md.

Matching is FIFO per ``(source, tag)``, which is all the deterministic
SPMD benchmarks here require (no wildcards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import MpiError
from repro.gasnet import BackendConfig, GasnetRuntime, Team, ThreadLocation
from repro.machine.affinity import assign_ranks_to_nodes, subthread_pus
from repro.machine.memory import MemorySystem
from repro.machine.presets import PlatformPreset, generic_smp
from repro.network.conduits import conduit as lookup_conduit
from repro.obs import names
from repro.obs.profile.session import profiler_for
from repro.obs.session import tracer_for
from repro.obs.tracer import thread_track
from repro.sim import Event, Simulator, StatsCollector, Store
from repro.upc.runtime import ProgramResult

__all__ = ["MpiParams", "MpiProgram", "MpiRank"]


@dataclass(frozen=True)
class MpiParams:
    """MPI software-layer calibration.

    ``match_overhead`` is the per-message tag-matching/progress cost on
    the receiver; ``collective_op_overhead`` is the per-round software
    cost inside library collectives (lower than hand-rolled loops — MPI's
    collectives are tuned, §4.3.3.3).
    """

    eager_threshold: int = 64 << 10
    match_overhead: float = 0.3e-6
    send_overhead: float = 0.4e-6
    collective_op_overhead: float = 0.2e-6


class _Message:
    __slots__ = ("src", "tag", "nbytes", "eager", "delivered", "cts")

    def __init__(self, sim: Simulator, src: int, tag: int, nbytes: float, eager: bool):
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.eager = eager
        self.delivered = Event(sim)   # data fully at the receiver
        self.cts = Event(sim)         # receiver's clear-to-send (rendezvous)


class MpiProgram:
    """One simulated MPI job (mirrors :class:`~repro.upc.UpcProgram`)."""

    def __init__(
        self,
        preset: Optional[PlatformPreset] = None,
        ranks: int = 4,
        ranks_per_node: Optional[int] = None,
        conduit: Optional[str] = None,
        params: Optional[MpiParams] = None,
    ):
        if ranks < 1:
            raise MpiError(f"ranks must be >= 1, got {ranks}")
        self.preset = preset or generic_smp(nodes=2)
        self.ranks = ranks
        self.params = params or MpiParams()
        self.sim = Simulator()
        # Attach the tracer before any stack layer is built so fabric and
        # runtime construction can declare their tracks (no-op when no
        # trace session is active).
        self.sim.tracer = tracer_for(self.sim, label=f"mpi x{ranks}")
        if self.sim.tracer.enabled:
            for r in range(ranks):
                self.sim.tracer.declare_track(thread_track(r))
        self.topo = self.preset.topology()
        # Arm the cost profiler (no-op outside a profile_session).
        self.sim.profiler = profiler_for(self.sim)
        self.stats = StatsCollector(self.sim)
        self.mem = MemorySystem(self.sim, self.topo, self.preset.memory)
        if ranks_per_node is None:
            ranks_per_node = -(-ranks // self.topo.total_nodes)
        self.ranks_per_node = ranks_per_node
        node_of = assign_ranks_to_nodes(self.topo, ranks, per_node=ranks_per_node)
        locations: List[ThreadLocation] = []
        per_node_count: Dict[int, int] = {}
        for r in range(ranks):
            node = self.topo.nodes[node_of[r]]
            lr = per_node_count.get(node.index, 0)
            per_node_count[node.index] = lr + 1
            ncores = len(node.core_indices)
            core = self.topo.cores[node.core_indices[lr % ncores]]
            smt = lr // ncores
            if smt >= len(core.pu_indices):
                raise MpiError(f"node {node.index} oversubscribed at rank {r}")
            locations.append(
                ThreadLocation(r, node.index, core.pu_indices[smt], process_id=r)
            )
        # OpenMPI's sm transport: intra-node messages bypass the NIC.
        backend = BackendConfig(
            mode="processes", pshm=True,
            op_overhead=self.params.send_overhead,
            bypass_overhead=0.1e-6,
        )
        net = lookup_conduit(conduit or self.preset.default_conduit)
        self.gasnet = GasnetRuntime(
            self.sim, self.topo, self.mem, net, locations, backend=backend,
            stats=self.stats,
        )
        self.world = Team(self.sim, range(ranks), name="mpi_world")
        self._match: Dict[tuple, Store] = {}
        self._flags: Dict[object, Event] = {}
        self._contexts = [MpiRank(self, r) for r in range(ranks)]

    def match_queue(self, dst: int, src: int, tag: int) -> Store:
        key = (dst, src, tag)
        q = self._match.get(key)
        if q is None:
            q = self._match[key] = Store(self.sim, name=f"match{key}")
        return q

    def flag(self, key: object) -> Event:
        ev = self._flags.get(key)
        if ev is None:
            ev = self._flags[key] = Event(self.sim)
        return ev

    def run(self, main: Callable, *args: Any, **kwargs: Any) -> ProgramResult:
        procs = [
            self.sim.spawn(main(self._contexts[r], *args, **kwargs), name=f"rank{r}")
            for r in range(self.ranks)
        ]
        self.sim.run()
        if self.sim.tracer.enabled:
            # Close still-open spans so the trace is complete even when
            # the checks below raise.
            self.sim.tracer.finalize(self.sim.now)
        self.sim.raise_failures()
        unfinished = [p.name for p in procs if not p.done]
        if unfinished:
            raise MpiError(f"deadlock: ranks never finished: {unfinished[:8]}")
        leaked = self.stats.open_timers()
        if leaked:
            raise MpiError(
                "phase timers still open at end of run — their elapsed "
                f"time was never recorded: {leaked!r}"
            )
        return ProgramResult(
            elapsed=self.sim.now,
            returns=[p.result for p in procs],
            stats=self.stats,
            sim=self.sim,
        )


class MpiRank:
    """Per-rank context: COMM_WORLD operations."""

    def __init__(self, program: MpiProgram, rank: int):
        self.program = program
        self.rank = rank
        self.size = program.ranks
        self.sim = program.sim
        self.stats = program.stats
        self.gasnet = program.gasnet
        self.mem = program.mem
        self.pu = program.gasnet.location(rank).pu

    # -- local work ---------------------------------------------------------

    def compute(self, seconds: float) -> Generator:
        yield self.mem.compute(self.pu, seconds)

    def compute_flops(self, flops: float, efficiency: float = 0.25) -> Generator:
        rate = self.mem.params.core_flops * efficiency
        yield self.mem.compute(self.pu, flops / rate)

    def local_stream(self, bytes_read: float, bytes_written: float) -> Generator:
        sock = self.gasnet.segment_socket(self.rank)
        yield from self.mem.stream(self.pu, bytes_read, bytes_written, sock)

    def wtime(self) -> float:
        return self.sim.now

    # -- point-to-point --------------------------------------------------------

    def send(self, dst: int, nbytes: float, tag: int = 0) -> Generator:
        """Blocking MPI_Send (buffered-eager or rendezvous)."""
        if not 0 <= dst < self.size:
            raise MpiError(f"send to invalid rank {dst}")
        p = self.program.params
        self.stats.count(names.MPI_SENDS)
        eager = nbytes <= p.eager_threshold
        msg = _Message(self.sim, self.rank, tag, nbytes, eager)
        yield self.mem.compute(self.pu, p.send_overhead)
        self.program.match_queue(dst, self.rank, tag).put(msg)
        if eager:
            # copy into the system buffer, then the wire proceeds async
            yield from self.local_stream(nbytes, nbytes)

            def _deliver():
                yield from self.gasnet.xfer(self.rank, dst, nbytes, "put")
                msg.delivered.succeed()

            self.sim.spawn(_deliver(), name=f"mpi.eager{self.rank}->{dst}")
            return
        # rendezvous: wait for the receiver before touching the wire
        yield msg.cts
        yield from self.gasnet.xfer(self.rank, dst, nbytes, "put")
        msg.delivered.succeed()

    def recv(self, src: int, tag: int = 0) -> Generator:
        """Blocking MPI_Recv; returns the received byte count."""
        if not 0 <= src < self.size:
            raise MpiError(f"recv from invalid rank {src}")
        p = self.program.params
        self.stats.count(names.MPI_RECVS)
        msg = yield self.program.match_queue(self.rank, src, tag).get()
        yield self.mem.compute(self.pu, p.match_overhead)
        if not msg.eager:
            msg.cts.succeed()
        yield msg.delivered
        if msg.eager:
            # unpack from the system buffer
            yield from self.local_stream(msg.nbytes, msg.nbytes)
        yield self.mem.compute(self.pu, self.gasnet.fabric.params.recv_overhead)
        return msg.nbytes

    def sendrecv(
        self, dst: int, send_bytes: float, src: int, tag: int = 0
    ) -> Generator:
        """MPI_Sendrecv: both directions progress concurrently."""
        send_proc = self.sim.spawn(
            self.send(dst, send_bytes, tag), name=f"sr.send{self.rank}"
        )
        recv_proc = self.sim.spawn(
            self.recv(src, tag), name=f"sr.recv{self.rank}"
        )
        yield self.sim.all_of([send_proc, recv_proc])
        return recv_proc.value

    def barrier(self) -> Generator:
        yield self.mem.compute(self.pu, self.program.params.collective_op_overhead)
        yield from self.program.world.barrier(self.rank)
