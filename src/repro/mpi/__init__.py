"""A simulated two-sided MPI baseline.

The thesis compares its UPC variants against Fortran-MPI NAS FT run under
OpenMPI.  This package provides that comparator on the same simulated
machines: ranks are processes with private connections and an OpenMPI-style
shared-memory transport inside the node, point-to-point messaging follows
the eager/rendezvous protocol split, and the collectives are the
"optimized" algorithms the MPI implementation ships (pairwise-exchange
all-to-all, recursive-doubling allreduce, binomial broadcast).
"""

from repro.mpi.comm import MpiProgram, MpiRank, MpiParams
from repro.mpi import collectives

__all__ = ["MpiProgram", "MpiRank", "MpiParams", "collectives"]
