"""Observability for the simulated stack: tracing, export, attribution.

The pieces:

* :mod:`repro.obs.names` — the metric-name and span-category registry.
* :mod:`repro.obs.tracer` — :class:`Tracer` / :data:`NULL_TRACER`,
  recording simulated-time spans, instants and counter samples.
* :mod:`repro.obs.session` — :func:`trace_session` arms tracing for a
  region of host code; programs pick up a tracer via :func:`tracer_for`.
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON export.
* :mod:`repro.obs.critical_path` — attribution of end-to-end simulated
  time to compute/network/barrier/steal, plus comm-matrix and per-link
  utilization reports.
* :mod:`repro.obs.validate` — trace-event schema checks for tests/CI.

Everything here is stdlib-only: :mod:`repro.sim.engine` imports
:data:`NULL_TRACER` at module load, so this package must never import
simulation layers at import time (tracers receive the simulator by
argument instead).
"""

from repro.obs import names
from repro.obs.critical_path import (
    attribute_run,
    breakdown_rows,
    comm_matrix_rows,
    link_utilization_rows,
)
from repro.obs.export import (
    chrome_trace_events,
    dump_chrome_trace,
    write_chrome_trace,
)
from repro.obs.session import (
    TraceSession,
    active_session,
    trace_session,
    tracer_for,
)
from repro.obs.tracer import (
    META_TRACK,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    link_track,
    node_track,
    thread_track,
)

__all__ = [
    "names",
    "Tracer", "NullTracer", "NULL_TRACER", "Span",
    "thread_track", "link_track", "node_track", "META_TRACK",
    "TraceSession", "trace_session", "tracer_for", "active_session",
    "chrome_trace_events", "dump_chrome_trace", "write_chrome_trace",
    "attribute_run", "breakdown_rows", "comm_matrix_rows",
    "link_utilization_rows",
]
