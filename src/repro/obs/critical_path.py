"""Critical-path attribution and derived communication reports.

:func:`attribute_run` answers "where did the end-to-end simulated time
go?" for one traced run.  It walks **backward** along the critical path
from the run's end: at every instant some thread is "responsible" for
progress; the walk charges that instant to the highest-priority span
category active on the responsible thread (steal > barrier > network,
compute as the catch-all — see :data:`repro.obs.names.CATEGORY_PRIORITY`).

Barrier spans carry a ``releaser`` argument (the last thread to arrive);
while walking through a barrier wait the responsibility *jumps* to the
releaser's track, so time spent waiting on a straggler is charged to
whatever the straggler was doing rather than blamed on the barrier.
A barrier wait with no releaser information — or one whose jump would
revisit a track at the same timestamp — is charged as ``barrier``.

The walk partitions ``[0, T]`` exactly, so the per-category totals sum
to the run's simulated time by construction (the harness's
``--report-breakdown`` promises agreement within 1%).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs import names
from repro.obs.tracer import Tracer

__all__ = [
    "AttributionReport",
    "attribute_run",
    "breakdown_rows",
    "comm_matrix_rows",
    "link_utilization_rows",
]

#: Walk resolution guard: intervals shorter than this are absorbed.
_EPS = 1e-15


class _Segment:
    __slots__ = ("t0", "t1", "category", "releaser")

    def __init__(self, t0: float, t1: float, category: str,
                 releaser: Optional[int]):
        self.t0 = t0
        self.t1 = t1
        self.category = category
        self.releaser = releaser


def _timeline(spans, t_end: float) -> List[_Segment]:
    """Partition ``[0, t_end]`` into category segments for one track.

    At each instant the active category is the highest-priority
    attributed span covering it (``compute`` when none); barrier
    segments remember the releaser of the innermost active barrier.
    """
    events: List[Tuple[float, int, int, object]] = []
    for idx, s in enumerate(spans):
        if s.category not in names.CATEGORY_PRIORITY:
            continue  # phase/lock/fault spans are transparent here
        t0 = max(0.0, s.t0)
        t1 = min(t_end, s.t1 if s.t1 is not None else t_end)
        if t1 <= t0 + _EPS:
            continue
        events.append((t0, 1, idx, s))
        events.append((t1, 0, idx, s))
    if not events:
        return [_Segment(0.0, t_end, names.CAT_COMPUTE, None)]
    events.sort(key=lambda e: (e[0], e[1], e[2]))

    segments: List[_Segment] = []
    counts = {c: 0 for c in names.ATTRIBUTED_CATEGORIES}
    barrier_stack: List[object] = []
    prev = 0.0

    def flush(upto: float) -> None:
        nonlocal prev
        if upto <= prev + _EPS:
            prev = max(prev, upto)
            return
        category = names.CAT_COMPUTE
        for cat in reversed(names.ATTRIBUTED_CATEGORIES):  # high prio first
            if counts[cat]:
                category = cat
                break
        releaser = None
        if category == names.CAT_BARRIER and barrier_stack:
            args = barrier_stack[-1].args or {}
            releaser = args.get("releaser")
        segments.append(_Segment(prev, upto, category, releaser))
        prev = upto

    for t, kind, _idx, span in events:
        flush(t)
        if kind == 1:
            counts[span.category] += 1
            if span.category == names.CAT_BARRIER:
                barrier_stack.append(span)
        else:
            counts[span.category] -= 1
            if span.category == names.CAT_BARRIER:
                barrier_stack.remove(span)
    flush(t_end)
    return segments


def _segment_at(segments: List[_Segment], t: float) -> _Segment:
    """The segment containing the instant just before ``t`` (t0 < t <= t1)."""
    lo, hi = 0, len(segments) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if segments[mid].t1 < t - _EPS:
            lo = mid + 1
        else:
            hi = mid
    return segments[lo]


def attribute_run(tracer: Tracer) -> Dict[str, float]:
    """Charge the run's ``[0, T]`` to the four breakdown categories."""
    totals = {c: 0.0 for c in names.BREAKDOWN_CATEGORIES}
    t_end = tracer.end_time
    if t_end <= 0.0:
        return totals

    timelines = {
        track[1]: _timeline(tracer.spans_on(track), t_end)
        for track in tracer.thread_tracks()
    }
    if not timelines:
        totals[names.CAT_COMPUTE] = t_end
        return totals

    # start on the thread active latest (ties: lowest thread id)
    def last_busy(tid: int) -> float:
        segs = timelines[tid]
        for seg in reversed(segs):
            if seg.category != names.CAT_COMPUTE:
                return seg.t1
        return 0.0

    current = max(sorted(timelines), key=last_busy)
    t = t_end
    visited_here: set = set()  # tracks visited at the current timestamp
    while t > _EPS:
        seg = _segment_at(timelines[current], t)
        releaser = seg.releaser
        if (seg.category == names.CAT_BARRIER
                and releaser is not None
                and releaser != current
                and releaser in timelines
                and releaser not in visited_here):
            visited_here.add(current)
            current = releaser
            continue
        lo = max(seg.t0, 0.0)
        totals[seg.category] += t - lo
        t = lo
        visited_here.clear()
    return totals


class AttributionReport:
    """Aggregated critical-path attribution for a set of traced runs.

    One canonical fold of :func:`attribute_run` shared by the harness's
    ``--report-breakdown`` rendering (:meth:`rows`) and the campaign
    summarizer (:meth:`to_json`), so the two views can never disagree.
    """

    __slots__ = ("totals", "total_seconds")

    def __init__(self, totals: Dict[str, float], total_seconds: float):
        self.totals = totals
        self.total_seconds = total_seconds

    @classmethod
    def from_tracers(cls, tracers) -> "AttributionReport":
        totals = {c: 0.0 for c in names.BREAKDOWN_CATEGORIES}
        grand = 0.0
        for tracer in tracers:
            per_run = attribute_run(tracer)
            for cat, sec in per_run.items():
                totals[cat] += sec
            grand += tracer.end_time
        return cls(totals, grand)

    def share(self, category: str) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.totals[category] / self.total_seconds

    def rows(self) -> List[dict]:
        """Render-oriented rows (``--report-breakdown``), total last."""
        rows = [{"category": cat, "seconds": self.totals[cat],
                 "share": self.share(cat)}
                for cat in names.BREAKDOWN_CATEGORIES]
        rows.append({"category": "total", "seconds": self.total_seconds,
                     "share": 1.0 if self.total_seconds > 0 else 0.0})
        return rows

    def to_json(self) -> Dict[str, object]:
        """Stable machine-readable form (analytics summary schema)."""
        return {
            "categories": {cat: self.totals[cat]
                           for cat in names.BREAKDOWN_CATEGORIES},
            "total_seconds": self.total_seconds,
        }


def breakdown_rows(tracers) -> List[dict]:
    """Aggregate per-category attribution across runs into report rows."""
    return AttributionReport.from_tracers(tracers).rows()


def comm_matrix_rows(tracers) -> List[dict]:
    """Merge per-run src→dst communication matrices across runs."""
    merged: Dict[Tuple[int, int], List[float]] = {}
    for tracer in tracers:
        for row in tracer.comm_matrix():
            cell = merged.setdefault((row["src_node"], row["dst_node"]), [0, 0.0])
            cell[0] += row["messages"]
            cell[1] += row["bytes"]
    return [
        {"src_node": s, "dst_node": d,
         "messages": int(merged[(s, d)][0]), "bytes": merged[(s, d)][1]}
        for (s, d) in sorted(merged)
    ]


def _union_length(intervals: List[Tuple[float, float]]) -> float:
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    total += cur_hi - cur_lo
    return total


def link_utilization_rows(tracers) -> List[dict]:
    """Per-link busy time and utilization (union of transfer spans / T)."""
    busy: Dict[str, float] = {}
    span_time: Dict[str, float] = {}
    for tracer in tracers:
        t_end = tracer.end_time
        for track in tracer.link_tracks():
            name = track[1]
            intervals = [(s.t0, s.t1 if s.t1 is not None else t_end)
                         for s in tracer.spans_on(track)]
            busy[name] = busy.get(name, 0.0) + _union_length(intervals)
            span_time[name] = span_time.get(name, 0.0) + t_end
    return [
        {"link": name, "busy_seconds": busy[name],
         "utilization": busy[name] / span_time[name] if span_time[name] > 0 else 0.0}
        for name in sorted(busy)
    ]
