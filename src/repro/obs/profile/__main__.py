"""CLI for profile artifacts: ``python -m repro.obs.profile``.

Two subcommands over ``*-host.json`` / ``*-cost.json`` documents:

* ``validate PATH...`` — schema-check each document (exit 2 on any
  problem); this is what CI's profile-smoke job runs.
* ``top PATH [-n N]`` — print the document's ranked sites (calls for
  host profiles, costed cycles for cost profiles).  Because the ranking
  weight is deterministic, ``top`` output is diffable across runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.profile.report import validate_profile


def _load(path: Path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _cmd_validate(args: argparse.Namespace) -> int:
    bad = 0
    for name in args.paths:
        path = Path(name)
        try:
            doc = _load(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable: {exc}")
            bad += 1
            continue
        problems = validate_profile(doc)
        if problems:
            bad += 1
            for problem in problems:
                print(f"{path}: {problem}")
        else:
            print(f"{path}: ok ({doc['mode']}, {len(doc.get('top', []))} sites)")
    return 2 if bad else 0


def _cmd_top(args: argparse.Namespace) -> int:
    doc = _load(Path(args.path))
    problems = validate_profile(doc)
    if problems:
        for problem in problems:
            print(f"{args.path}: {problem}", file=sys.stderr)
        return 2
    weight = "calls" if doc["mode"] == "host" else "cycles"
    print(f"# {doc['label']} [{doc['mode']}] runs={doc['runs']} weight={weight}")
    for rank, (site, value) in enumerate(doc["top"][:args.n], start=1):
        print(f"{rank:3d}  {site:<24s} {value}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Validate and rank engine profile artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="schema-check profile JSON files")
    p_validate.add_argument("paths", nargs="+", help="profile .json files")
    p_validate.set_defaults(fn=_cmd_validate)

    p_top = sub.add_parser("top", help="print a profile's ranked sites")
    p_top.add_argument("path", help="one profile .json file")
    p_top.add_argument("-n", type=int, default=10, help="rows to print (default 10)")
    p_top.set_defaults(fn=_cmd_top)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout piped into head/grep that exited early: not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
