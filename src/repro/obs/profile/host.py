"""Host wall-clock profiler: deterministic-ranking folded site stacks.

Wraps a region of host execution in a ``sys.setprofile`` hook and
attributes both **Python call counts** and **wall nanoseconds** to paths
of curated sites (:mod:`repro.obs.profile.sites`).  Two design choices
make the output usable as a cross-revision artifact:

* **Sites, not frames.**  Consecutive frames resolving to the same site
  collapse into one path element, and transparent frames (stdlib,
  third-party, import machinery) never open a path element of their own
  — their time accrues to the innermost enclosing site.  A profile
  therefore has tens of rows, not tens of thousands, and survives
  refactors that rename functions within a layer.
* **Deterministic ranking.**  Call counts are a pure function of the
  simulation (the event loop fixes execution order), so ranking sites by
  calls reproduces across runs on any host; wall times ride along as the
  human-facing magnitude and are *expected* to jitter.  The folded
  export weighs stacks by calls for exactly this reason.

This module is the one place outside ``repro/harness`` allowed to read
the wall clock (PGAS001 exemption): measuring host time is its job.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Tuple

from repro.obs.profile.sites import site_for_code

__all__ = ["HostProfiler"]


class HostProfiler:
    """A start/stop wall-clock profiler over curated site paths."""

    def __init__(self) -> None:
        #: site path -> [python calls, wall nanoseconds]
        self.stats: Dict[Tuple[str, ...], List[int]] = {}
        self._path: List[str] = []
        self._pushed: List[bool] = []
        self._last_ns = 0
        self._active = False

    # -- the profile hook --------------------------------------------------

    def _accrue(self, now_ns: int) -> None:
        path = tuple(self._path)
        cell = self.stats.get(path)
        if cell is None:
            cell = self.stats[path] = [0, 0]
        cell[1] += now_ns - self._last_ns
        self._last_ns = now_ns

    def _hook(self, frame, event, arg) -> None:
        if event == "call":
            self._accrue(time.perf_counter_ns())
            site = site_for_code(frame.f_code)
            path = self._path
            if site is None:
                self._pushed.append(False)
                return
            if not path or path[-1] != site:
                path.append(site)
                self._pushed.append(True)
            else:
                self._pushed.append(False)
            key = tuple(path)
            cell = self.stats.get(key)
            if cell is None:
                cell = self.stats[key] = [0, 0]
            cell[0] += 1
        elif event == "return":
            self._accrue(time.perf_counter_ns())
            if self._pushed and self._pushed.pop():
                self._path.pop()
        # c_call/c_return/c_exception: C time accrues to the current
        # path automatically at the next Python-level event.

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._active:
            raise RuntimeError("host profiler already started")
        self._active = True
        self._last_ns = time.perf_counter_ns()
        sys.setprofile(self._hook)

    def stop(self) -> None:
        if not self._active:
            return
        sys.setprofile(None)
        self._accrue(time.perf_counter_ns())
        self._active = False
        # Frames entered while profiling were popped by their returns or
        # will never return to us; clear the bookkeeping either way.
        self._path.clear()
        self._pushed.clear()
