"""Profile sessions: arming both profilers for a region of host code.

Mirrors :mod:`repro.obs.session` exactly: profiling is off by default; a
:func:`profile_session` context manager arms it for the ``with`` body.
While a session is active every :class:`~repro.upc.runtime.UpcProgram`
(or :class:`~repro.mpi.comm.MpiProgram`) constructed attaches the
session's shared :class:`~repro.obs.profile.cost.CostProfiler` to its
simulator via :func:`profiler_for`; outside a session
:func:`profiler_for` returns :data:`~repro.obs.profile.cost.NULL_PROFILER`
and the engine hot paths stay on their no-op branch.

The session also owns one :class:`~repro.obs.profile.host.HostProfiler`
spanning the whole body — ``sys.setprofile`` is process-global, so one
wall-clock profile per session is the honest granularity — while the
cost profiler is shared across every run the session covers (a harness
point is one session, so per-point snapshots fall out naturally).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional

from repro.obs.profile.cost import NULL_PROFILER, CostProfiler
from repro.obs.profile.host import HostProfiler

__all__ = ["ProfileSession", "profile_session", "profiler_for",
           "active_profile_session"]

#: The module-global active session (None when profiling is off).
_ACTIVE: Optional["ProfileSession"] = None


class ProfileSession:
    """One armed profiling region: a host profiler + a shared cost profiler."""

    def __init__(self, label: str = "session"):
        self.label = label
        self.host = HostProfiler()
        self.cost = CostProfiler()

    def snapshot(self) -> Dict[str, Any]:
        """The session's tallies as a plain JSON-able (picklable) dict.

        This is the per-point payload executors ship back from workers;
        :func:`repro.obs.profile.report.merge_snapshots` re-aggregates.
        """
        return {
            "host": [
                [list(path), calls, wall_ns]
                for path, (calls, wall_ns) in sorted(self.host.stats.items())
            ],
            "cost": [
                [phase, site, events, cycles, switches]
                for (phase, site), (events, cycles, switches)
                in sorted(self.cost.tallies.items())
            ],
        }


def active_profile_session() -> Optional[ProfileSession]:
    return _ACTIVE


def profiler_for(sim):
    """The session's cost profiler when armed, else the no-op profiler."""
    if _ACTIVE is None:
        return NULL_PROFILER
    return _ACTIVE.cost


@contextmanager
def profile_session(label: str = "session"):
    """Arm profiling for the ``with`` body; yields the :class:`ProfileSession`.

    Sessions do not nest (same contract as :func:`~repro.obs.session.trace_session`):
    ``sys.setprofile`` is process-global, so a second session would
    silently steal the first one's hook.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a profile session is already active")
    session = ProfileSession(label)
    _ACTIVE = session
    session.host.start()
    try:
        yield session
    finally:
        session.host.stop()
        _ACTIVE = None
