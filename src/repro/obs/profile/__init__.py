"""repro.obs.profile — two-mode engine profiling with flamegraph export.

The scoreboard for the ROADMAP's ≥5x engine-throughput campaign: *where*
does the pure-Python engine spend time?  Two complementary answers:

* **host** (:mod:`~repro.obs.profile.host`): a ``sys.setprofile``
  wall-clock profiler over a curated site registry
  (:mod:`~repro.obs.profile.sites`).  Site *ranking* is deterministic
  (weighted by Python call counts, a pure function of the simulation);
  wall times are auxiliary and jitter with the host.
* **cost** (:mod:`~repro.obs.profile.cost`): simulated costed cycles,
  scheduled events and context switches per (experiment phase, site),
  fed by engine hooks behind the same NULL-object discipline as the
  tracer.  Byte-deterministic across runs, executors and job counts.

Arm both with :func:`profile_session`; the harness does so per point
under ``--profile <dir>`` and writes ``<label>-{host,cost}.{json,folded}``
via :mod:`~repro.obs.profile.report`.  ``python -m repro.obs.profile``
validates and ranks existing profile files.
"""

from repro.obs.profile.cost import NO_PHASE, NULL_PROFILER, CostProfiler, NullCostProfiler
from repro.obs.profile.host import HostProfiler
from repro.obs.profile.report import (
    PROFILE_SCHEMA,
    cost_document,
    folded_lines,
    host_document,
    merge_snapshots,
    validate_profile,
    write_profiles,
)
from repro.obs.profile.session import (
    ProfileSession,
    active_profile_session,
    profile_session,
    profiler_for,
)
from repro.obs.profile.sites import KNOWN_SITES, SITE_OTHER, site_for_callable, site_for_code

__all__ = [
    "CostProfiler", "NullCostProfiler", "NULL_PROFILER", "NO_PHASE",
    "HostProfiler",
    "PROFILE_SCHEMA", "host_document", "cost_document", "merge_snapshots",
    "folded_lines", "validate_profile", "write_profiles",
    "ProfileSession", "profile_session", "profiler_for", "active_profile_session",
    "KNOWN_SITES", "SITE_OTHER", "site_for_code", "site_for_callable",
]
