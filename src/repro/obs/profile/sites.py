"""Curated profile-site registry: frames → stable subsystem identifiers.

Both profilers (:mod:`repro.obs.profile.host` and
:mod:`repro.obs.profile.cost`) attribute work to **sites** — short,
stable identifiers for the engine subsystems the ROADMAP's speedup work
cares about — rather than to raw code frames.  Raw frames churn with
every refactor and differ between Python versions; the curated registry
is what makes a profile from revision N diffable against revision N+10.

Resolution is by code object, keyed on ``co_filename`` (version-portable:
``co_qualname`` does not exist on 3.10) plus ``co_name`` for the engine's
own functions, where one module spans several subsystems (heap push,
coroutine switch, combinators).  Three outcomes:

* a site id (``"engine.switch"``, ``"gasnet"``, ``"app.uts"``, ...);
* ``None`` — the frame is *transparent*: import machinery, stdlib and
  third-party code do not open a site of their own, their time accrues
  to the innermost enclosing site (so a numpy helper inside FT stays
  FT time and two runs with different ``.pyc`` states rank the same);
* :data:`SITE_OTHER` for host frames outside the repo when nothing
  encloses them.

Every site this registry can produce is enumerated in
:data:`KNOWN_SITES`, which the profile schema validator checks against.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "KNOWN_SITES",
    "SITE_OTHER",
    "site_for_code",
    "site_for_callable",
]

#: Host frames that belong to no repo layer and have no enclosing site.
SITE_OTHER = "host.other"

#: repro.sim.engine spans several subsystems; split it by function name.
_ENGINE_SITES = {
    "run": "engine.run",
    "step": "engine.run",
    "schedule_at": "engine.heap.push",
    "schedule_after": "engine.heap.push",
    "_step": "engine.switch",
    "_wait_for": "engine.wait",
    "_resume": "engine.wait",
    "_complete": "engine.wait",
    "add_callback": "engine.wait",
    "_fire": "engine.wait",
    "_child_done": "engine.combinator",
}
_ENGINE_DEFAULT = "engine.other"

#: Ordered (path fragment, site) rules; first match wins, so the more
#: specific fragments come before their containing package.
_LAYER_RULES = (
    ("repro/sim/resources", "sim.cost"),
    ("repro/sim/trace", "sim.stats"),
    ("repro/sim/", "sim.other"),
    ("repro/obs/tracer", "obs.tracer"),
    ("repro/obs/", "obs.other"),
    ("repro/analyze/", "analyze.sanitizer"),
    ("repro/network/", "fabric"),
    ("repro/gasnet/", "gasnet"),
    ("repro/upc/", "upc"),
    ("repro/mpi/", "mpi"),
    ("repro/subthreads/", "subthreads"),
    ("repro/machine/", "machine"),
    ("repro/faults/", "faults"),
    ("repro/apps/uts", "app.uts"),
    ("repro/apps/ft", "app.ft"),
    ("repro/apps/stream", "app.stream"),
    ("repro/apps/microbench", "app.microbench"),
    ("repro/apps/randomaccess", "app.gups"),
    ("repro/apps/", "app.other"),
    ("repro/harness/", "harness"),
)

#: Every site id resolution can produce (validators check against this).
KNOWN_SITES = tuple(sorted(
    set(_ENGINE_SITES.values())
    | {site for _, site in _LAYER_RULES}
    | {_ENGINE_DEFAULT, SITE_OTHER}
))

#: (co_filename, co_name) -> site id (or None for transparent frames).
#: Resolution depends on exactly those two fields, so they are the cache
#: key — code objects themselves compare equal across *different*
#: filenames (``compile("pass", a) == compile("pass", b)``), which would
#: let one exec'd snippet poison the cache for another.
_CACHE: Dict[object, Optional[str]] = {}


def _resolve(code) -> Optional[str]:
    filename = code.co_filename
    if filename.startswith("<"):
        return None  # frozen importlib / exec'd strings: transparent
    path = filename.replace("\\", "/")
    if "repro/sim/engine" in path:
        return _ENGINE_SITES.get(code.co_name, _ENGINE_DEFAULT)
    for fragment, site in _LAYER_RULES:
        if fragment in path:
            return site
    return None  # stdlib / third-party: transparent


def site_for_code(code) -> Optional[str]:
    """The site of one code object, or None for a transparent frame."""
    key = (code.co_filename, code.co_name)
    try:
        return _CACHE[key]
    except KeyError:
        site = _resolve(code)
        _CACHE[key] = site
        return site


def site_for_callable(fn) -> str:
    """The site of a callback (bound method or function); never None.

    Engine heap entries hold bound methods (``Process._step``,
    ``Delay._fire``); anything without Python code (C callables) falls
    back to :data:`SITE_OTHER`.
    """
    func = getattr(fn, "__func__", fn)
    code = getattr(func, "__code__", None)
    if code is None:
        return SITE_OTHER
    return site_for_code(code) or SITE_OTHER
