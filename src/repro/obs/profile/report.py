"""Profile documents: canonical JSON and folded-stack (flamegraph) export.

One profiled run yields per-point **snapshots** (plain JSON-able lists,
picklable across executor workers); this module merges them and renders
the two artifact pairs the subsystem promises:

* ``<label>-host.json`` / ``<label>-host.folded`` — wall-clock profile.
  Folded lines are weighted by **Python calls**, the deterministic
  weight, so ``flamegraph.pl`` output and top-site rankings reproduce
  across runs; wall microseconds ride along inside the JSON.
* ``<label>-cost.json`` / ``<label>-cost.folded`` — simulated-cost
  profile.  Entirely a function of the simulation: byte-identical
  across runs, executors and job counts.  Folded lines carry three
  synthetic roots (``events``, ``cycles``, ``switches``) over
  ``<phase>;<site>`` stacks.

JSON documents are canonical (:func:`canonical_dumps`: sorted keys,
compact separators, trailing newline) and self-describing::

    {"schema": 1, "mode": "host"|"cost", "label": ..., "runs": N,
     "stacks"|"phases": [...], "top": [[site, weight], ...]}

Row metric keys are the registered :mod:`repro.obs.names` ``PROF_*``
names, and every site must appear in ``KNOWN_SITES`` —
:func:`validate_profile` enforces both.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import names
from repro.obs.analytics.summary import canonical_dumps
from repro.obs.profile.sites import KNOWN_SITES, SITE_OTHER

__all__ = [
    "PROFILE_SCHEMA",
    "host_document",
    "cost_document",
    "merge_snapshots",
    "folded_lines",
    "validate_profile",
    "write_profiles",
]

PROFILE_SCHEMA = 1

#: Weight used for ranking/folded export, per mode: the deterministic one.
_RANK_KEY = {"host": names.PROF_HOST_CALLS, "cost": names.PROF_COST_CYCLES}


def merge_snapshots(
    snapshots: Iterable[Optional[Dict[str, Any]]],
) -> Tuple[Dict[Tuple[str, ...], List[int]], Dict[Tuple[str, str], List[int]], int]:
    """Sum per-point snapshots; returns (host stats, cost tallies, runs).

    ``None`` entries (quarantined/failed points) are skipped so a
    degraded campaign's profile covers exactly the healthy remainder.
    """
    host: Dict[Tuple[str, ...], List[int]] = {}
    cost: Dict[Tuple[str, str], List[int]] = {}
    runs = 0
    for snap in snapshots:
        if snap is None:
            continue
        runs += 1
        for row in snap.get("host", ()):
            path, calls, wall_ns = tuple(row[0]), row[1], row[2]
            cell = host.setdefault(path, [0, 0])
            cell[0] += calls
            cell[1] += wall_ns
        for row in snap.get("cost", ()):
            phase, site = row[0], row[1]
            cell = cost.setdefault((phase, site), [0, 0, 0])
            cell[0] += row[2]
            cell[1] += row[3]
            cell[2] += row[4]
    return host, cost, runs


def _top(weights: Dict[str, int]) -> List[List[Any]]:
    ranked = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    return [[site, weight] for site, weight in ranked]


def host_document(label: str,
                  stats: Dict[Tuple[str, ...], List[int]],
                  runs: int = 1) -> Dict[str, Any]:
    """Canonical host-profile document from HostProfiler stats."""
    rows = []
    by_site: Dict[str, int] = {}
    for path, (calls, wall_ns) in sorted(stats.items()):
        stack = list(path) if path else [SITE_OTHER]
        rows.append({
            "stack": stack,
            names.PROF_HOST_CALLS: calls,
            names.PROF_HOST_WALL_US: wall_ns // 1000,
        })
        leaf = stack[-1]
        by_site[leaf] = by_site.get(leaf, 0) + calls
    return {
        "schema": PROFILE_SCHEMA,
        "mode": "host",
        "label": label,
        "runs": runs,
        "stacks": rows,
        "top": _top(by_site),
    }


def cost_document(label: str,
                  tallies: Dict[Tuple[str, str], List[int]],
                  runs: int = 1) -> Dict[str, Any]:
    """Canonical cost-profile document from CostProfiler tallies."""
    rows = []
    by_site: Dict[str, int] = {}
    for (phase, site), (events, cycles, switches) in sorted(tallies.items()):
        rows.append({
            "phase": phase,
            "site": site,
            names.PROF_COST_EVENTS: events,
            names.PROF_COST_CYCLES: cycles,
            names.PROF_COST_SWITCHES: switches,
        })
        by_site[site] = by_site.get(site, 0) + cycles
    return {
        "schema": PROFILE_SCHEMA,
        "mode": "cost",
        "label": label,
        "runs": runs,
        "phases": rows,
        "top": _top(by_site),
    }


def folded_lines(doc: Dict[str, Any]) -> List[str]:
    """Flamegraph-ready ``stack;frames weight`` lines, sorted."""
    lines: List[str] = []
    if doc["mode"] == "host":
        for row in doc["stacks"]:
            calls = row[names.PROF_HOST_CALLS]
            if calls:
                lines.append(";".join(row["stack"]) + f" {calls}")
    else:
        for row in doc["phases"]:
            base = f"{row['phase']};{row['site']}"
            for root, key in (("events", names.PROF_COST_EVENTS),
                              ("cycles", names.PROF_COST_CYCLES),
                              ("switches", names.PROF_COST_SWITCHES)):
                weight = row[key]
                if weight:
                    lines.append(f"{root};{base} {weight}")
    return sorted(lines)


def _check_rows(doc: Dict[str, Any], errors: List[str]) -> None:
    if doc["mode"] == "host":
        for i, row in enumerate(doc.get("stacks", [])):
            stack = row.get("stack")
            if not stack or not isinstance(stack, list):
                errors.append(f"stacks[{i}]: missing or empty stack")
                continue
            for site in stack:
                if site not in KNOWN_SITES:
                    errors.append(f"stacks[{i}]: unknown site {site!r}")
            for key in names.PROF_HOST_METRICS:
                value = row.get(key)
                if not isinstance(value, int) or value < 0:
                    errors.append(f"stacks[{i}]: bad {key}: {value!r}")
    else:
        for i, row in enumerate(doc.get("phases", [])):
            if not isinstance(row.get("phase"), str):
                errors.append(f"phases[{i}]: missing phase")
            if row.get("site") not in KNOWN_SITES:
                errors.append(f"phases[{i}]: unknown site {row.get('site')!r}")
            for key in names.PROF_COST_METRICS:
                value = row.get(key)
                if not isinstance(value, int) or value < 0:
                    errors.append(f"phases[{i}]: bad {key}: {value!r}")


def validate_profile(doc: Any) -> List[str]:
    """Schema-check one profile document; returns a list of problems."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != PROFILE_SCHEMA:
        errors.append(f"schema: expected {PROFILE_SCHEMA}, got {doc.get('schema')!r}")
    mode = doc.get("mode")
    if mode not in ("host", "cost"):
        errors.append(f"mode: expected host|cost, got {mode!r}")
        return errors
    if not isinstance(doc.get("label"), str):
        errors.append("label: missing or not a string")
    runs = doc.get("runs")
    if not isinstance(runs, int) or runs < 0:
        errors.append(f"runs: bad value {runs!r}")
    rows_key = "stacks" if mode == "host" else "phases"
    if not isinstance(doc.get(rows_key), list):
        errors.append(f"{rows_key}: missing or not a list")
        return errors
    _check_rows(doc, errors)
    top = doc.get("top")
    if not isinstance(top, list):
        errors.append("top: missing or not a list")
    else:
        for i, entry in enumerate(top):
            if (not isinstance(entry, list) or len(entry) != 2
                    or entry[0] not in KNOWN_SITES
                    or not isinstance(entry[1], int)):
                errors.append(f"top[{i}]: bad entry {entry!r}")
    return errors


def write_profiles(out_dir, label: str,
                   snapshots: Sequence[Optional[Dict[str, Any]]]) -> List[Path]:
    """Merge point snapshots and write both artifact pairs; returns paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    host_stats, cost_tallies, runs = merge_snapshots(snapshots)
    written: List[Path] = []
    for doc in (host_document(label, host_stats, runs),
                cost_document(label, cost_tallies, runs)):
        problems = validate_profile(doc)
        if problems:  # a bug in this package, not in the run
            raise ValueError(f"invalid {doc['mode']} profile: {problems}")
        base = out / f"{label}-{doc['mode']}"
        json_path = base.with_suffix(".json")
        json_path.write_text(canonical_dumps(doc), encoding="utf-8")
        folded_path = base.with_suffix(".folded")
        folded_path.write_text(
            "".join(line + "\n" for line in folded_lines(doc)),
            encoding="utf-8")
        written.extend([json_path, folded_path])
    return written
