"""Simulated-cost profiler: costed cycles and switches per site and phase.

The engine already self-measures (events popped, costed cycles, context
switches — §12), but those tallies are campaign-level scalars.  This
profiler answers *where*: every scheduled event is attributed to the
curated site (:mod:`repro.obs.profile.sites`) of the layer that
scheduled it, every coroutine switch to the site of the generator being
resumed, and both are bucketed by the experiment phase open at that
simulated instant (the same phase timers §8's tracer spans come from).

Attribution of a scheduled event walks the host stack *outward from the
engine*: ``Delay.__init__`` → ``fabric.transfer`` means the fabric, not
the engine, pays for that costed cycle.  The walk is bounded and cached
per code object, and every tally is a pure function of the simulation —
a cost profile is **byte-deterministic** across runs, executors and job
counts, unlike the host profile whose wall times it complements.

Hook discipline mirrors the tracer and sanitizer: ``Simulator.profiler``
defaults to :data:`NULL_PROFILER` and hot paths guard with
``if profiler.enabled:``, so unprofiled runs pay one attribute load and
a predicted branch per site.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Tuple

from repro.obs.profile.sites import SITE_OTHER, site_for_callable, site_for_code

__all__ = ["CostProfiler", "NullCostProfiler", "NULL_PROFILER", "NO_PHASE"]

#: Phase bucket for work charged outside any open phase timer.
NO_PHASE = "(no phase)"

#: How many host frames the scheduling-site walk inspects before giving
#: up and attributing to the callback itself.
_WALK_LIMIT = 16

#: Sites that never *own* a scheduled event: the engine and the profiler
#: are plumbing, the walk continues outward past them.
_PLUMBING = ("engine.", "obs.")


class NullCostProfiler:
    """The disabled profiler: every hook is a no-op (NULL-object)."""

    enabled = False

    def event_scheduled(self, fn, costed: bool) -> None:
        pass

    def context_switch(self, process) -> None:
        pass

    def phase_started(self, name: str) -> None:
        pass

    def phase_ended(self, name: str) -> None:
        pass


NULL_PROFILER = NullCostProfiler()


class CostProfiler(NullCostProfiler):
    """Accumulates (phase, site) → [events, costed cycles, switches]."""

    enabled = True

    def __init__(self) -> None:
        #: (phase, site) -> [events scheduled, costed cycles, switches]
        self.tallies: Dict[Tuple[str, str], List[int]] = {}
        self._phases: List[str] = []

    # -- phase bookkeeping (fed by StatsCollector phase timers) -----------

    def phase_started(self, name: str) -> None:
        self._phases.append(name)

    def phase_ended(self, name: str) -> None:
        # Phases from parallel threads interleave; remove the most recent
        # matching entry rather than assuming strict stack discipline.
        for i in range(len(self._phases) - 1, -1, -1):
            if self._phases[i] == name:
                del self._phases[i]
                return

    @property
    def current_phase(self) -> str:
        return self._phases[-1] if self._phases else NO_PHASE

    # -- attribution -------------------------------------------------------

    def _cell(self, site: str) -> List[int]:
        key = (self.current_phase, site)
        cell = self.tallies.get(key)
        if cell is None:
            cell = self.tallies[key] = [0, 0, 0]
        return cell

    def _scheduling_site(self, fn) -> str:
        """The layer that scheduled an event: first non-plumbing caller.

        Walks outward from ``Simulator.schedule_at``; a Delay created by
        the fabric attributes to the fabric, one created directly by app
        code to the app.  Falls back to the callback's own site when the
        whole (bounded) walk is plumbing — e.g. engine-internal wakeups.
        """
        frame = sys._getframe(3)  # hook <- schedule_at [<- schedule_after]
        for _ in range(_WALK_LIMIT):
            if frame is None:
                break
            site = site_for_code(frame.f_code)
            if site is not None and not site.startswith(_PLUMBING):
                return site
            frame = frame.f_back
        return site_for_callable(fn)

    def event_scheduled(self, fn, costed: bool) -> None:
        cell = self._cell(self._scheduling_site(fn))
        cell[0] += 1
        if costed:
            cell[1] += 1

    def context_switch(self, process) -> None:
        gen = getattr(process, "gen", None)
        code = getattr(gen, "gi_code", None)
        site = (site_for_code(code) or SITE_OTHER) if code is not None \
            else SITE_OTHER
        self._cell(site)[2] += 1
