"""Cross-revision perf trends: N-way trajectories with bisect hints.

``diff`` compares exactly two campaign summaries; :func:`trend_report`
ingests an ordered *sequence* of perf points — committed
``BENCH_<rev>.json`` baselines (:mod:`benchmarks.emit_baseline`) and/or
campaign summaries — and answers the longitudinal questions the ≥5x
engine-throughput campaign needs:

* **trajectory** — every metric's value at every revision, as one table;
* **crossing detection** — a metric *crosses* when it moves beyond
  ``rel`` in its bad direction relative to the **first** point (the
  reference revision).  Normalized throughput is higher-better;
  wall-clock, event and switch counts are lower-better.
* **bisect hints** — for each crossed metric, the *first* revision at
  which it crossed: the place to start a bisect, named explicitly.

``--check`` (exit 1) fires only when the **latest** point is in a
crossed state — a metric that dipped and recovered is history, not a
regression.  A zero reference value cannot anchor a relative threshold:
such metrics flag (lower-better) only when they become nonzero, and
never flag when higher-better (nothing below zero to drop to).

Points are classified by shape: a JSON object with ``experiments`` is a
BENCH baseline (labelled by its ``rev``, ordered by ``generated`` then
``rev``); one with ``points`` is a campaign summary (labelled by
experiment + fingerprint, kept in argument order after the baselines).
A directory argument expands to the sorted ``BENCH_*.json`` files in it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import names

__all__ = ["TrendPoint", "TrendReport", "load_trend_points", "trend_report"]

#: Metric-name suffixes whose *increase* is good; everything else is
#: lower-better (times, event counts, switches).
_HIGHER_BETTER = ("normalized", "events_per_s")


def _direction(metric: str) -> int:
    """+1 if higher is better, -1 if lower is better."""
    return +1 if metric.endswith(_HIGHER_BETTER) else -1


@dataclass
class TrendPoint:
    """One revision's worth of metric values."""

    label: str                     #: rev (baselines) or experiment@fp
    kind: str                      #: "baseline" | "summary"
    order: Tuple[str, str]         #: sort key within its kind
    metrics: Dict[str, float] = field(default_factory=dict)


def _point_from_bench(doc: Dict[str, Any], path: Path) -> TrendPoint:
    rev = str(doc.get("rev", path.stem))
    point = TrendPoint(label=rev, kind="baseline",
                       order=(str(doc.get("generated", "")), rev))
    for exp, row in sorted(doc.get("experiments", {}).items()):
        for key in ("normalized", "wall_s", "events"):
            if key in row:
                point.metrics[f"{exp} {key}"] = float(row[key])
    return point


def _point_from_summary(doc: Dict[str, Any], path: Path) -> TrendPoint:
    head = doc.get("campaign", {})
    label = (f"{head.get('experiment', path.stem)}"
             f"@{str(head.get('fingerprint', ''))[:12]}")
    point = TrendPoint(label=label, kind="summary", order=("", label))
    elapsed = 0.0
    events = 0
    switches = 0
    for row in doc.get("points", []):
        elapsed += float(row.get("elapsed_s", 0.0))
        engine = row.get("engine", {})
        events += int(engine.get(names.ENGINE_EVENTS_POPPED, 0))
        switches += int(engine.get(names.ENGINE_CONTEXT_SWITCHES, 0))
    exp = head.get("experiment", path.stem)
    point.metrics[f"{exp} sim_s"] = elapsed
    point.metrics[f"{exp} engine_events"] = float(events)
    point.metrics[f"{exp} engine_switches"] = float(switches)
    return point


def load_trend_points(inputs: List[str]) -> List[TrendPoint]:
    """Classify and order the CLI's input paths into trend points.

    Baselines come first (ordered by generation time then rev, however
    they were passed); campaign summaries follow in argument order.
    """
    baselines: List[TrendPoint] = []
    summaries: List[TrendPoint] = []
    paths: List[Path] = []
    for name in inputs:
        path = Path(name)
        if path.is_dir():
            bench_files = sorted(path.glob("BENCH_*.json"))
            candidate = path / "campaign-summary.json"
            if bench_files:
                paths.extend(bench_files)
            elif candidate.is_file():
                paths.append(candidate)
            else:
                raise ValueError(
                    f"{path}: no BENCH_*.json or campaign-summary.json found")
        else:
            paths.append(path)
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: not a JSON object")
        if "experiments" in doc:
            baselines.append(_point_from_bench(doc, path))
        elif "points" in doc:
            summaries.append(_point_from_summary(doc, path))
        else:
            raise ValueError(
                f"{path}: neither a BENCH baseline (no 'experiments' key) "
                "nor a campaign summary (no 'points' key)")
    baselines.sort(key=lambda p: p.order)
    return baselines + summaries


@dataclass
class Crossing:
    """One metric's threshold crossing along the trend."""

    metric: str
    first_bad: str                 #: label of the first crossed revision
    reference: float               #: the metric at the first point
    latest: float                  #: the metric at the last point
    latest_crossed: bool           #: still beyond threshold at the end?


class TrendReport:
    """Trajectories plus crossings over an ordered revision sequence."""

    def __init__(self, points: List[TrendPoint], rel: float):
        self.points = points
        self.rel = rel
        self.crossings: List[Crossing] = []
        self._analyse()

    # -- analysis ----------------------------------------------------------

    def _series(self) -> Dict[str, List[Optional[float]]]:
        metrics = sorted({m for p in self.points for m in p.metrics})
        return {m: [p.metrics.get(m) for p in self.points] for m in metrics}

    def _crossed(self, metric: str, ref: float, value: float) -> bool:
        direction = _direction(metric)
        if ref == 0.0:
            # No relative anchor: lower-better metrics flag on becoming
            # nonzero; higher-better ones have nothing to drop from.
            return direction < 0 and value > 0.0
        if direction > 0:
            return value < (1.0 - self.rel) * ref
        return value > (1.0 + self.rel) * ref

    def _analyse(self) -> None:
        if len(self.points) < 2:
            return
        for metric, values in self._series().items():
            anchored = [(i, v) for i, v in enumerate(values) if v is not None]
            if len(anchored) < 2:
                continue
            ref = anchored[0][1]
            first_bad = None
            for i, value in anchored[1:]:
                if first_bad is None and self._crossed(metric, ref, value):
                    first_bad = self.points[i].label
            if first_bad is not None:
                latest = anchored[-1][1]
                self.crossings.append(Crossing(
                    metric=metric, first_bad=first_bad, reference=ref,
                    latest=latest,
                    latest_crossed=self._crossed(metric, ref, latest)))

    # -- verdicts ----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True unless the *latest* revision is in a crossed state."""
        return not any(c.latest_crossed for c in self.crossings)

    def to_json(self) -> Dict[str, Any]:
        return {
            "rel": self.rel,
            "points": [{"label": p.label, "kind": p.kind,
                        "metrics": dict(sorted(p.metrics.items()))}
                       for p in self.points],
            "crossings": [{
                "metric": c.metric, "first_bad": c.first_bad,
                "reference": c.reference, "latest": c.latest,
                "latest_crossed": c.latest_crossed,
            } for c in self.crossings],
            "ok": self.ok,
        }

    def render(self) -> str:
        labels = [p.label for p in self.points]
        series = self._series()
        lines = [f"perf trend across {len(self.points)} point(s): "
                 + " -> ".join(labels)]
        if not series:
            lines.append("(no comparable metrics)")
            return "\n".join(lines)
        name_w = max(len(m) for m in series)
        widths = [max(len(label), 10) for label in labels]
        header = "  " + " ".join(
            f"{label:>{w}}" for label, w in zip(labels, widths))
        lines.append(f"{'metric':<{name_w}}{header}")
        for metric, values in series.items():
            arrow = "^" if _direction(metric) > 0 else "v"
            cells = " ".join(
                f"{'-' if v is None else format(v, '.6g'):>{w}}"
                for v, w in zip(values, widths))
            lines.append(f"{metric:<{name_w}}  {cells}  [{arrow}]")
        for crossing in self.crossings:
            state = ("STILL REGRESSED" if crossing.latest_crossed
                     else "recovered")
            lines.append(
                f"crossing: {crossing.metric} first crossed at "
                f"{crossing.first_bad} (ref {crossing.reference:.6g} -> "
                f"latest {crossing.latest:.6g}, {state})")
        if self.ok:
            lines.append(
                f"verdict: CLEAN — latest point within ±{self.rel:.0%} of "
                "reference on every metric")
        else:
            worst = [c for c in self.crossings if c.latest_crossed]
            lines.append(
                f"verdict: REGRESSED — {len(worst)} metric(s) beyond "
                f"±{self.rel:.0%}; first bad revision(s): "
                + ", ".join(sorted({c.first_bad for c in worst})))
        return "\n".join(lines)


def trend_report(inputs: List[str], *, rel: float = 0.2) -> TrendReport:
    """Load every input point and analyse the sequence; see module doc."""
    points = load_trend_points(inputs)
    if len(points) < 2:
        raise ValueError(
            f"trend needs at least 2 points, got {len(points)} — pass more "
            "BENCH_*.json baselines and/or campaign summaries")
    return TrendReport(points, rel)
