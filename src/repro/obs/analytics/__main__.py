"""CLI for campaign analytics: summarize / diff / check / trend.

Examples::

    # (re)build campaign-summary.json for every campaign under a root
    python -m repro.obs.analytics summarize .summaries

    # localize regressions between two campaigns (exit 1 on regressions)
    python -m repro.obs.analytics diff .summaries/abc123 .summaries/def456

    # scan a summary's scaling curves for anomalies (exit 1 on anomalies)
    python -m repro.obs.analytics check .summaries/def456

    # N-way trajectory over committed baselines, with bisect hints
    python -m repro.obs.analytics trend benchmarks/baselines --check
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.analytics.check import check_summary
from repro.obs.analytics.diff import diff_summaries
from repro.obs.analytics.summary import (
    canonical_dumps,
    find_campaign_dirs,
    load_summary,
    summarize_campaign_dir,
)
from repro.obs.analytics.trend import trend_report


def _cmd_summarize(args: argparse.Namespace) -> int:
    directories = find_campaign_dirs(args.root)
    if not directories:
        print(f"no campaign directories under {args.root}", file=sys.stderr)
        return 2
    for directory in directories:
        summary, out = summarize_campaign_dir(directory)
        head = summary["campaign"]
        print(f"{out}  ({head.get('experiment', '?')}/"
              f"{head.get('scale', '?')}, {len(summary['points'])} point(s))")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    before = load_summary(args.before)
    after = load_summary(args.after)
    report = diff_summaries(
        before, after, rel=args.rel, share_floor=args.share_floor,
        count_floor=args.count_floor,
    )
    if args.json:
        print(canonical_dumps(report.to_json()), end="")
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    summary = load_summary(args.summary)
    report = check_summary(
        summary, rel_tol=args.rel_tol, cliff=args.cliff,
        min_points=args.min_points,
    )
    if args.json:
        print(canonical_dumps(report.to_json()), end="")
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_trend(args: argparse.Namespace) -> int:
    report = trend_report(args.inputs, rel=args.rel)
    if args.json:
        print(canonical_dumps(report.to_json()), end="")
    else:
        print(report.render())
    if args.check:
        return 0 if report.ok else 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analytics",
        description="Campaign-scale trace analytics: summarize, diff, check.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize",
        help="(re)build campaign-summary.json for campaign dir(s)",
    )
    p_sum.add_argument(
        "root",
        help="a campaign directory, or a summary root containing several",
    )
    p_sum.set_defaults(func=_cmd_summarize)

    p_diff = sub.add_parser(
        "diff", help="compare two campaign summaries; exit 1 on regressions",
    )
    p_diff.add_argument("before", help="baseline summary file or campaign dir")
    p_diff.add_argument("after", help="candidate summary file or campaign dir")
    p_diff.add_argument(
        "--rel", type=float, default=0.05,
        help="relative change needed to flag a metric (default 0.05)",
    )
    p_diff.add_argument(
        "--share-floor", type=float, default=0.01,
        help="seconds-metric floor as a share of point time (default 0.01)",
    )
    p_diff.add_argument(
        "--count-floor", type=float, default=16.0,
        help="absolute floor for count metrics (default 16)",
    )
    p_diff.add_argument("--json", action="store_true",
                        help="emit the report as canonical JSON")
    p_diff.set_defaults(func=_cmd_diff)

    p_check = sub.add_parser(
        "check",
        help="scan a summary's scaling curves; exit 1 on anomalies",
    )
    p_check.add_argument("summary", help="summary file or campaign dir")
    p_check.add_argument(
        "--rel-tol", type=float, default=0.05,
        help="speedup drop tolerated before flagging (default 0.05)",
    )
    p_check.add_argument(
        "--cliff", type=float, default=0.4,
        help="efficiency ratio below which one step is a cliff (default 0.4)",
    )
    p_check.add_argument(
        "--min-points", type=int, default=3,
        help="minimum points per series to analyse (default 3)",
    )
    p_check.add_argument("--json", action="store_true",
                         help="emit the report as canonical JSON")
    p_check.set_defaults(func=_cmd_check)

    p_trend = sub.add_parser(
        "trend",
        help="N-way perf trajectory over BENCH baselines and/or campaign "
             "summaries, with first-bad bisect hints",
    )
    p_trend.add_argument(
        "inputs", nargs="+",
        help="BENCH_<rev>.json files, campaign summaries/dirs, or a "
             "directory of BENCH_*.json baselines",
    )
    p_trend.add_argument(
        "--rel", type=float, default=0.2,
        help="relative move (vs the first point) that counts as a "
             "threshold crossing (default 0.2)",
    )
    p_trend.add_argument(
        "--check", action="store_true",
        help="exit 1 if the latest point is in a crossed (regressed) state",
    )
    p_trend.add_argument("--json", action="store_true",
                         help="emit the report as canonical JSON")
    p_trend.set_defaults(func=_cmd_trend)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
