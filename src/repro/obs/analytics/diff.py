"""Campaign-summary diff: localize *what* regressed between two runs.

:func:`diff_summaries` compares two campaign summaries point by point
(points match by campaign index — the spec order is deterministic, so
index ``i`` names the same experiment cell on both sides even when the
specs themselves differ, e.g. a FaultPlan was added) and emits a
:class:`Delta` per metric whose change clears the thresholds:

* **seconds metrics** (simulated time, breakdown categories, per-phase
  times, per-link busy time, barrier waits, steal time) regress when the
  increase is both *relatively* large (``rel``, default +5%) and *large
  enough to matter* — at least ``share_floor`` (default 1%) of the
  point's total simulated time, so microscopic phases cannot page anyone.
* **count metrics** (engine events, messages, bytes) regress when the
  relative change clears ``rel`` and the absolute change clears
  ``count_floor`` — cheap guards against off-by-a-few noise.

Decreases beyond the same thresholds are reported as improvements;
structural mismatches (different experiments, point counts, apps or
schema) are *errors*, not silently skipped cells.  The rendered report
and JSON form are deterministic: rows sort by point index then metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from repro.obs import names
from repro.obs.analytics.summary import SCHEMA_VERSION

__all__ = ["Delta", "DiffReport", "diff_summaries"]

_REGRESSION = "regression"
_IMPROVEMENT = "improvement"


@dataclass(frozen=True)
class Delta:
    """One flagged metric change at one campaign point."""

    point: int            #: campaign point index (-1 for campaign-level)
    label: str            #: point label, e.g. "uts" (the spec's app)
    metric: str           #: what moved, e.g. "phase 'search'"
    before: float
    after: float
    kind: str             #: "regression" | "improvement"

    @property
    def rel_change(self) -> float:
        if self.before == 0:
            return float("inf") if self.after > 0 else 0.0
        return (self.after - self.before) / self.before

    def row(self) -> Dict[str, Any]:
        return {
            "point": self.point, "label": self.label, "metric": self.metric,
            "before": self.before, "after": self.after, "kind": self.kind,
        }

    def render(self) -> str:
        rel = self.rel_change
        pct = "new" if rel == float("inf") else f"{100.0 * rel:+.1f}%"
        return (f"point {self.point} ({self.label}): {self.metric} {pct} "
                f"({self.before:.6g} -> {self.after:.6g}) [{self.kind}]")


class DiffReport:
    """The verdicts of one campaign-summary comparison."""

    def __init__(self, title: str):
        self.title = title
        self.deltas: List[Delta] = []
        self.errors: List[str] = []
        self.compared = 0      #: metric cells examined

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.kind == _REGRESSION]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas if d.kind == _IMPROVEMENT]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.errors

    def to_json(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "compared": self.compared,
            "errors": list(self.errors),
            "deltas": [d.row() for d in self.deltas],
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [f"campaign diff: {self.title}"]
        for err in self.errors:
            lines.append(f"  ! {err}")
        for delta in self.deltas:
            lines.append(f"  {delta.render()}")
        n_reg = len(self.regressions)
        n_imp = len(self.improvements)
        if self.ok and not self.deltas:
            lines.append(
                f"verdict: CLEAN — no regressions across {self.compared} "
                "compared metric(s)"
            )
        elif self.ok:
            lines.append(
                f"verdict: CLEAN — 0 regression(s), {n_imp} improvement(s) "
                f"across {self.compared} compared metric(s)"
            )
        else:
            what = f"{n_reg} regression(s), {n_imp} improvement(s)"
            if self.errors:
                what += f", {len(self.errors)} error(s)"
            lines.append(
                f"verdict: REGRESSED — {what} across {self.compared} "
                "compared metric(s)"
            )
        return "\n".join(lines)


def _point_metrics(point: Dict[str, Any]) -> Iterator[Tuple[str, float, str]]:
    """Yield ``(metric name, value, basis)`` for every comparable cell.

    ``basis`` is ``"seconds"`` (thresholded against the point's total
    simulated time) or ``"count"`` (thresholded absolutely).
    """
    yield "time", point["elapsed_s"], "seconds"
    for cat in sorted(point["breakdown"]["categories"]):
        yield (f"breakdown {cat}", point["breakdown"]["categories"][cat],
               "seconds")
    for name in sorted(point["phases"]):
        yield f"phase {name!r}", point["phases"][name]["seconds"], "seconds"
    for row in point["links"]:
        yield f"link {row['link']}", row["busy_seconds"], "seconds"
    yield "barrier wait", point["barriers"]["wait_seconds"], "seconds"
    for name in sorted(point["barriers"]["by_name"]):
        yield (f"barrier {name!r}",
               point["barriers"]["by_name"][name]["seconds"], "seconds")
    yield "steal time", point["steals"]["seconds"], "seconds"
    engine = point.get("engine", {})
    yield "engine events", float(engine.get(names.ENGINE_EVENTS_POPPED, 0)), "count"
    yield ("engine context switches",
           float(engine.get(names.ENGINE_CONTEXT_SWITCHES, 0)), "count")
    messages = sum(row["messages"] for row in point["comm"])
    nbytes = sum(row["bytes"] for row in point["comm"])
    yield "comm messages", float(messages), "count"
    yield "comm bytes", float(nbytes), "count"


def diff_summaries(before: Dict[str, Any], after: Dict[str, Any], *,
                   rel: float = 0.05, share_floor: float = 0.01,
                   count_floor: float = 16.0) -> DiffReport:
    """Compare two campaign summaries; see the module docstring for rules."""
    head_a = before.get("campaign", {})
    head_b = after.get("campaign", {})
    title = (
        f"{head_a.get('experiment', '?')}/{head_a.get('scale', '?')} "
        f"{head_a.get('fingerprint', '?')[:12]} -> "
        f"{head_b.get('experiment', '?')}/{head_b.get('scale', '?')} "
        f"{head_b.get('fingerprint', '?')[:12]}"
    )
    report = DiffReport(title)
    for side, summary in (("before", before), ("after", after)):
        if summary.get("schema") != SCHEMA_VERSION:
            report.errors.append(
                f"{side} summary has schema {summary.get('schema')!r}, "
                f"this build compares {SCHEMA_VERSION}"
            )
    if report.errors:
        return report
    if head_a.get("experiment") != head_b.get("experiment"):
        report.errors.append(
            f"experiments differ: {head_a.get('experiment')!r} vs "
            f"{head_b.get('experiment')!r}"
        )
    if head_a.get("scale") != head_b.get("scale"):
        report.errors.append(
            f"scales differ: {head_a.get('scale')!r} vs "
            f"{head_b.get('scale')!r}"
        )
    points_a = before.get("points", [])
    points_b = after.get("points", [])
    if len(points_a) != len(points_b):
        report.errors.append(
            f"point counts differ: {len(points_a)} vs {len(points_b)}; "
            "comparing the common prefix"
        )
    for index, (pa, pb) in enumerate(zip(points_a, points_b)):
        if pa.get("app") != pb.get("app"):
            report.errors.append(
                f"point {index}: apps differ ({pa.get('app')!r} vs "
                f"{pb.get('app')!r}); skipped"
            )
            continue
        label = str(pa.get("app", "?"))
        time_scale = max(pa["elapsed_s"], pb["elapsed_s"], 0.0)
        metrics_a = {m: (v, basis) for m, v, basis in _point_metrics(pa)}
        metrics_b = {m: (v, basis) for m, v, basis in _point_metrics(pb)}
        for metric in sorted(set(metrics_a) | set(metrics_b)):
            value_a, basis = metrics_a.get(
                metric, (0.0, metrics_b.get(metric, (0.0, "count"))[1]))
            value_b, _ = metrics_b.get(metric, (0.0, basis))
            report.compared += 1
            delta = value_b - value_a
            floor = (share_floor * time_scale if basis == "seconds"
                     else count_floor)
            if floor <= 0.0:
                # Degenerate time scale (both sides idle, or a summary
                # with elapsed_s 0): fall back to an absolute floor so a
                # zero-baseline metric cannot auto-flag on noise.
                floor = share_floor
            if abs(delta) <= floor:
                continue
            # Relative guard with a positive denominator: an absent or
            # zero baseline compares against the floor instead, so the
            # 0 -> X direction still flags once X clears the floor and
            # the division can never blow up.
            if abs(delta) / max(value_a, floor) <= rel:
                continue
            kind = _REGRESSION if delta > 0 else _IMPROVEMENT
            report.deltas.append(
                Delta(index, label, metric, value_a, value_b, kind)
            )
    return report
