"""Campaign-scale trace analytics: ingest, merge, diff, check.

One Perfetto trace is inspectable by hand; a campaign emits hundreds.
This package turns them into a dataset, following the simulate →
merge-summary → cross-run-analysis shape of etanalyzer:

* :mod:`repro.obs.analytics.summary` — batch-ingests the tracers a
  campaign point produced into a compact per-point summary (critical-path
  breakdown, per-phase times, comm matrix, link utilization, barrier-wait
  and steal statistics, engine self-measurement) and merges all points
  into one content-addressed ``campaign-summary.json`` keyed by the
  campaign fingerprint.
* :mod:`repro.obs.analytics.diff` — compares two campaign summaries and
  localizes *which point/phase/link/barrier* regressed, with thresholded
  verdicts (the regression-detection engine the perf roadmap needs).
* :mod:`repro.obs.analytics.check` — flags scaling-curve anomalies
  (non-monotone speedup, efficiency cliffs) in a single summary.
* :mod:`repro.obs.analytics.trend` — N-way trajectories across committed
  ``BENCH_<rev>.json`` baselines and campaign summaries, with first-bad
  revision bisect hints when a metric crosses its threshold.

Everything here is a pure function of the summary artifacts: summarizing
the same campaign twice — or the same campaign executed at ``--jobs 2``
— produces byte-identical JSON, so summaries can be diffed, cached and
committed like any other content-addressed artifact.  Wall-clock numbers
deliberately live *outside* this schema (see ``benchmarks/
emit_baseline.py``): they are host-dependent and would break the
determinism contract.

Run as a CLI::

    python -m repro.obs.analytics summarize .summaries
    python -m repro.obs.analytics diff old/ new/
    python -m repro.obs.analytics check new/campaign-summary.json
    python -m repro.obs.analytics trend benchmarks/baselines --check
"""

from repro.obs.analytics.check import CheckReport, check_summary
from repro.obs.analytics.diff import DiffReport, diff_summaries
from repro.obs.analytics.summary import (
    SCHEMA_VERSION,
    canonical_dumps,
    find_campaign_dirs,
    load_summary,
    merge_campaign,
    point_summary,
    summarize_campaign_dir,
    summarize_tracers,
    write_campaign,
)
from repro.obs.analytics.trend import TrendReport, trend_report

__all__ = [
    "SCHEMA_VERSION",
    "CheckReport",
    "DiffReport",
    "TrendReport",
    "canonical_dumps",
    "check_summary",
    "diff_summaries",
    "find_campaign_dirs",
    "load_summary",
    "merge_campaign",
    "point_summary",
    "summarize_campaign_dir",
    "summarize_tracers",
    "trend_report",
    "write_campaign",
]
