"""Scaling-curve sanity checks over one campaign summary.

A campaign that sweeps thread counts implies a scaling curve per
configuration: simulated time should fall (speedup should rise) as
threads are added, and parallel efficiency should decay smoothly, not
cliff.  :func:`check_summary` groups a summary's points into scaling
series — same app and spec, varying only the parallelism knobs
(``threads``, ``threads_per_node``, ``nodes``) — and flags two anomaly
shapes:

* **non-monotone speedup**: speedup *drops* by more than ``rel_tol``
  when parallelism increases — adding resources made the run slower;
* **efficiency cliff**: parallel efficiency falls to less than ``cliff``
  of its previous value in one sweep step — a contention or
  serialization wall rather than gradual Amdahl decay.

Series with fewer than ``min_points`` points are reported as skipped,
never silently ignored.  Output ordering is deterministic (series sort
by key, anomalies by position in the sweep).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.obs.analytics.summary import SCHEMA_VERSION

__all__ = ["Anomaly", "CheckReport", "check_summary"]

#: Spec fields that *define* a scaling series rather than distinguish it.
_PARALLELISM_KEYS = ("threads", "threads_per_node", "nodes")


class Anomaly:
    """One flagged point on one scaling series."""

    __slots__ = ("series", "kind", "threads_before", "threads_after",
                 "detail")

    def __init__(self, series: str, kind: str, threads_before: int,
                 threads_after: int, detail: str):
        self.series = series
        self.kind = kind            # "non-monotone-speedup" | "efficiency-cliff"
        self.threads_before = threads_before
        self.threads_after = threads_after
        self.detail = detail

    def row(self) -> Dict[str, Any]:
        return {
            "series": self.series, "kind": self.kind,
            "threads_before": self.threads_before,
            "threads_after": self.threads_after, "detail": self.detail,
        }

    def render(self) -> str:
        return (f"{self.series}: {self.kind} at {self.threads_before} -> "
                f"{self.threads_after} threads ({self.detail})")


class CheckReport:
    """All scaling series of one summary, with any anomalies."""

    def __init__(self) -> None:
        self.series: List[Dict[str, Any]] = []
        self.anomalies: List[Anomaly] = []
        self.skipped: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.anomalies

    def to_json(self) -> Dict[str, Any]:
        return {
            "series": self.series,
            "anomalies": [a.row() for a in self.anomalies],
            "skipped": list(self.skipped),
            "ok": self.ok,
        }

    def render(self) -> str:
        lines: List[str] = []
        for series in self.series:
            lines.append(f"series {series['key']}:")
            for row in series["points"]:
                lines.append(
                    f"  threads={row['threads']:<5d} time={row['elapsed_s']:.6g}s"
                    f"  speedup={row['speedup']:.3f}  eff={row['efficiency']:.3f}"
                )
        for name in self.skipped:
            lines.append(f"skipped {name}: fewer points than --min-points")
        if self.ok:
            lines.append(
                f"verdict: OK — {len(self.series)} scaling series, "
                "no anomalies"
            )
        else:
            for anomaly in self.anomalies:
                lines.append(f"  ! {anomaly.render()}")
            lines.append(
                f"verdict: ANOMALOUS — {len(self.anomalies)} anomaly(ies) "
                f"across {len(self.series)} scaling series"
            )
        return "\n".join(lines)


def _series_key(point: Dict[str, Any]) -> Tuple[str, str, int]:
    """(display key, grouping key, thread count) for a point's series."""
    spec = dict(point.get("spec", {}))
    threads = spec.get("threads", point.get("index", 0))
    fixed = {k: v for k, v in spec.items() if k not in _PARALLELISM_KEYS}
    app = str(point.get("app", "?"))
    display_bits = [app]
    for k in ("scale", "preset", "policy", "conduit", "faults"):
        if fixed.get(k) is not None:
            display_bits.append(f"{k}={fixed[k]}")
    for k, v in sorted((fixed.get("extras") or {}).items()):
        display_bits.append(f"{k}={v}")
    display = " ".join(display_bits)
    group = json.dumps({"app": app, "fixed": fixed}, sort_keys=True)
    return display, group, threads


def check_summary(summary: Dict[str, Any], *, rel_tol: float = 0.05,
                  cliff: float = 0.4, min_points: int = 3) -> CheckReport:
    """Scan one campaign summary for scaling anomalies (module docstring)."""
    report = CheckReport()
    if summary.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"summary schema {summary.get('schema')!r} does not match this "
            f"build's {SCHEMA_VERSION}"
        )
    groups: Dict[str, Dict[str, Any]] = {}
    for point in summary.get("points", []):
        display, group, threads = _series_key(point)
        bucket = groups.setdefault(group, {"display": display, "points": {}})
        # same thread count twice in one series: keep the first (repeat runs)
        bucket["points"].setdefault(int(threads), float(point["elapsed_s"]))

    for group in sorted(groups, key=lambda g: groups[g]["display"]):
        bucket = groups[group]
        curve = sorted(bucket["points"].items())
        if len(curve) < min_points:
            report.skipped.append(bucket["display"])
            continue
        base_threads, base_time = curve[0]
        rows: List[Dict[str, Any]] = []
        for threads, elapsed in curve:
            speedup = base_time / elapsed if elapsed > 0 else 0.0
            scale = threads / base_threads if base_threads else 1.0
            efficiency = speedup / scale if scale > 0 else 0.0
            rows.append({"threads": threads, "elapsed_s": elapsed,
                         "speedup": speedup, "efficiency": efficiency})
        report.series.append({"key": bucket["display"], "points": rows})
        for prev, cur in zip(rows, rows[1:]):
            if cur["speedup"] < prev["speedup"] * (1.0 - rel_tol):
                report.anomalies.append(Anomaly(
                    bucket["display"], "non-monotone-speedup",
                    prev["threads"], cur["threads"],
                    f"speedup {prev['speedup']:.3f} -> {cur['speedup']:.3f}",
                ))
            elif cur["efficiency"] < cliff * prev["efficiency"]:
                report.anomalies.append(Anomaly(
                    bucket["display"], "efficiency-cliff",
                    prev["threads"], cur["threads"],
                    f"efficiency {prev['efficiency']:.3f} -> "
                    f"{cur['efficiency']:.3f}",
                ))
    return report
