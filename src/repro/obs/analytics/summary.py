"""Per-point trace summaries and the merged campaign summary artifact.

A campaign directory (written by the harness under ``--summary-dir``, or
assembled by hand) is laid out content-addressed by the campaign
fingerprint::

    <summary-root>/<campaign-fp[:16]>/
        campaign.json              # header: fingerprint, experiment, ...
        points/0000-<point-fp12>.json
        points/0001-<point-fp12>.json
        campaign-summary.json      # the merge of the above

Every artifact is canonical JSON (sorted keys, compact separators, one
trailing newline), and every number in it is a pure function of the
simulation — simulated seconds, event counts, matrix cells — never wall
clocks.  That is what makes ``campaign-summary.json`` byte-identical
across re-runs, executors and job counts, and therefore diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.obs import names
from repro.obs.critical_path import (
    AttributionReport,
    comm_matrix_rows,
    link_utilization_rows,
)

__all__ = [
    "SCHEMA_VERSION",
    "canonical_dumps",
    "campaign_dir",
    "find_campaign_dirs",
    "load_summary",
    "merge_campaign",
    "point_summary",
    "summarize_campaign_dir",
    "summarize_tracers",
    "write_campaign",
]

#: Bump when the summary JSON shape changes; diff/check refuse to compare
#: artifacts across schema versions rather than misread them.
SCHEMA_VERSION = 1

_CAMPAIGN_FILE = "campaign.json"
_SUMMARY_FILE = "campaign-summary.json"
_POINTS_DIR = "points"


def canonical_dumps(obj: Any) -> str:
    """The one serialization every artifact uses: byte-stable JSON."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def _write_canonical(path: Path, obj: Any) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_dumps(obj))


# -- ingest: tracers -> one point summary ---------------------------------

def _span_stats(tracers, category: str) -> Tuple[int, float, float,
                                                 Dict[str, List[float]]]:
    """(count, total seconds, max seconds, by-name {count, seconds})."""
    count = 0
    total = 0.0
    longest = 0.0
    by_name: Dict[str, List[float]] = {}
    for tracer in tracers:
        for span in tracer.spans:
            if span.category != category:
                continue
            dur = span.duration
            count += 1
            total += dur
            if dur > longest:
                longest = dur
            cell = by_name.setdefault(span.name, [0, 0.0])
            cell[0] += 1
            cell[1] += dur
    return count, total, longest, by_name


def summarize_tracers(tracers) -> Dict[str, Any]:
    """Fold one campaign point's tracers into its summary content.

    A point may run several simulated programs (warmups, reference runs);
    all of its tracers are merged here, mirroring how the breakdown
    report aggregates them.
    """
    tracers = list(tracers)
    attribution = AttributionReport.from_tracers(tracers)
    _, _, _, phases = _span_stats(tracers, names.CAT_PHASE)
    bar_count, bar_total, bar_max, bar_names = _span_stats(
        tracers, names.CAT_BARRIER)
    steal_count, steal_total, _, _ = _span_stats(tracers, names.CAT_STEAL)

    engine: Dict[str, int] = {n: 0 for n in names.ENGINE_METRICS}
    spans = instants = samples = 0
    for tracer in tracers:
        spans += len(tracer.spans)
        instants += len(tracer.instants)
        samples += len(tracer.samples)
        for metric, value in getattr(tracer, "engine_metrics", {}).items():
            if metric == names.ENGINE_HEAP_PEAK:
                engine[metric] = max(engine[metric], value)
            else:
                engine[metric] = engine.get(metric, 0) + value
    engine["spans"] = spans
    engine["instants"] = instants
    engine["samples"] = samples

    return {
        "runs": len(tracers),
        "elapsed_s": sum(t.end_time for t in tracers),
        "breakdown": attribution.to_json(),
        "phases": {name: {"count": cell[0], "seconds": cell[1]}
                   for name, cell in sorted(phases.items())},
        "comm": comm_matrix_rows(tracers),
        "links": link_utilization_rows(tracers),
        "barriers": {
            "waits": bar_count,
            "wait_seconds": bar_total,
            "max_wait_seconds": bar_max,
            "by_name": {name: {"count": cell[0], "seconds": cell[1]}
                        for name, cell in sorted(bar_names.items())},
        },
        "steals": {"count": steal_count, "seconds": steal_total},
        "engine": engine,
    }


def point_summary(index: int, meta: Dict[str, Any],
                  tracers) -> Dict[str, Any]:
    """One point's artifact: identity (``meta``) plus summarized content.

    ``meta`` carries at least ``app``, ``fingerprint`` and the canonical
    ``spec`` dict; the harness builds it from the point's RunSpec.
    """
    out = {"schema": SCHEMA_VERSION, "index": index}
    out.update(meta)
    out.update(summarize_tracers(tracers))
    return out


# -- merge: point summaries -> campaign summary ---------------------------

def merge_campaign(header: Dict[str, Any],
                   points: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-point summaries into the campaign summary document."""
    totals: Dict[str, Any] = {
        "elapsed_s": 0.0,
        "breakdown": {c: 0.0 for c in names.BREAKDOWN_CATEGORIES},
        "messages": 0,
        "bytes": 0.0,
        "barrier_waits": 0,
        "barrier_wait_seconds": 0.0,
        "steals": 0,
        "steal_seconds": 0.0,
        "engine": {n: 0 for n in names.ENGINE_METRICS},
        "runs": 0,
    }
    for p in points:
        totals["elapsed_s"] += p["elapsed_s"]
        totals["runs"] += p["runs"]
        for cat, sec in p["breakdown"]["categories"].items():
            totals["breakdown"][cat] = totals["breakdown"].get(cat, 0.0) + sec
        for row in p["comm"]:
            totals["messages"] += row["messages"]
            totals["bytes"] += row["bytes"]
        totals["barrier_waits"] += p["barriers"]["waits"]
        totals["barrier_wait_seconds"] += p["barriers"]["wait_seconds"]
        totals["steals"] += p["steals"]["count"]
        totals["steal_seconds"] += p["steals"]["seconds"]
        for metric in names.ENGINE_METRICS:
            value = p["engine"].get(metric, 0)
            if metric == names.ENGINE_HEAP_PEAK:
                totals["engine"][metric] = max(totals["engine"][metric], value)
            else:
                totals["engine"][metric] += value
    return {
        "schema": SCHEMA_VERSION,
        "campaign": dict(header),
        "totals": totals,
        "points": points,
    }


# -- filesystem layout ----------------------------------------------------

def campaign_dir(root, fingerprint: str) -> Path:
    """The content-addressed directory for one campaign fingerprint."""
    return Path(root) / fingerprint[:16]


def _point_path(directory: Path, index: int, fingerprint: str) -> Path:
    return directory / _POINTS_DIR / f"{index:04d}-{fingerprint[:12]}.json"


def write_campaign(root, header: Dict[str, Any],
                   point_summaries: List[Dict[str, Any]]) -> Path:
    """Write a campaign's artifacts; returns the campaign directory.

    Writes ``campaign.json``, every ``points/NNNN-<fp>.json``, then
    derives ``campaign-summary.json`` through the same
    :func:`summarize_campaign_dir` path the offline CLI uses — one code
    path, so the harness hook and a later re-summarize cannot diverge.
    """
    directory = campaign_dir(root, header["fingerprint"])
    _write_canonical(directory / _CAMPAIGN_FILE, dict(header))
    for point in point_summaries:
        _write_canonical(
            _point_path(directory, point["index"], point["fingerprint"]),
            point,
        )
    summarize_campaign_dir(directory)
    return directory


def summarize_campaign_dir(directory) -> Tuple[Dict[str, Any], Path]:
    """(Re)build ``campaign-summary.json`` from a campaign directory."""
    directory = Path(directory)
    header_path = directory / _CAMPAIGN_FILE
    if not header_path.exists():
        raise FileNotFoundError(
            f"{directory} is not a campaign directory (no {_CAMPAIGN_FILE})"
        )
    header = json.loads(header_path.read_text())
    points_dir = directory / _POINTS_DIR
    points: List[Dict[str, Any]] = []
    if points_dir.is_dir():
        for path in sorted(points_dir.glob("*.json")):
            points.append(json.loads(path.read_text()))
    points.sort(key=lambda p: p.get("index", 0))
    for point in points:
        schema = point.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"{directory}: point {point.get('index')} has schema "
                f"{schema!r}, this build reads {SCHEMA_VERSION}"
            )
    summary = merge_campaign(header, points)
    out = directory / _SUMMARY_FILE
    _write_canonical(out, summary)
    return summary, out


def find_campaign_dirs(root) -> List[Path]:
    """Campaign directories under ``root`` (or ``root`` itself), sorted."""
    root = Path(root)
    if (root / _CAMPAIGN_FILE).exists():
        return [root]
    return sorted(
        child for child in root.iterdir()
        if child.is_dir() and (child / _CAMPAIGN_FILE).exists()
    ) if root.is_dir() else []


def load_summary(path) -> Dict[str, Any]:
    """Load a campaign summary from its file or its campaign directory."""
    path = Path(path)
    if path.is_dir():
        path = path / _SUMMARY_FILE
    try:
        summary = json.loads(path.read_text())
    except OSError as exc:
        raise FileNotFoundError(
            f"no campaign summary at {path} (run `python -m "
            "repro.obs.analytics summarize` first?)"
        ) from exc
    schema = summary.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: summary schema {schema!r} does not match this "
            f"build's {SCHEMA_VERSION}"
        )
    return summary
