"""Chrome trace-event / Perfetto JSON export.

Produces the `trace-event format`__ consumed by ``ui.perfetto.dev`` and
``chrome://tracing``: one *process* per simulated run (a harness
experiment may run many programs), one *thread track* per declared
tracer track — simulated UPC threads, NIC pipes, machine nodes.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Overlap handling: complete ("X") events on one tid must nest, but link
transfers (processor sharing) and non-blocking puts legitimately
overlap.  The exporter assigns overlapping spans to extra **lanes** —
additional tids named ``"<track> ~2"``, ``"~3"`` … — with a greedy,
deterministic first-fit, so every span renders and same-seed exports
stay byte-identical.

Times are simulated seconds; the trace-event ``ts``/``dur`` fields are
microseconds, so one simulated microsecond reads as one trace
microsecond in the UI.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.obs.tracer import Tracer

__all__ = ["chrome_trace_events", "dump_chrome_trace", "write_chrome_trace"]

_US = 1e6  # simulated seconds -> trace-event microseconds


def _assign_lanes(spans) -> List[int]:
    """Greedy deterministic lane assignment for one track's spans.

    Returns a lane index per span (aligned with ``spans`` order).  A span
    fits an existing lane if the lane's open spans either all end before
    it starts or enclose it entirely (proper "X" nesting); otherwise it
    opens the next lane.
    """
    order = sorted(range(len(spans)),
                   key=lambda i: (spans[i].t0, -spans[i].t1, spans[i].seq))
    lanes: List[List[float]] = []  # per lane: stack of open end-times
    out = [0] * len(spans)
    for i in order:
        s = spans[i]
        for lane, stack in enumerate(lanes):
            while stack and stack[-1] <= s.t0:
                stack.pop()
            if not stack or stack[-1] >= s.t1:
                stack.append(s.t1)
                out[i] = lane
                break
        else:
            lanes.append([s.t1])
            out[i] = len(lanes) - 1
    return out


def chrome_trace_events(tracers: Iterable[Tracer]) -> List[dict]:
    """Flatten tracers into a list of trace-event dicts.

    Each tracer becomes one process (``pid`` = its run index); events
    appear in deterministic (track-declaration, emission) order.
    """
    events: List[dict] = []
    for tracer in tracers:
        pid = tracer.run_index
        events.append({"ph": "M", "pid": pid, "name": "process_name",
                       "args": {"name": tracer.label}})
        events.append({"ph": "M", "pid": pid, "name": "process_sort_index",
                       "args": {"sort_index": pid}})

        # spans per track, then lanes -> tid layout
        by_track: Dict[Tuple, list] = {}
        for span in tracer.spans:
            by_track.setdefault(span.track, []).append(span)
        lane_of = {track: _assign_lanes(spans)
                   for track, spans in by_track.items()}
        lane_count = {track: max(lanes, default=0) + 1 if lanes else 1
                      for track, lanes in lane_of.items()}

        tid_of: Dict[Tuple[Tuple, int], int] = {}
        next_tid = 1
        for sort_index, (track, name) in enumerate(tracer.tracks.items()):
            for lane in range(lane_count.get(track, 1)):
                tid = next_tid
                next_tid += 1
                tid_of[(track, lane)] = tid
                lane_name = name if lane == 0 else f"{name} ~{lane + 1}"
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": lane_name}})
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_sort_index",
                               "args": {"sort_index": sort_index * 64 + lane}})

        for track, spans in by_track.items():
            lanes = lane_of[track]
            for span, lane in zip(spans, lanes):
                ev = {"ph": "X", "pid": pid, "tid": tid_of[(track, lane)],
                      "name": span.name, "cat": span.category,
                      "ts": span.t0 * _US,
                      "dur": (span.t1 - span.t0) * _US}
                if span.args:
                    ev["args"] = span.args
                events.append(ev)

        for inst in tracer.instants:
            ev = {"ph": "i", "s": "t", "pid": pid,
                  "tid": tid_of.get((inst.track, 0), 0),
                  "name": inst.name, "cat": inst.category,
                  "ts": inst.t * _US}
            if inst.args:
                ev["args"] = inst.args
            events.append(ev)

        for sample in tracer.samples:
            track_name = tracer.tracks[sample.track]
            events.append({"ph": "C", "pid": pid,
                           "name": f"{track_name} {sample.name}",
                           "ts": sample.t * _US,
                           "args": {"value": sample.value}})
    return events


def dump_chrome_trace(tracers: Iterable[Tracer]) -> str:
    """Serialize tracers as a trace-event JSON document (deterministic)."""
    doc = {"traceEvents": chrome_trace_events(tracers),
           "displayTimeUnit": "ms"}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: str, tracers: Iterable[Tracer]) -> None:
    with open(path, "w") as fh:
        fh.write(dump_chrome_trace(tracers))
        fh.write("\n")
