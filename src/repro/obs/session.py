"""Trace sessions: turning tracing on for a region of host code.

Tracing is off by default; a :func:`trace_session` context manager arms
it.  While a session is active, every :class:`~repro.upc.runtime.UpcProgram`
(or :class:`~repro.mpi.comm.MpiProgram`) constructed asks the session for
a fresh :class:`~repro.obs.tracer.Tracer` via :func:`tracer_for` and
attaches it to its simulator; outside a session :func:`tracer_for`
returns the shared no-op :data:`~repro.obs.tracer.NULL_TRACER`.

One session can therefore span many simulated runs (a harness experiment
like ``f4_2`` constructs ~30 programs); each run becomes its own process
group in the exported trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["TraceSession", "trace_session", "tracer_for", "active_session"]

#: The module-global active session (None when tracing is off).
_ACTIVE: Optional["TraceSession"] = None


class TraceSession:
    """Collects the tracers of every simulated run started while active."""

    def __init__(self, label: str = "session"):
        self.label = label
        self.tracers: List[Tracer] = []

    def new_tracer(self, sim, label: str) -> Tracer:
        tracer = Tracer(sim, label=label, run_index=len(self.tracers) + 1)
        self.tracers.append(tracer)
        return tracer


def active_session() -> Optional[TraceSession]:
    return _ACTIVE


def tracer_for(sim, label: str = "run"):
    """A fresh Tracer when a session is active, else the no-op tracer."""
    if _ACTIVE is None:
        return NULL_TRACER
    return _ACTIVE.new_tracer(sim, label)


@contextmanager
def trace_session(label: str = "session"):
    """Arm tracing for the ``with`` body; yields the :class:`TraceSession`.

    Sessions do not nest: re-entering while one is active raises, because
    two sessions silently splitting a run's tracers would be a debugging
    trap.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a trace session is already active")
    session = TraceSession(label)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None
