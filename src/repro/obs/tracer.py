"""Simulated-time tracing: spans, instants, counter samples.

A :class:`Tracer` records what one simulated run *did* on a set of named
**tracks** — one per simulated UPC thread, one per NIC pipe, one per
machine node — in simulated time.  Layers emit through narrow hook
methods (``begin``/``end``/``instant``/``counter``/``comm``) that are all
no-ops on the :data:`NULL_TRACER`, so an untraced run pays one attribute
load and a predicted branch per hook site.

Determinism contract: a tracer's contents are a pure function of the
simulation (seed, plan, configuration).  Nothing here reads wall clocks,
object ids or hash order; spans and events are stored in emission order,
which the deterministic event loop fixes.  Two traced runs with the same
seed therefore export byte-identical JSON — the same discipline as
:meth:`repro.sim.trace.StatsCollector.snapshot`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs import names

__all__ = [
    "Span",
    "Instant",
    "Sample",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "thread_track",
    "link_track",
    "node_track",
    "META_TRACK",
]

TrackKey = Tuple[str, Any]

#: Track for engine-level events (spawns, kills, quiescence).
META_TRACK: TrackKey = ("meta", "sim")


def thread_track(thread_id: int) -> TrackKey:
    """Track key for one simulated UPC thread / MPI rank."""
    return ("thread", thread_id)


def link_track(name: str) -> TrackKey:
    """Track key for one NIC pipe (``nic.tx0``, ``nic.rx1``, ``nic.loop0``)."""
    return ("link", name)


def node_track(node_index: int) -> TrackKey:
    """Track key for one machine node (crash / degradation windows)."""
    return ("node", node_index)


class Span:
    """One begin/end interval on a track, in simulated seconds."""

    __slots__ = ("track", "name", "category", "t0", "t1", "args", "seq")

    def __init__(self, track: TrackKey, name: str, category: str,
                 t0: float, seq: int, args: Optional[dict] = None):
        self.track = track
        self.name = name
        self.category = category
        self.t0 = t0
        self.t1: Optional[float] = None
        self.args = args
        self.seq = seq

    @property
    def duration(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.track}, {self.name!r}, {self.category}, "
                f"[{self.t0:g}, {self.t1 if self.t1 is None else round(self.t1, 12)}])")


class Instant:
    """A point event on a track."""

    __slots__ = ("track", "name", "category", "t", "args", "seq")

    def __init__(self, track: TrackKey, name: str, category: str,
                 t: float, seq: int, args: Optional[dict] = None):
        self.track = track
        self.name = name
        self.category = category
        self.t = t
        self.args = args
        self.seq = seq


class Sample:
    """One counter sample (``value`` of ``name`` on ``track`` at ``t``)."""

    __slots__ = ("track", "name", "t", "value", "seq")

    def __init__(self, track: TrackKey, name: str, t: float, value: float, seq: int):
        self.track = track
        self.name = name
        self.t = t
        self.value = value
        self.seq = seq


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    Hook sites guard with ``if tracer.enabled:`` so the untraced hot path
    costs one attribute load; the methods still exist so un-guarded call
    sites stay correct.
    """

    enabled = False

    def declare_track(self, track: TrackKey, name: Optional[str] = None) -> None:
        pass

    def begin(self, track: TrackKey, name: str, category: str = names.CAT_OTHER,
              args: Optional[dict] = None) -> int:
        return -1

    def end(self, span_id: int, args: Optional[dict] = None) -> None:
        pass

    def instant(self, track: TrackKey, name: str, category: str = names.CAT_OTHER,
                args: Optional[dict] = None) -> None:
        pass

    def counter(self, track: TrackKey, name: str, value: float) -> None:
        pass

    def comm(self, src_node: int, dst_node: int, nbytes: float) -> None:
        pass

    # engine hook points (see Simulator / Process)
    def process_spawned(self, process) -> None:
        pass

    def process_blocked(self, process, awaited) -> None:
        pass

    def process_resumed(self, process) -> None:
        pass

    def process_killed(self, process) -> None:
        pass

    def process_failed(self, process, exc) -> None:
        pass

    def quiescence(self, processes) -> None:
        pass

    def finalize(self, t_end: float) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records spans, instants and counter samples in simulated time."""

    enabled = True

    def __init__(self, sim, label: str = "run", run_index: int = 1):
        self.sim = sim
        self.label = label
        self.run_index = run_index
        #: track key -> display name, in declaration order.
        self.tracks: Dict[TrackKey, str] = {}
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.samples: List[Sample] = []
        #: (src_node, dst_node) -> [messages, bytes]
        self._comm: Dict[Tuple[int, int], List[float]] = {}
        #: engine hook tallies (cheap; not exported as events)
        self.hook_counts: Dict[str, int] = {
            "spawned": 0, "blocked": 0, "resumed": 0, "killed": 0,
        }
        #: engine self-measurement (events popped, heap peak, context
        #: switches, costed cycles), copied off the simulator at
        #: :meth:`finalize` so it survives detaching ``sim`` for pickling.
        self.engine_metrics: Dict[str, int] = {}
        self.t_end: Optional[float] = None
        self._seq = 0

    # -- infrastructure ---------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _ensure_track(self, track: TrackKey) -> None:
        if track not in self.tracks:
            kind, ident = track
            self.tracks[track] = (
                f"{kind} {ident}" if kind in ("thread", "node") else str(ident)
            )

    def declare_track(self, track: TrackKey, name: Optional[str] = None) -> None:
        """Pre-register a track so it exports even when it stays empty."""
        if name is not None:
            self.tracks[track] = name
        else:
            self._ensure_track(track)

    # -- emission ---------------------------------------------------------

    def begin(self, track: TrackKey, name: str, category: str = names.CAT_OTHER,
              args: Optional[dict] = None) -> int:
        """Open a span; returns its id for :meth:`end`."""
        self._ensure_track(track)
        span = Span(track, name, category, self.sim.now, self._next_seq(), args)
        self.spans.append(span)
        return len(self.spans) - 1

    def end(self, span_id: int, args: Optional[dict] = None) -> None:
        """Close the span opened as ``span_id`` at the current time."""
        span = self.spans[span_id]
        if span.t1 is not None:
            if self.t_end is not None:
                # Already closed by finalize(); the owning generator is
                # being torn down after the run (e.g. GC after a raised
                # failure) and its finally-clause end() is redundant.
                return
            raise ValueError(f"span {span.name!r} already ended")
        span.t1 = self.sim.now
        if args:
            span.args = {**(span.args or {}), **args}

    def instant(self, track: TrackKey, name: str, category: str = names.CAT_OTHER,
                args: Optional[dict] = None) -> None:
        self._ensure_track(track)
        self.instants.append(
            Instant(track, name, category, self.sim.now, self._next_seq(), args)
        )

    def counter(self, track: TrackKey, name: str, value: float) -> None:
        self._ensure_track(track)
        self.samples.append(
            Sample(track, name, self.sim.now, value, self._next_seq())
        )

    def comm(self, src_node: int, dst_node: int, nbytes: float) -> None:
        """Account one message for the src→dst communication matrix."""
        cell = self._comm.get((src_node, dst_node))
        if cell is None:
            cell = self._comm[(src_node, dst_node)] = [0, 0.0]
        cell[0] += 1
        cell[1] += nbytes

    # -- engine hook points ----------------------------------------------

    def process_spawned(self, process) -> None:
        self.hook_counts["spawned"] += 1

    def process_blocked(self, process, awaited) -> None:
        self.hook_counts["blocked"] += 1

    def process_resumed(self, process) -> None:
        self.hook_counts["resumed"] += 1

    def process_killed(self, process) -> None:
        self.hook_counts["killed"] += 1
        self.instant(META_TRACK, f"kill {process.name}", names.CAT_FAULT)

    def process_failed(self, process, exc) -> None:
        self.instant(
            META_TRACK, f"fail {process.name}", names.CAT_FAULT,
            args={"error": type(exc).__name__},
        )

    def quiescence(self, processes) -> None:
        self.instant(
            META_TRACK, "quiescence", names.CAT_FAULT,
            args={"stalled": len(processes),
                  "names": [p.name for p in processes[:8]]},
        )

    # -- finishing --------------------------------------------------------

    def finalize(self, t_end: float) -> None:
        """Close open spans at ``t_end`` and fix the run's end time.

        Also harvests the simulator's engine self-measurement (tallied
        only while this tracer was armed) into :attr:`engine_metrics`
        and publishes each metric as a counter sample on the meta track,
        so exported traces and offline analytics both see them.
        """
        first = self.t_end is None
        if self.t_end is None or t_end > self.t_end:
            self.t_end = t_end
        for span in self.spans:
            if span.t1 is None:
                span.t1 = t_end
        if first and self.sim is not None:
            metrics = getattr(self.sim, "engine_metrics", None)
            if metrics:
                self.engine_metrics = {n: metrics[n]
                                       for n in names.ENGINE_METRICS}
                for name in names.ENGINE_METRICS:
                    self.counter(META_TRACK, name, self.engine_metrics[name])

    @property
    def end_time(self) -> float:
        """The run's end: finalize time, else the latest event seen."""
        if self.t_end is not None:
            return self.t_end
        ends = [s.t1 for s in self.spans if s.t1 is not None]
        ends += [i.t for i in self.instants] + [s.t for s in self.samples]
        return max(ends, default=0.0)

    # -- derived views ----------------------------------------------------

    def comm_matrix(self) -> List[dict]:
        """``src→dst`` rows (messages, bytes), sorted by node pair."""
        return [
            {"src_node": s, "dst_node": d,
             "messages": int(self._comm[(s, d)][0]),
             "bytes": self._comm[(s, d)][1]}
            for (s, d) in sorted(self._comm)
        ]

    def spans_on(self, track: TrackKey) -> List[Span]:
        return [s for s in self.spans if s.track == track]

    def thread_tracks(self) -> List[TrackKey]:
        return [t for t in self.tracks if t[0] == "thread"]

    def link_tracks(self) -> List[TrackKey]:
        return [t for t in self.tracks if t[0] == "link"]
