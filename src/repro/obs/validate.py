"""Trace-event JSON validation (stdlib-only; used by tests and CI).

Checks the subset of the Chrome trace-event format this repo emits:
a ``{"traceEvents": [...]}`` document whose events are well-formed
``X`` / ``i`` / ``C`` / ``M`` records with numeric timestamps.  Run as::

    PYTHONPATH=src python -m repro.obs.validate out.json
"""

from __future__ import annotations

import json
import sys
from typing import List

__all__ = ["validate_events", "validate_document", "validate_file"]

_REQUIRED = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid"),
    "C": ("name", "ts", "pid", "args"),
    "M": ("name", "pid", "args"),
}


def validate_events(events) -> List[str]:
    """Return a list of problems (empty when the events are valid)."""
    problems: List[str] = []
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _REQUIRED:
            problems.append(f"event {i}: unknown ph {ph!r}")
            continue
        for field in _REQUIRED[ph]:
            if field not in ev:
                problems.append(f"event {i} (ph={ph}): missing {field!r}")
        for field in ("ts", "dur"):
            if field in ev and not isinstance(ev[field], (int, float)):
                problems.append(f"event {i}: {field} is not numeric")
        if ph == "X" and isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
            problems.append(f"event {i}: negative dur")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"event {i}: args is not an object")
        if len(problems) > 50:
            problems.append("... (truncated)")
            break
    return problems


def validate_document(doc) -> List[str]:
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a traceEvents key"]
    return validate_events(doc["traceEvents"])


def validate_file(path: str) -> List[str]:
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_document(doc)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE.json", file=sys.stderr)
        return 2
    problems = validate_file(argv[0])
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1
    with open(argv[0]) as fh:
        n = len(json.load(fh)["traceEvents"])
    print(f"{argv[0]}: valid trace ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
