"""Central metric-name and span-category registry.

Every counter, accumulator and series name used by the simulated stack is
declared here once, with a one-line meaning.  Layers import the constants
instead of spelling string literals, so a typo is an ``ImportError`` at
import time rather than a silently-empty counter at analysis time, and
tools (the breakdown report, dashboards, tests) can enumerate what a run
may emit.

Span *categories* drive the critical-path attribution in
:mod:`repro.obs.critical_path`: only ``ATTRIBUTED_CATEGORIES`` take part
in the compute/network/barrier/steal breakdown; everything else (phase
markers, lock holds) is visible in the trace but transparent to
attribution.
"""

from __future__ import annotations

__all__ = [
    # categories
    "CAT_COMPUTE", "CAT_NETWORK", "CAT_BARRIER", "CAT_STEAL",
    "CAT_PHASE", "CAT_LOCK", "CAT_FAULT", "CAT_OTHER",
    "ATTRIBUTED_CATEGORIES", "CATEGORY_PRIORITY",
    # network fabric
    "NET_MESSAGES", "NET_BYTES", "NET_LOOPBACK_MESSAGES", "NET_MESSAGES_LOST",
    # gasnet
    "GASNET_PUT", "GASNET_GET", "GASNET_BYTES", "GASNET_BYPASS",
    "GASNET_AM_ROUNDTRIPS", "GASNET_RETRANSMITS", "GASNET_TIMEOUTS",
    "GASNET_CORRUPT_DETECTED", "GASNET_ENDPOINT_FAILURES",
    "GASNET_WAITSYNC", "GASNET_WAITSYNC_TIME",
    "gasnet_op",
    # faults
    "FAULTS_CRASHES", "FAULTS_CRASH_TIMES", "FAULTS_DEGRADE_WINDOWS",
    "FAULTS_MESSAGES_BLACKHOLED", "FAULTS_MESSAGES_LOST",
    "FAULTS_MESSAGES_CORRUPTED", "FAULTS_THREADS_KILLED",
    "FAULTS_LOCKS_RECOVERED", "FAULTS_BARRIER_SEATS_DROPPED",
    # uts
    "UTS_STEAL_LOCAL", "UTS_STEAL_REMOTE", "UTS_NODES_STOLEN",
    "UTS_VICTIMS_BLACKLISTED", "UTS_NODES_LOST_IN_TRANSIT",
    "UTS_NODES_LOST_ON_STACK",
    "uts_steal",
    # other apps / mpi
    "GUPS_BUCKET_FLUSHES", "GUPS_REMOTE_UPDATES", "MPI_SENDS", "MPI_RECVS",
    # simulation engine (repro.sim.engine, emitted under the tracer)
    "ENGINE_EVENTS_POPPED", "ENGINE_HEAP_PEAK", "ENGINE_CONTEXT_SWITCHES",
    "ENGINE_COSTED_CYCLES", "ENGINE_METRICS",
    # sanitizer (repro.analyze)
    "SAN_RACE_FINDINGS", "SAN_PRIVATIZATION_FINDINGS", "SAN_COLLECTIVE_FINDINGS",
    # static analyzer (repro.analyze.static)
    "STATIC_FILES", "STATIC_FUNCTIONS", "STATIC_FINDINGS",
    "STATIC_SUPPRESSED", "STATIC_BASELINED", "STATIC_METRICS",
    # profiler (repro.obs.profile)
    "PROF_HOST_CALLS", "PROF_HOST_WALL_US",
    "PROF_COST_EVENTS", "PROF_COST_CYCLES", "PROF_COST_SWITCHES",
    "PROF_HOST_METRICS", "PROF_COST_METRICS",
    # registry
    "REGISTRY", "all_metric_names",
]

# -- span categories ------------------------------------------------------

CAT_COMPUTE = "compute"   #: CPU work (also the attribution catch-all)
CAT_NETWORK = "network"   #: a network op (put/get/AM, link transfer)
CAT_BARRIER = "barrier"   #: blocked in (or paying for) a barrier
CAT_STEAL = "steal"       #: UTS work-stealing machinery
CAT_PHASE = "phase"       #: app phase marker (transparent to attribution)
CAT_LOCK = "lock"         #: lock acquire/hold (transparent to attribution)
CAT_FAULT = "fault"       #: injected-fault marker events
CAT_OTHER = "other"       #: uncategorized

#: Categories that take part in the time-attribution breakdown, in
#: ascending priority: when spans overlap, the highest-priority active
#: category claims the time (a network get inside a steal is steal time).
ATTRIBUTED_CATEGORIES = (CAT_NETWORK, CAT_BARRIER, CAT_STEAL)
CATEGORY_PRIORITY = {c: i + 1 for i, c in enumerate(ATTRIBUTED_CATEGORIES)}

#: The exhaustive breakdown: every simulated instant lands in exactly one.
BREAKDOWN_CATEGORIES = (CAT_COMPUTE, CAT_NETWORK, CAT_BARRIER, CAT_STEAL)

# -- network fabric -------------------------------------------------------

NET_MESSAGES = "net.messages"
NET_BYTES = "net.bytes"
NET_LOOPBACK_MESSAGES = "net.loopback_messages"
NET_MESSAGES_LOST = "net.messages_lost"

# -- gasnet ---------------------------------------------------------------

GASNET_PUT = "gasnet.put"
GASNET_GET = "gasnet.get"
GASNET_BYTES = "gasnet.bytes"
GASNET_BYPASS = "gasnet.bypass"
GASNET_AM_ROUNDTRIPS = "gasnet.am_roundtrips"
GASNET_RETRANSMITS = "gasnet.retransmits"
GASNET_TIMEOUTS = "gasnet.timeouts"
GASNET_CORRUPT_DETECTED = "gasnet.corrupt_detected"
GASNET_ENDPOINT_FAILURES = "gasnet.endpoint_failures"
GASNET_WAITSYNC = "gasnet.waitsync"
GASNET_WAITSYNC_TIME = "gasnet.waitsync_time"

_GASNET_OPS = {"put": GASNET_PUT, "get": GASNET_GET}


def gasnet_op(direction: str) -> str:
    """Counter name for one ``upc_mem*`` direction ("put" | "get")."""
    return _GASNET_OPS[direction]


# -- fault injection ------------------------------------------------------

FAULTS_CRASHES = "faults.crashes"
FAULTS_CRASH_TIMES = "faults.crash_times"
FAULTS_DEGRADE_WINDOWS = "faults.degrade_windows"
FAULTS_MESSAGES_BLACKHOLED = "faults.messages_blackholed"
FAULTS_MESSAGES_LOST = "faults.messages_lost"
FAULTS_MESSAGES_CORRUPTED = "faults.messages_corrupted"
FAULTS_THREADS_KILLED = "faults.threads_killed"
FAULTS_LOCKS_RECOVERED = "faults.locks_recovered"
FAULTS_BARRIER_SEATS_DROPPED = "faults.barrier_seats_dropped"

# -- UTS ------------------------------------------------------------------

UTS_STEAL_LOCAL = "uts.steal_local"
UTS_STEAL_REMOTE = "uts.steal_remote"
UTS_NODES_STOLEN = "uts.nodes_stolen"
UTS_VICTIMS_BLACKLISTED = "uts.victims_blacklisted"
UTS_NODES_LOST_IN_TRANSIT = "uts.nodes_lost_in_transit"
UTS_NODES_LOST_ON_STACK = "uts.nodes_lost_on_stack"

_UTS_STEALS = {"local": UTS_STEAL_LOCAL, "remote": UTS_STEAL_REMOTE}


def uts_steal(kind: str) -> str:
    """Counter name for one steal locality class ("local" | "remote")."""
    return _UTS_STEALS[kind]


# -- other apps / MPI -----------------------------------------------------

GUPS_BUCKET_FLUSHES = "gups.bucket_flushes"
GUPS_REMOTE_UPDATES = "gups.remote_updates"
MPI_SENDS = "mpi.sends"
MPI_RECVS = "mpi.recvs"

# -- simulation engine ----------------------------------------------------
#
# Tallied by repro.sim.engine only while a tracer is armed (the untraced
# hot path keeps its one-attribute-load guard) and emitted as counter
# samples at Tracer.finalize, so trace analytics can track the
# engine-speedup roadmap item run over run.

ENGINE_EVENTS_POPPED = "engine.events_popped"
ENGINE_HEAP_PEAK = "engine.heap_peak"
ENGINE_CONTEXT_SWITCHES = "engine.context_switches"
ENGINE_COSTED_CYCLES = "engine.costed_cycles"

#: Every engine metric, in emission order (the Simulator's tally keys).
ENGINE_METRICS = (
    ENGINE_EVENTS_POPPED,
    ENGINE_HEAP_PEAK,
    ENGINE_CONTEXT_SWITCHES,
    ENGINE_COSTED_CYCLES,
)

# -- sanitizer (repro.analyze) --------------------------------------------

SAN_RACE_FINDINGS = "sanitizer.race_findings"
SAN_PRIVATIZATION_FINDINGS = "sanitizer.privatization_findings"
SAN_COLLECTIVE_FINDINGS = "sanitizer.collective_findings"

# -- static analyzer (repro.analyze.static) -------------------------------
#
# Counters carried by the canonical JSON report of the static PGAS
# analyzer; like every other emitter it spells registered names, so the
# report schema is enumerable and typo-proof.

STATIC_FILES = "static.files_scanned"
STATIC_FUNCTIONS = "static.functions_analyzed"
STATIC_FINDINGS = "static.findings"
STATIC_SUPPRESSED = "static.suppressed_noqa"
STATIC_BASELINED = "static.baselined"

#: Every counter the static report emits, in emission order.
STATIC_METRICS = (
    STATIC_FILES,
    STATIC_FUNCTIONS,
    STATIC_FINDINGS,
    STATIC_SUPPRESSED,
    STATIC_BASELINED,
)

# -- profiler (repro.obs.profile) -----------------------------------------
#
# The host wall-clock profiler weighs folded stacks by Python call counts
# (a pure function of the simulation, so site *rankings* reproduce across
# runs) and carries raw wall microseconds alongside; the simulated-cost
# profiler attributes the engine's costed cycles and context switches to
# curated sites and is byte-deterministic end to end.

PROF_HOST_CALLS = "profile.host.calls"
PROF_HOST_WALL_US = "profile.host.wall_us"
PROF_COST_EVENTS = "profile.cost.events"
PROF_COST_CYCLES = "profile.cost.cycles"
PROF_COST_SWITCHES = "profile.cost.switches"

#: Weight fields carried by every host-profile stack/site row.
PROF_HOST_METRICS = (PROF_HOST_CALLS, PROF_HOST_WALL_US)
#: Weight fields carried by every cost-profile site row.
PROF_COST_METRICS = (PROF_COST_EVENTS, PROF_COST_CYCLES, PROF_COST_SWITCHES)

# -- registry -------------------------------------------------------------

#: name -> (kind, meaning).  ``kind`` is how the StatsCollector stores it.
REGISTRY = {
    NET_MESSAGES: ("count", "messages injected into the fabric"),
    NET_BYTES: ("sum", "payload bytes injected into the fabric"),
    NET_LOOPBACK_MESSAGES: ("count", "intra-node messages through the NIC loopback"),
    NET_MESSAGES_LOST: ("count", "messages that became black holes"),
    GASNET_PUT: ("count", "upc_memput-shaped operations"),
    GASNET_GET: ("count", "upc_memget-shaped operations"),
    GASNET_BYTES: ("sum", "bytes moved by gasnet put/get"),
    GASNET_BYPASS: ("count", "put/get served by the shared-memory fast path"),
    GASNET_AM_ROUNDTRIPS: ("count", "active-message request/reply rounds"),
    GASNET_RETRANSMITS: ("count", "op attempts after the first (retries)"),
    GASNET_TIMEOUTS: ("count", "op attempts that hit their timeout"),
    GASNET_CORRUPT_DETECTED: ("count", "deliveries NAKed by integrity check"),
    GASNET_ENDPOINT_FAILURES: ("count", "ops that exhausted their retry budget"),
    GASNET_WAITSYNC: ("count", "non-blocking handle synchronizations"),
    GASNET_WAITSYNC_TIME: ("sum", "seconds blocked in handle.wait()"),
    FAULTS_CRASHES: ("count", "node fail-stops fired"),
    FAULTS_CRASH_TIMES: ("series", "simulated times of node crashes"),
    FAULTS_DEGRADE_WINDOWS: ("count", "scheduled NIC degradation windows"),
    FAULTS_MESSAGES_BLACKHOLED: ("count", "messages touching a dead node"),
    FAULTS_MESSAGES_LOST: ("count", "messages dropped by a loss rule"),
    FAULTS_MESSAGES_CORRUPTED: ("count", "messages mangled by a corruption rule"),
    FAULTS_THREADS_KILLED: ("count", "UPC threads killed by node crashes"),
    FAULTS_LOCKS_RECOVERED: ("count", "locks reclaimed from dead holders"),
    FAULTS_BARRIER_SEATS_DROPPED: ("count", "barrier seats dropped for the dead"),
    UTS_STEAL_LOCAL: ("count", "successful steals from castable victims"),
    UTS_STEAL_REMOTE: ("count", "successful steals across the network"),
    UTS_NODES_STOLEN: ("count", "tree nodes moved by steals"),
    UTS_VICTIMS_BLACKLISTED: ("count", "victims declared unreachable"),
    UTS_NODES_LOST_IN_TRANSIT: ("count", "stolen nodes lost to a dying victim"),
    UTS_NODES_LOST_ON_STACK: ("count", "queued nodes lost to a crash"),
    GUPS_BUCKET_FLUSHES: ("count", "RandomAccess bucket flushes"),
    GUPS_REMOTE_UPDATES: ("count", "RandomAccess remote table updates"),
    MPI_SENDS: ("count", "MPI point-to-point sends"),
    MPI_RECVS: ("count", "MPI point-to-point receives"),
    ENGINE_EVENTS_POPPED: ("count", "engine: heap events executed"),
    ENGINE_HEAP_PEAK: ("max", "engine: peak pending-event heap size"),
    ENGINE_CONTEXT_SWITCHES: ("count", "engine: generator resumes (process steps)"),
    ENGINE_COSTED_CYCLES: ("count", "engine: nonzero delays charged (cost yields)"),
    SAN_RACE_FINDINGS: ("count", "sanitizer: data races detected"),
    SAN_PRIVATIZATION_FINDINGS: ("count", "sanitizer: illegal privatized accesses"),
    SAN_COLLECTIVE_FINDINGS: ("count", "sanitizer: collective/barrier mismatches"),
    STATIC_FILES: ("count", "static analyzer: files scanned"),
    STATIC_FUNCTIONS: ("count", "static analyzer: functions analyzed"),
    STATIC_FINDINGS: ("count", "static analyzer: findings after noqa"),
    STATIC_SUPPRESSED: ("count", "static analyzer: findings suppressed by noqa"),
    STATIC_BASELINED: ("count", "static analyzer: findings matched by the baseline"),
    PROF_HOST_CALLS: ("count", "profiler: Python calls attributed to a site path"),
    PROF_HOST_WALL_US: ("sum", "profiler: wall microseconds at a site path"),
    PROF_COST_EVENTS: ("count", "profiler: engine events scheduled by a site"),
    PROF_COST_CYCLES: ("count", "profiler: costed cycles charged by a site"),
    PROF_COST_SWITCHES: ("count", "profiler: context switches into a site"),
}


def all_metric_names() -> tuple:
    """Every registered metric name, sorted (for tests and tooling)."""
    return tuple(sorted(REGISTRY))
