#!/usr/bin/env python
"""Quickstart: a first UPC program on the simulated cluster.

Builds a two-node Lehman machine, launches 8 UPC threads, allocates a
shared array, and exercises the PGAS basics: affinity, upc_forall,
bulk memory copies, pointer privatization, barriers and a reduction.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.machine import presets
from repro.upc import SharedPointer, UpcProgram, collectives, forall

N = 64


def main(upc):
    me, T = upc.MYTHREAD, upc.THREADS
    if me == 0:
        print(f"hello from {T} UPC threads on "
              f"{upc.topo.describe()}")

    # Collectively allocate a block-distributed shared array and fill the
    # elements each thread has affinity to (classic upc_forall).
    A = yield from upc.all_alloc(N, dtype="f8", blocksize="block")
    for i in forall.indices(upc, 0, N, affinity=A):
        A[i] = float(i * i)
    yield from upc.barrier()

    # Read a remote block through the runtime (costs simulated time).
    start = (me + 1) % T * A.blocksize
    data = yield from A.get_block(upc, start, 4)
    assert np.allclose(data, [float(i * i) for i in range(start, start + 4)])

    # Privatize a pointer into a castable neighbour's memory, if any.
    castable = [t for t in upc.peers_sharing_memory() if t != me]
    if castable:
        ptr = SharedPointer(A, castable[0] * A.blocksize)
        local_ptr = ptr.privatize(upc)  # bupc_cast: translation-free access
        value = yield from local_ptr.get(upc)
        assert value == float(local_ptr.index ** 2)

    # A global reduction over the whole array.
    my_sum = float(A[A.local_indices(me)].sum())
    total = yield from collectives.allreduce(
        upc, upc.program.world, my_sum, lambda a, b: a + b
    )
    if me == 0:
        expected = sum(i * i for i in range(N))
        print(f"sum of squares 0..{N - 1}: {total:.0f} (expected {expected})")
        print(f"simulated time: {upc.wtime() * 1e6:.1f} us")
    return total


if __name__ == "__main__":
    prog = UpcProgram(presets.lehman(nodes=2), threads=8, threads_per_node=4)
    result = prog.run(main)
    assert len(set(result.returns)) == 1
    print(f"all {prog.threads} threads agreed; job took "
          f"{result.elapsed * 1e6:.1f} us of simulated time")
