#!/usr/bin/env python
"""Distributed 3-D FFT (NAS FT) verified against numpy.fft.

Runs class S through the full PGAS machinery — slab decomposition, 2-D
plane FFTs, global exchange, 1-D pencil FFTs, evolution, checksums — in
both the split-phase and the communication/computation-overlap variants,
and as a UPC×OpenMP hybrid, checking every checksum against the serial
reference.

Run:  python examples/fft_3d.py
"""

from repro.apps.ft import ft_class, run_ft, serial_ft


def main() -> None:
    cls = ft_class("S")
    iters = 3
    print(f"NAS FT {cls}: {iters} iterations, 4 UPC threads on 2 nodes\n")
    reference = serial_ft(cls, iterations=iters)

    configs = [
        ("UPC split-phase", dict(variant="split")),
        ("UPC overlap", dict(variant="overlap")),
        ("UPC async split", dict(variant="split", asynchronous=True)),
        ("UPC x OpenMP hybrid", dict(variant="split", omp_threads=2)),
        ("MPI (comparator)", dict(model="mpi")),
    ]
    for name, kw in configs:
        r = run_ft("S", threads=4, threads_per_node=2, iterations=iters, **kw)
        assert r["verified"], f"{name}: checksum mismatch!"
        phases = ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in r["phases"].items())
        print(f"{name:20s} elapsed={r['elapsed_s'] * 1e3:7.2f} ms  ({phases})")

    print("\nchecksums (distributed == numpy.fft reference):")
    for t, c in enumerate(reference, 1):
        print(f"  iter {t}: {c.real:+.6e} {c.imag:+.6e}j")


if __name__ == "__main__":
    main()
