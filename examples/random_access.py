#!/usr/bin/env python
"""RandomAccess (GUPS) with thread-group aggregation.

The thesis (§4.4) lists Random Access beside UTS as a natural fit for
the thread-group approach: single-level parallelism, fine-grained
communication that rewards hardware-aware batching.  This example fires
random XOR updates at a distributed table under three strategies and
verifies the final table against a serial replay.

Run:  python examples/random_access.py
"""

from repro.apps.randomaccess import GupsConfig, run_gups
from repro.machine.presets import lehman

CFG = dict(table_words=1 << 14, updates_per_thread=2048)


def main() -> None:
    print("RandomAccess: 16 threads on 4 Lehman nodes, "
          f"{16 * CFG['updates_per_thread']} updates\n")
    print(f"{'variant':14s} {'GUPS':>9s} {'flushes':>8s} {'remote upd':>11s}")
    for variant in ("fine-grained", "bucketed", "groups"):
        r = run_gups(
            config=GupsConfig(variant=variant, **CFG),
            threads=16, threads_per_node=4, preset=lehman(nodes=4),
        )
        assert r["verified"]
        print(f"{variant:14s} {r['gups']:9.6f} {r['bucket_flushes']:8d} "
              f"{r['remote_updates']:11d}")
    print("\nEach remote fine-grained update pays a full network round;")
    print("bucketing amortizes it (~5x here).  Thread groups additionally")
    print("apply intra-node updates through privatized pointers, cutting")
    print("bucket flushes; the win grows with the intra-node share of")
    print("updates (threads-per-node / THREADS).")


if __name__ == "__main__":
    main()
