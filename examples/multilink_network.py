#!/usr/bin/env python
"""Multi-link network behaviour: processes vs pthreads (Fig 4.2).

Measures round-trip latency and flood bandwidth between two simulated
QDR-connected nodes with 1, 2 and 4 link pairs, under the
connection-per-process and shared-connection (pthreads) backends.

Run:  python examples/multilink_network.py
"""

from repro.apps.microbench import run_flood_bandwidth, run_roundtrip_latency

LAT_SIZES = (8, 512, 8 << 10, 32 << 10)
BW_SIZES = (4 << 10, 64 << 10, 1 << 20)


def main() -> None:
    print("Round-trip latency (us), upc_memget:")
    print(f"{'config':16s} " + " ".join(f"{s:>9d}B" for s in LAT_SIZES))
    for pairs, backend in ((1, "processes"), (4, "processes"), (4, "pthreads")):
        lat = run_roundtrip_latency(pairs, backend, sizes=LAT_SIZES, repeats=7)
        label = f"{pairs} link {backend}"
        print(f"{label:16s} " + " ".join(f"{lat[s]:9.1f} " for s in LAT_SIZES))

    print("\nFlood bandwidth (MB/s), upc_memput_async:")
    print(f"{'config':16s} " + " ".join(f"{s:>9d}B" for s in BW_SIZES))
    for pairs, backend in ((1, "processes"), (2, "processes"),
                           (4, "processes"), (4, "pthreads")):
        bw = run_flood_bandwidth(pairs, backend, sizes=BW_SIZES, messages=16)
        label = f"{pairs} link {backend}"
        print(f"{label:16s} " + " ".join(f"{bw[s]:9.0f} " for s in BW_SIZES))

    print("\nShapes to notice (paper §4.3.1): one pair is connection-limited")
    print("(~1.4 GB/s); several process pairs reach the NIC's ~2.4 GB/s;")
    print("pthread pairs share one connection, so they extract less bandwidth")
    print("and their latency serializes as messages queue for injection.")


if __name__ == "__main__":
    main()
