#!/usr/bin/env python
"""Unbalanced Tree Search with locality-conscious work stealing.

Counts a ~75k-node binomial tree on a simulated 8-node Opteron cluster
under the three victim-selection policies of Chapter 3, over InfiniBand
and Gigabit Ethernet, and prints the Fig 3.3 / Table 3.2 style summary.

Run:  python examples/uts_work_stealing.py
"""

from repro.apps.uts import count_tree, run_uts, small_tree
from repro.machine.presets import pyramid

TREE = small_tree("medium")
THREADS = 32
NODES = 8


def main() -> None:
    expected, depth = count_tree(TREE)
    print(f"tree: {expected} nodes, depth {depth}")
    print(f"{THREADS} threads on {NODES} nodes "
          f"({THREADS // NODES} per node)\n")
    header = (f"{'network':8s} {'policy':17s} {'Mnodes/s':>9s} "
              f"{'steals':>7s} {'local%':>7s} {'avg steal':>10s}")
    print(header)
    print("-" * len(header))
    for conduit, chunk in (("ib-ddr", 8), ("gige", 20)):
        for policy in ("baseline", "local", "local+diffusion"):
            r = run_uts(
                policy,
                tree=TREE,
                preset=pyramid(nodes=NODES),
                threads=THREADS,
                threads_per_node=THREADS // NODES,
                conduit=conduit,
                steal_chunk=chunk,
            )
            assert r["tree_nodes"] == expected  # no node lost or duplicated
            print(f"{conduit:8s} {policy:17s} {r['mnodes_per_s']:9.1f} "
                  f"{r['steals']:7d} {r['pct_local_steals']:6.1f}% "
                  f"{r['avg_steal_size']:10.1f}")
        print()
    print("Findings (paper §3.3.2): the locality-conscious policies beat the")
    print("random baseline, more so on the slow network; rapid diffusion")
    print("moves more work per steal and raises the local-steal share.")


if __name__ == "__main__":
    main()
