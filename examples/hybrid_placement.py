#!/usr/bin/env python
"""Thread/data placement on ccNUMA: the Table 4.1 study, interactively.

Shows why hybrid UPC x OpenMP programs must bind masters to sockets: an
un-bound single master first-touches every page on one socket, and its
eight sub-threads then fight over one memory controller.

Run:  python examples/hybrid_placement.py
"""

from repro.apps.stream import run_hybrid_stream, run_pure
from repro.machine.presets import lehman

N = 500_000


def main() -> None:
    preset = lehman(nodes=1)
    print("STREAM triad on one dual-socket Nehalem node "
          "(node peak ~24.6 GB/s)\n")
    rows = []
    rows.append(("pure UPC, 8 processes",
                 run_pure("upc", preset=preset, elements_per_thread=N)))
    rows.append(("pure OpenMP, 8 threads",
                 run_pure("openmp", preset=preset, elements_per_thread=N)))
    rows.append(("hybrid 1x8, un-bound",
                 run_hybrid_stream(1, 8, bound=False, preset=preset,
                                   total_elements=8 * N)))
    rows.append(("hybrid 2x4, socket-bound",
                 run_hybrid_stream(2, 4, bound=True, preset=preset,
                                   total_elements=8 * N)))
    rows.append(("hybrid 4x2, socket-bound",
                 run_hybrid_stream(4, 2, bound=True, preset=preset,
                                   total_elements=8 * N)))
    for name, r in rows:
        bar = "#" * int(r["throughput_gbs"])
        print(f"{name:26s} {r['throughput_gbs']:5.1f} GB/s  {bar}")
    print("\nThe un-bound 1x8 run achieves about half the node bandwidth:")
    print("first-touch put every page on the master's socket, so all eight")
    print("sub-threads drain one memory controller (paper Table 4.1: 13.9")
    print("vs 24.7 GB/s).  Binding one master per socket restores it.")


if __name__ == "__main__":
    main()
