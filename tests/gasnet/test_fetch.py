"""Unit tests for the RDMA-read (fetch) path of the fabric."""

import pytest

from repro.machine import MachineSpec, MachineTopology, NodeSpec
from repro.network import Fabric, NetworkParams
from repro.sim import Simulator

GB = 1e9


def make_fabric(sim, **params):
    topo = MachineTopology(MachineSpec(name="t", nodes=2, node=NodeSpec(2, 4, 1)))
    defaults = dict(
        latency=2e-6, gap=0.0, connection_bw=1 * GB, nic_bw=2 * GB,
        loopback_bw=4 * GB, loopback_latency=0.5e-6, qp_penalty=0.0,
    )
    defaults.update(params)
    return Fabric(sim, topo, NetworkParams(**defaults))


def timed_fetch(sim, fab, ini, tgt, nbytes):
    def proc():
        yield from fab.fetch(ini, tgt, nbytes)
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    sim.raise_failures()
    return p.result


class TestFetch:
    def test_small_fetch_pays_double_latency(self):
        sim = Simulator()
        fab = make_fabric(sim)
        fab.register_endpoint(0, 0)
        fab.register_endpoint(1, 1)
        t = timed_fetch(sim, fab, 0, 1, 8)
        assert t >= 4e-6  # request flight + response flight

    def test_fetch_uses_initiator_connection(self):
        """Two fetches on a shared initiator connection serialize."""
        sim = Simulator()
        fab = make_fabric(sim, latency=0.0)
        fab.register_endpoint(0, 0, connection_key="p")
        fab.register_endpoint(1, 0, connection_key="p")
        fab.register_endpoint(10, 1)
        fab.register_endpoint(11, 1)
        ends = []

        def proc(ini, tgt):
            yield from fab.fetch(ini, tgt, 1 * GB)
            ends.append(sim.now)

        sim.spawn(proc(0, 10))
        sim.spawn(proc(1, 11))
        sim.run()
        sim.raise_failures()
        assert sorted(ends)[1] == pytest.approx(2.0, rel=0.02)

    def test_intra_node_fetch_skips_wire(self):
        sim = Simulator()
        fab = make_fabric(sim, latency=1.0)
        fab.register_endpoint(0, 0)
        fab.register_endpoint(1, 0)
        t = timed_fetch(sim, fab, 0, 1, 64)
        assert t < 1e-3  # never paid the 1s wire latency

    def test_negative_fetch_rejected(self):
        from repro.errors import NetworkError

        sim = Simulator()
        fab = make_fabric(sim)
        fab.register_endpoint(0, 0)
        fab.register_endpoint(1, 1)

        def proc():
            yield from fab.fetch(0, 1, -1)

        p = sim.spawn(proc())
        sim.run()
        assert isinstance(p.exc, NetworkError)

    def test_fetch_drains_target_tx(self):
        """Read data streams out of the *target's* NIC."""
        sim = Simulator()
        fab = make_fabric(sim)
        fab.register_endpoint(0, 0)
        fab.register_endpoint(1, 1)
        timed_fetch(sim, fab, 0, 1, 1 << 20)
        assert fab.nic_tx[1].total_bytes == pytest.approx(1 << 20)
        assert fab.nic_rx[0].total_bytes == pytest.approx(1 << 20)
