"""Unit tests for non-blocking put/get handles."""

import pytest

from repro.errors import GasnetError
from repro.gasnet import extended
from repro.sim import Simulator

from tests.gasnet.conftest import build_runtime


@pytest.fixture
def rt(sim):
    return build_runtime(sim, nodes=2, threads_per_node=1, pshm=True)


class TestNonBlocking:
    def test_put_nb_returns_immediately(self, sim, rt):
        log = []

        def proc(rt):
            h = extended.put_nb(rt, 0, 1, 1 << 20)
            log.append(("issued", rt.sim.now))
            yield from h.wait()
            log.append(("done", rt.sim.now))

        sim.spawn(proc(rt))
        sim.run()
        sim.raise_failures()
        assert log[0] == ("issued", 0.0)
        assert log[1][1] > 0.0

    def test_overlap_hides_transfer(self, sim, rt):
        """Compute issued after put_nb overlaps with the wire time."""

        def overlapped(rt):
            h = extended.put_nb(rt, 0, 1, 4 << 20)
            yield rt.mem.compute(rt.location(0).pu, 0.01)
            yield from h.wait()
            return rt.sim.now

        p = sim.spawn(overlapped(rt))
        sim.run()
        sim.raise_failures()
        transfer_alone = rt.fabric.params.message_time(4 << 20)
        # 10 ms of compute dwarfs the transfer; total is about the compute
        assert p.result == pytest.approx(0.01, rel=0.15)
        assert transfer_alone < 0.01

    def test_double_wait_rejected(self, sim, rt):
        def proc(rt):
            h = extended.put_nb(rt, 0, 1, 8)
            yield from h.wait()
            yield from h.wait()

        p = sim.spawn(proc(rt))
        sim.run()
        assert isinstance(p.exc, GasnetError)

    def test_waitsync_time_recorded(self, sim, rt):
        def proc(rt):
            h = extended.put_nb(rt, 0, 1, 8 << 20)
            yield from h.wait()

        sim.spawn(proc(rt))
        sim.run()
        sim.raise_failures()
        assert rt.stats.get_count("gasnet.waitsync") == 1
        assert rt.stats.get_sum("gasnet.waitsync_time") > 0

    def test_get_nb(self, sim, rt):
        def proc(rt):
            h = extended.get_nb(rt, 0, 1, 1 << 16)
            yield from h.wait()
            return rt.sim.now

        p = sim.spawn(proc(rt))
        sim.run()
        sim.raise_failures()
        assert p.result > 0

    def test_done_flag(self, sim, rt):
        handles = {}

        def proc(rt):
            h = extended.put_nb(rt, 0, 1, 1 << 20)
            handles["h"] = h
            assert not h.done
            yield from h.wait()
            assert h.done

        sim.spawn(proc(rt))
        sim.run()
        sim.raise_failures()


class TestBlocking:
    def test_put_blocks_caller(self, sim, rt):
        def proc(rt):
            yield from extended.put(rt, 0, 1, 1 << 20)
            return rt.sim.now

        p = sim.spawn(proc(rt))
        sim.run()
        sim.raise_failures()
        assert p.result >= rt.fabric.params.message_time(1 << 20)

    def test_get_blocks_caller(self, sim, rt):
        def proc(rt):
            yield from extended.get(rt, 0, 1, 1 << 20)
            return rt.sim.now

        p = sim.spawn(proc(rt))
        sim.run()
        sim.raise_failures()
        assert p.result > 0
