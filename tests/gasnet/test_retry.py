"""GASNet timeout + retransmit layer under injected message faults."""

import math

import pytest

from repro.errors import EndpointFailedError, GasnetError
from repro.faults import FaultInjector, FaultPlan, MessageFaultRule
from repro.gasnet import RetryPolicy
from repro.sim import Simulator

from tests.gasnet.conftest import build_runtime


def arm(rt, plan, retry=None):
    inj = FaultInjector(rt.sim, plan, stats=rt.stats)
    rt.attach_faults(inj, retry=retry)
    return inj


def drive(sim, gen):
    """Run ``gen`` to completion, returning (finished, exception)."""
    out = {"exc": None, "done": False}
    def driver():
        try:
            yield from gen
            out["done"] = True
        except Exception as exc:
            out["exc"] = exc
    sim.spawn(driver())
    sim.run()
    return out["done"], out["exc"]


#: rules whose window closes before the first (>= 100 us) timeout: the
#: first attempt is hit deterministically, every retry lands after ``end``.
def transient(kind, end=50e-6):
    return FaultPlan(message_rules=(
        MessageFaultRule(kind, 1.0, start=0.0, end=end),
    ))


@pytest.fixture
def sim():
    return Simulator()


class TestRetryPolicy:
    def test_defaults_valid(self):
        RetryPolicy()

    def test_validation(self):
        with pytest.raises(GasnetError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(GasnetError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(GasnetError):
            RetryPolicy(min_timeout=0.0)
        with pytest.raises(GasnetError):
            RetryPolicy(timeout_factor=-1.0)

    def test_timeout_floor_and_backoff(self):
        pol = RetryPolicy(timeout_factor=8.0, min_timeout=100e-6, backoff=2.0)
        # small op: the floor dominates, then doubles per attempt
        assert pol.timeout_for(1e-6, 0) == 100e-6
        assert pol.timeout_for(1e-6, 1) == 200e-6
        assert pol.timeout_for(1e-6, 3) == 800e-6
        # large op: proportional to the expected time
        assert pol.timeout_for(1e-3, 0) == pytest.approx(8e-3)


class TestReliableXfer:
    def test_no_injector_no_retry_path(self, sim):
        rt = build_runtime(sim)
        done, exc = drive(sim, rt.xfer(0, 2, 4096, "put"))
        assert done and exc is None
        assert rt.stats.get_count("gasnet.timeouts") == 0

    def test_transient_loss_recovered(self, sim):
        rt = build_runtime(sim)
        arm(rt, transient("loss"))
        done, exc = drive(sim, rt.xfer(0, 2, 4096, "put"))
        assert done and exc is None
        assert rt.stats.get_count("gasnet.timeouts") == 1
        assert rt.stats.get_count("gasnet.retransmits") == 1
        assert rt.stats.get_count("gasnet.endpoint_failures") == 0

    def test_transient_corruption_recovered(self, sim):
        rt = build_runtime(sim)
        # corruption is NAKed at delivery and retried immediately (no
        # timeout), so its transient window must close within the first
        # attempt's ~4 us delivery time
        arm(rt, transient("corrupt", end=1e-6))
        done, exc = drive(sim, rt.xfer(0, 2, 4096, "get"))
        assert done and exc is None
        assert rt.stats.get_count("gasnet.corrupt_detected") >= 1
        assert rt.stats.get_count("gasnet.retransmits") >= 1
        # corruption is detected at delivery, not via timeout
        assert rt.stats.get_count("gasnet.timeouts") == 0
        # the failed attempt was supervised: nothing left to re-raise
        sim.raise_failures(check_stalled=True)

    def test_persistent_loss_exhausts_budget(self, sim):
        rt = build_runtime(sim)
        retry = RetryPolicy(max_attempts=3)
        arm(rt, FaultPlan(message_rules=(MessageFaultRule("loss", 1.0),)),
            retry=retry)
        done, exc = drive(sim, rt.xfer(0, 2, 4096, "put"))
        assert not done
        assert isinstance(exc, EndpointFailedError)
        assert exc.thread == 2
        assert rt.stats.get_count("gasnet.timeouts") == 3
        assert rt.stats.get_count("gasnet.retransmits") == 2
        assert rt.stats.get_count("gasnet.endpoint_failures") == 1

    def test_backoff_spaces_attempts_exponentially(self, sim):
        rt = build_runtime(sim)
        retry = RetryPolicy(max_attempts=3, min_timeout=100e-6, backoff=2.0)
        arm(rt, FaultPlan(message_rules=(MessageFaultRule("loss", 1.0),)),
            retry=retry)
        done, exc = drive(sim, rt.xfer(0, 2, 64, "put"))
        assert isinstance(exc, EndpointFailedError)
        # three timeouts of 100/200/400 us (plus negligible overheads)
        assert sim.now == pytest.approx(700e-6, rel=0.2)

    def test_am_roundtrip_recovered(self, sim):
        rt = build_runtime(sim)
        arm(rt, transient("loss"))
        done, exc = drive(sim, rt.am_roundtrip(0, 2))
        assert done and exc is None
        assert rt.stats.get_count("gasnet.retransmits") == 1

    def test_am_roundtrip_to_dead_peer_fails(self, sim):
        rt = build_runtime(sim)
        inj = arm(rt, FaultPlan())
        inj.dead_nodes.add(1)  # threads 2,3 live on node 1
        done, exc = drive(sim, rt.am_roundtrip(0, 2))
        assert isinstance(exc, EndpointFailedError)

    def test_failed_attempts_leave_fabric_clean(self, sim):
        rt = build_runtime(sim)
        arm(rt, FaultPlan(message_rules=(MessageFaultRule("loss", 1.0),)),
            retry=RetryPolicy(max_attempts=2))
        done, exc = drive(sim, rt.xfer(0, 2, 4096, "put"))
        assert isinstance(exc, EndpointFailedError)
        for node in range(rt.topo.total_nodes):
            assert rt.fabric.active_connections_on_node(node) == 0
        # killed attempts are not "stalled": the supervisor reaped them
        assert sim.stalled_processes() == []

    def test_local_ops_bypass_reliability(self, sim):
        # PSHM neighbours copy through shared memory: no fabric message,
        # so a 100%-loss plan cannot touch them.
        rt = build_runtime(sim, pshm=True)
        arm(rt, FaultPlan(message_rules=(MessageFaultRule("loss", 1.0),)))
        done, exc = drive(sim, rt.xfer(0, 1, 4096, "put"))
        assert done and exc is None
        assert rt.stats.get_count("gasnet.timeouts") == 0
