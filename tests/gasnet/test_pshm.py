"""Unit tests for supernode discovery."""

import pytest

from repro.errors import GasnetError
from repro.gasnet import discover_supernodes


class TestDiscovery:
    def test_processes_without_pshm_are_singletons(self):
        groups = discover_supernodes([0, 0, 1, 1], [0, 1, 2, 3], pshm=False)
        assert groups == [(0,), (1,), (2,), (3,)]

    def test_processes_with_pshm_group_by_node(self):
        groups = discover_supernodes([0, 0, 1, 1], [0, 1, 2, 3], pshm=True)
        assert groups == [(0, 1), (2, 3)]

    def test_pthreads_without_pshm_group_by_process(self):
        groups = discover_supernodes([0, 0, 0, 0], [0, 0, 1, 1], pshm=False)
        assert groups == [(0, 1), (2, 3)]

    def test_pthreads_with_pshm_group_whole_node(self):
        groups = discover_supernodes([0, 0, 0, 0], [0, 0, 1, 1], pshm=True)
        assert groups == [(0, 1, 2, 3)]

    def test_every_thread_in_exactly_one_group(self):
        groups = discover_supernodes([0, 1, 0, 1, 0], [0, 1, 2, 3, 4], pshm=True)
        seen = [t for g in groups for t in g]
        assert sorted(seen) == [0, 1, 2, 3, 4]
        assert len(seen) == len(set(seen))

    def test_process_spanning_nodes_rejected(self):
        with pytest.raises(GasnetError, match="spans nodes"):
            discover_supernodes([0, 1], [0, 0], pshm=False)

    def test_size_mismatch_rejected(self):
        with pytest.raises(GasnetError, match="mismatch"):
            discover_supernodes([0, 0], [0], pshm=False)

    def test_groups_ordered_by_first_member(self):
        groups = discover_supernodes([1, 0], [0, 1], pshm=True)
        assert groups == [(0,), (1,)]
