"""Unit tests for GASNet teams."""

import pytest

from repro.errors import GasnetError
from repro.gasnet import Team
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestTeamBasics:
    def test_membership_and_ranks(self, sim):
        team = Team(sim, [4, 7, 9])
        assert len(team) == 3
        assert 7 in team and 5 not in team
        assert team.rank(7) == 1
        assert team.thread_at(2) == 9

    def test_empty_rejected(self, sim):
        with pytest.raises(GasnetError):
            Team(sim, [])

    def test_duplicates_rejected(self, sim):
        with pytest.raises(GasnetError, match="duplicate"):
            Team(sim, [1, 1])

    def test_rank_of_non_member_rejected(self, sim):
        team = Team(sim, [0, 1])
        with pytest.raises(GasnetError, match="not in team"):
            team.rank(5)

    def test_thread_at_out_of_range(self, sim):
        team = Team(sim, [0, 1])
        with pytest.raises(GasnetError, match="out of range"):
            team.thread_at(2)


class TestTeamBarrier:
    def test_barrier_releases_together(self, sim):
        team = Team(sim, [0, 1, 2])
        times = []

        def member(sim, team, tid, arrive):
            yield sim.delay(arrive)
            yield from team.barrier(tid)
            times.append(sim.now)

        for tid, arr in zip((0, 1, 2), (1.0, 3.0, 2.0)):
            sim.spawn(member(sim, team, tid, arr))
        sim.run()
        assert times == [3.0, 3.0, 3.0]

    def test_non_member_barrier_rejected(self, sim):
        team = Team(sim, [0])

        def outsider(team):
            yield from team.barrier(9)

        p = sim.spawn(outsider(team))
        sim.run()
        assert isinstance(p.exc, GasnetError)


class TestTeamSplit:
    def test_split_by_color(self, sim):
        parent = Team(sim, [0, 1, 2, 3])
        reqs = [parent.split(t, color=t % 2) for t in range(4)]
        children = Team.build_split(sim, reqs)
        assert children[0].members == (0, 2)
        assert children[1].members == (1, 3)
        assert children[0] is children[2]

    def test_split_orders_by_key(self, sim):
        parent = Team(sim, [0, 1, 2])
        reqs = [
            parent.split(0, color=0, key=5),
            parent.split(1, color=0, key=1),
            parent.split(2, color=0, key=3),
        ]
        children = Team.build_split(sim, reqs)
        assert children[0].members == (1, 2, 0)

    def test_incomplete_split_rejected(self, sim):
        parent = Team(sim, [0, 1])
        with pytest.raises(GasnetError, match="cover"):
            Team.build_split(sim, [parent.split(0, color=0)])

    def test_split_from_non_member_rejected(self, sim):
        parent = Team(sim, [0, 1])
        with pytest.raises(GasnetError):
            parent.split(5, color=0)

    def test_empty_split_rejected(self, sim):
        with pytest.raises(GasnetError, match="no split"):
            Team.build_split(sim, [])

    def test_child_barrier_works(self, sim):
        parent = Team(sim, [0, 1, 2, 3])
        children = Team.build_split(
            sim, [parent.split(t, color=t // 2) for t in range(4)]
        )
        done = []

        def member(sim, team, tid):
            yield from team.barrier(tid)
            done.append(tid)

        for t in (0, 1):
            sim.spawn(member(sim, children[t], t))
        sim.run()
        assert sorted(done) == [0, 1]
