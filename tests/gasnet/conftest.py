"""Shared fixtures for GASNet-layer tests."""

import pytest

from repro.gasnet import BackendConfig, GasnetRuntime, ThreadLocation
from repro.machine import (
    MachineSpec,
    MachineTopology,
    MemoryParams,
    MemorySystem,
    NodeSpec,
)
from repro.network import NetworkParams
from repro.sim import Simulator

GB = 1e9


def build_runtime(
    sim,
    nodes=2,
    threads_per_node=2,
    mode="processes",
    pshm=True,
    threads_per_process=1,
    net_kwargs=None,
    mem_kwargs=None,
    backend_kwargs=None,
):
    """Assemble a GasnetRuntime with a compact thread layout."""
    topo = MachineTopology(
        MachineSpec(name="t", nodes=nodes, node=NodeSpec(2, 2, 1))
    )
    mem = MemorySystem(sim, topo, MemoryParams(**(mem_kwargs or {})))
    net = NetworkParams(**(net_kwargs or {}))
    locations = []
    nthreads = nodes * threads_per_node
    for t in range(nthreads):
        node = t // threads_per_node
        local = t % threads_per_node
        pu = topo.nodes[node].pu_indices[local]
        if mode == "processes":
            proc = t
        else:
            proc = t // threads_per_process
        locations.append(ThreadLocation(t, node, pu, proc))
    backend = BackendConfig(mode=mode, pshm=pshm, **(backend_kwargs or {}))
    return GasnetRuntime(sim, topo, mem, net, locations, backend)


@pytest.fixture
def sim():
    return Simulator()
