"""Unit tests for the GASNet core runtime."""

import pytest

from repro.errors import GasnetError
from repro.gasnet import BackendConfig, GasnetRuntime, ThreadLocation
from repro.machine import (
    MachineSpec,
    MachineTopology,
    MemoryParams,
    MemorySystem,
    NodeSpec,
)
from repro.network import NetworkParams
from repro.sim import Simulator

from tests.gasnet.conftest import build_runtime


class TestBackendConfig:
    def test_labels(self):
        assert BackendConfig(mode="processes", pshm=False).label == "processes"
        assert BackendConfig(mode="pthreads", pshm=True).label == "pthreads+pshm"

    def test_bad_mode_rejected(self):
        with pytest.raises(GasnetError):
            BackendConfig(mode="fibers")


class TestAttachment:
    def test_locations_registered(self, sim):
        rt = build_runtime(sim, nodes=2, threads_per_node=2)
        assert rt.nthreads == 4
        assert rt.location(3).node == 1

    def test_unknown_thread_rejected(self, sim):
        rt = build_runtime(sim)
        with pytest.raises(GasnetError):
            rt.location(99)

    def test_non_dense_ids_rejected(self, sim):
        topo = MachineTopology(MachineSpec(name="t", nodes=1, node=NodeSpec(1, 2, 1)))
        mem = MemorySystem(sim, topo, MemoryParams())
        locs = [ThreadLocation(1, 0, 0, 0)]
        with pytest.raises(GasnetError, match="dense"):
            GasnetRuntime(sim, topo, mem, NetworkParams(), locs)

    def test_pu_node_mismatch_rejected(self, sim):
        topo = MachineTopology(MachineSpec(name="t", nodes=2, node=NodeSpec(1, 2, 1)))
        mem = MemorySystem(sim, topo, MemoryParams())
        locs = [ThreadLocation(0, 1, 0, 0)]  # PU 0 is on node 0
        with pytest.raises(GasnetError, match="not on node"):
            GasnetRuntime(sim, topo, mem, NetworkParams(), locs)

    def test_segment_socket_is_first_touch(self, sim):
        rt = build_runtime(sim, nodes=1, threads_per_node=4)
        # node has 2 sockets x 2 cores; threads 0,1 on socket 0 and 2,3 on 1
        assert rt.segment_socket(0) == 0
        assert rt.segment_socket(3) == 1


class TestBypassPredicate:
    def test_processes_pshm_bypass_within_node(self, sim):
        rt = build_runtime(sim, nodes=2, threads_per_node=2, mode="processes", pshm=True)
        assert rt.can_bypass(0, 1)
        assert not rt.can_bypass(0, 2)

    def test_processes_no_pshm_never_bypass(self, sim):
        rt = build_runtime(sim, mode="processes", pshm=False)
        assert not rt.can_bypass(0, 1)
        assert rt.can_bypass(0, 0)  # always shares memory with itself

    def test_pthreads_bypass_within_process(self, sim):
        rt = build_runtime(
            sim, nodes=1, threads_per_node=4, mode="pthreads",
            pshm=False, threads_per_process=2,
        )
        assert rt.can_bypass(0, 1)
        assert not rt.can_bypass(1, 2)

    def test_pthreads_pshm_bypass_whole_node(self, sim):
        rt = build_runtime(
            sim, nodes=1, threads_per_node=4, mode="pthreads",
            pshm=True, threads_per_process=2,
        )
        assert rt.can_bypass(0, 3)

    def test_supernode_peers_includes_self(self, sim):
        rt = build_runtime(sim, nodes=2, threads_per_node=2, pshm=True)
        assert 0 in rt.supernode_peers(0)
        assert rt.supernode_peers(0) == (0, 1)


class TestXfer:
    def _run_xfer(self, sim, rt, src, dst, nbytes, **kw):
        def proc(rt):
            yield from rt.xfer(src, dst, nbytes, **kw)
            return rt.sim.now

        p = sim.spawn(proc(rt))
        sim.run()
        sim.raise_failures()
        return p.result

    def test_remote_put_uses_network(self, sim):
        rt = build_runtime(sim, nodes=2, threads_per_node=1, pshm=True)
        t = self._run_xfer(sim, rt, 0, 1, 1 << 20)
        expected = rt.fabric.params.message_time(1 << 20)
        assert t > expected * 0.9
        assert rt.stats.get_count("gasnet.put") == 1
        assert rt.stats.get_count("gasnet.bypass") == 0

    def test_local_put_bypasses_with_pshm(self, sim):
        rt = build_runtime(sim, nodes=1, threads_per_node=2, pshm=True)
        self._run_xfer(sim, rt, 0, 1, 1 << 20)
        assert rt.stats.get_count("gasnet.bypass") == 1

    def test_local_put_without_pshm_uses_loopback(self, sim):
        rt = build_runtime(sim, nodes=1, threads_per_node=2, pshm=False)
        self._run_xfer(sim, rt, 0, 1, 1 << 20)
        assert rt.stats.get_count("gasnet.bypass") == 0
        assert rt.stats.get_count("net.loopback_messages") == 1

    def test_pshm_bypass_faster_than_loopback(self):
        times = {}
        for pshm in (True, False):
            sim = Simulator()
            rt = build_runtime(sim, nodes=1, threads_per_node=2, pshm=pshm)
            times[pshm] = self._run_xfer(sim, rt, 0, 1, 4 << 20)
        assert times[True] < times[False]

    def test_privatized_faster_than_runtime_path(self):
        times = {}
        for privatized in (True, False):
            sim = Simulator()
            rt = build_runtime(sim, nodes=1, threads_per_node=2, pshm=True)
            times[privatized] = self._run_xfer(
                sim, rt, 0, 1, 4096, privatized=privatized
            )
        assert times[True] < times[False]

    def test_privatized_across_nodes_rejected(self, sim):
        rt = build_runtime(sim, nodes=2, threads_per_node=1, pshm=True)

        def proc(rt):
            yield from rt.xfer(0, 1, 8, privatized=True)

        p = sim.spawn(proc(rt))
        sim.run()
        assert isinstance(p.exc, GasnetError)

    def test_get_pays_extra_latency(self):
        def time_of(direction):
            sim = Simulator()
            rt = build_runtime(
                sim, nodes=2, threads_per_node=1, pshm=True,
                net_kwargs={"latency": 10e-6},
            )
            return self._run_xfer(sim, rt, 0, 1, 8, direction=direction)

        assert time_of("get") > time_of("put") + 5e-6

    def test_bad_direction_rejected(self, sim):
        rt = build_runtime(sim)

        def proc(rt):
            yield from rt.xfer(0, 1, 8, direction="push")

        p = sim.spawn(proc(rt))
        sim.run()
        assert isinstance(p.exc, GasnetError)


class TestAmRoundtrip:
    def test_shared_memory_round_is_cheap(self, sim):
        rt = build_runtime(sim, nodes=1, threads_per_node=2, pshm=True)

        def proc(rt):
            yield from rt.am_roundtrip(0, 1)
            return rt.sim.now

        p = sim.spawn(proc(rt))
        sim.run()
        assert p.result == pytest.approx(rt.backend.shm_roundtrip)

    def test_network_round_pays_two_flights(self, sim):
        rt = build_runtime(
            sim, nodes=2, threads_per_node=1, pshm=True,
            net_kwargs={"latency": 5e-6},
        )

        def proc(rt):
            yield from rt.am_roundtrip(0, 1)
            return rt.sim.now

        p = sim.spawn(proc(rt))
        sim.run()
        assert p.result > 10e-6

    def test_counts_recorded(self, sim):
        rt = build_runtime(sim, nodes=1, threads_per_node=2, pshm=True)

        def proc(rt):
            yield from rt.am_roundtrip(0, 1)

        sim.spawn(proc(rt))
        sim.run()
        assert rt.stats.get_count("gasnet.am_roundtrips") == 1
