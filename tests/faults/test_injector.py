"""Unit tests for FaultInjector: crash firing, degradation, message fates."""

import pytest

from repro.errors import FaultError
from repro.faults import FaultInjector, FaultPlan, LinkDegradation, \
    MessageFaultRule, NodeCrash
from repro.machine import MachineSpec, MachineTopology, NodeSpec
from repro.network import Fabric, NetworkParams
from repro.sim import Simulator

GB = 1e9


def make_fabric(sim, nodes=2):
    topo = MachineTopology(
        MachineSpec(name="t", nodes=nodes, node=NodeSpec(2, 2, 1))
    )
    params = NetworkParams(
        latency=1e-6, send_overhead=0.0, recv_overhead=0.0, gap=0.0,
        connection_bw=1 * GB, nic_bw=2 * GB, loopback_bw=4 * GB,
        loopback_latency=0.5e-6, qp_penalty=0.0,
    )
    return Fabric(sim, topo, params)


@pytest.fixture
def sim():
    return Simulator()


class TestCrash:
    def test_crash_fires_at_scheduled_time(self, sim):
        plan = FaultPlan(crashes=(NodeCrash(node=1, at=2e-3),))
        inj = FaultInjector(sim, plan)
        inj.attach(make_fabric(sim))
        seen = []
        inj.on_crash(lambda crash: seen.append((sim.now, crash.node)))
        assert inj.node_alive(1)
        sim.run()
        assert seen == [(2e-3, 1)]
        assert not inj.node_alive(1)
        assert inj.dead_nodes == {1}
        assert inj.stats.get_count("faults.crashes") == 1

    def test_duplicate_crash_fires_once(self, sim):
        plan = FaultPlan(crashes=(NodeCrash(0, 1e-3), NodeCrash(0, 2e-3)))
        inj = FaultInjector(sim, plan)
        inj.attach(make_fabric(sim))
        seen = []
        inj.on_crash(lambda crash: seen.append(crash.at))
        sim.run()
        assert seen == [1e-3]
        assert inj.stats.get_count("faults.crashes") == 1

    def test_attach_twice_rejected(self, sim):
        inj = FaultInjector(sim, FaultPlan())
        inj.attach(make_fabric(sim))
        with pytest.raises(FaultError, match="already attached"):
            inj.attach(make_fabric(sim))


class TestDegradation:
    def test_factor_only_inside_window(self, sim):
        plan = FaultPlan(degradations=(
            LinkDegradation(node=0, start=1.0, end=2.0, factor=0.5),
        ))
        inj = FaultInjector(sim, plan)
        assert inj.degrade_factor(0) == 1.0  # now=0, before window
        sim.schedule_at(1.5, lambda: None)
        sim.run()
        assert inj.degrade_factor(0) == 0.5
        assert inj.degrade_factor(1) == 1.0  # other node unaffected
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert inj.degrade_factor(0) == 1.0  # end is exclusive

    def test_overlapping_windows_compound(self, sim):
        plan = FaultPlan(degradations=(
            LinkDegradation(node=0, start=0.0, end=2.0, factor=0.5),
            LinkDegradation(node=0, start=0.0, end=1.0, factor=0.5),
        ))
        inj = FaultInjector(sim, plan)
        assert inj.degrade_factor(0) == 0.25


class TestMessageFate:
    def test_no_rules_always_ok(self, sim):
        inj = FaultInjector(sim, FaultPlan())
        assert all(inj.message_fate(0, 1) == "ok" for _ in range(50))

    def test_prob_one_always_hits(self, sim):
        plan = FaultPlan(message_rules=(MessageFaultRule("loss", 1.0),))
        inj = FaultInjector(sim, plan)
        assert all(inj.message_fate(0, 1) == "lost" for _ in range(20))
        assert inj.stats.get_count("faults.messages_lost") == 20

    def test_prob_zero_never_hits(self, sim):
        plan = FaultPlan(message_rules=(MessageFaultRule("corrupt", 0.0),))
        inj = FaultInjector(sim, plan)
        assert all(inj.message_fate(0, 1) == "ok" for _ in range(20))

    def test_first_matching_rule_wins(self, sim):
        plan = FaultPlan(message_rules=(
            MessageFaultRule("corrupt", 1.0, src_node=0),
            MessageFaultRule("loss", 1.0),
        ))
        inj = FaultInjector(sim, plan)
        assert inj.message_fate(0, 1) == "corrupt"
        assert inj.message_fate(1, 0) == "lost"

    def test_dead_node_black_holes_both_directions(self, sim):
        inj = FaultInjector(sim, FaultPlan())
        inj.dead_nodes.add(1)
        assert inj.message_fate(0, 1) == "lost"
        assert inj.message_fate(1, 0) == "lost"
        assert inj.message_fate(0, 2) == "ok"
        assert inj.stats.get_count("faults.messages_blackholed") == 2

    def test_draws_are_seed_deterministic(self, sim):
        plan = FaultPlan(message_rules=(MessageFaultRule("loss", 0.5),), seed=9)
        a = FaultInjector(Simulator(), plan)
        b = FaultInjector(Simulator(), plan)
        fates_a = [a.message_fate(0, 1) for _ in range(200)]
        fates_b = [b.message_fate(0, 1) for _ in range(200)]
        assert fates_a == fates_b
        assert "lost" in fates_a and "ok" in fates_a  # actually mixed

    def test_different_seed_different_draws(self, sim):
        rule = MessageFaultRule("loss", 0.5)
        a = FaultInjector(Simulator(), FaultPlan(message_rules=(rule,), seed=1))
        b = FaultInjector(Simulator(), FaultPlan(message_rules=(rule,), seed=2))
        fates_a = [a.message_fate(0, 1) for _ in range(200)]
        fates_b = [b.message_fate(0, 1) for _ in range(200)]
        assert fates_a != fates_b
