"""Unit tests for the declarative fault-plan grammar and validation."""

import math

import pytest

from repro.errors import FaultError
from repro.faults import FaultPlan, LinkDegradation, MessageFaultRule, NodeCrash


class TestValidation:
    def test_crash_rejects_negative(self):
        with pytest.raises(FaultError):
            NodeCrash(node=-1, at=0.0)
        with pytest.raises(FaultError):
            NodeCrash(node=0, at=-1.0)

    def test_degradation_factor_range(self):
        with pytest.raises(FaultError):
            LinkDegradation(node=0, start=0, end=1, factor=0.0)
        with pytest.raises(FaultError):
            LinkDegradation(node=0, start=0, end=1, factor=1.5)
        LinkDegradation(node=0, start=0, end=1, factor=1.0)  # boundary ok

    def test_degradation_window_must_be_nonempty(self):
        with pytest.raises(FaultError):
            LinkDegradation(node=0, start=2.0, end=2.0, factor=0.5)
        with pytest.raises(FaultError):
            LinkDegradation(node=0, start=3.0, end=2.0, factor=0.5)

    def test_rule_kind_and_prob(self):
        with pytest.raises(FaultError):
            MessageFaultRule(kind="drop", prob=0.5)
        with pytest.raises(FaultError):
            MessageFaultRule(kind="loss", prob=1.5)
        MessageFaultRule(kind="loss", prob=0.0)
        MessageFaultRule(kind="corrupt", prob=1.0)

    def test_rule_window_must_be_nonempty(self):
        with pytest.raises(FaultError):
            MessageFaultRule(kind="loss", prob=0.1, start=5.0, end=5.0)


class TestRuleMatching:
    def test_filters(self):
        rule = MessageFaultRule(kind="loss", prob=1.0, src_node=1, dst_node=2,
                                start=1.0, end=2.0)
        assert rule.matches(1, 2, 1.5)
        assert not rule.matches(0, 2, 1.5)  # wrong source
        assert not rule.matches(1, 3, 1.5)  # wrong destination
        assert not rule.matches(1, 2, 0.5)  # before window
        assert not rule.matches(1, 2, 2.0)  # end is exclusive

    def test_wildcards(self):
        rule = MessageFaultRule(kind="corrupt", prob=0.5)
        assert rule.matches(0, 1, 0.0)
        assert rule.matches(7, 7, 1e9)


class TestPlan:
    def test_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(crashes=(NodeCrash(0, 1.0),)).is_empty

    def test_crash_time_takes_earliest(self):
        plan = FaultPlan(crashes=(NodeCrash(2, 5.0), NodeCrash(2, 3.0),
                                  NodeCrash(1, 1.0)))
        assert plan.crash_time(2) == 3.0
        assert plan.crash_time(1) == 1.0
        assert plan.crash_time(0) is None


class TestParse:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "crash:node=1,at=2e-3;"
            "degrade:node=0,start=1e-3,end=4e-3,factor=0.25;"
            "loss:prob=0.05,src=1,dst=2,start=0.5,end=1.5;"
            "corrupt:prob=0.02;"
            "seed=7"
        )
        assert plan.crashes == (NodeCrash(node=1, at=2e-3),)
        assert plan.degradations == (
            LinkDegradation(node=0, start=1e-3, end=4e-3, factor=0.25),
        )
        assert plan.message_rules == (
            MessageFaultRule(kind="loss", prob=0.05, src_node=1, dst_node=2,
                             start=0.5, end=1.5),
            MessageFaultRule(kind="corrupt", prob=0.02, start=0.0, end=math.inf),
        )
        assert plan.seed == 7

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse("").is_empty
        assert FaultPlan.parse(" ; ; ").is_empty

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse(" crash : node = 1 , at = 0.5 ".replace(" ", ""))
        assert plan.crashes[0] == NodeCrash(1, 0.5)

    def test_seed_argument_overridden_by_clause(self):
        assert FaultPlan.parse("loss:prob=0.1", seed=3).seed == 3
        assert FaultPlan.parse("loss:prob=0.1;seed=9", seed=3).seed == 9

    def test_unknown_clause_rejected(self):
        with pytest.raises(FaultError, match="unknown fault clause"):
            FaultPlan.parse("explode:node=0")

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultError, match="unknown key"):
            FaultPlan.parse("crash:node=0,at=1,color=red")

    def test_missing_key_rejected(self):
        with pytest.raises(FaultError, match="needs at="):
            FaultPlan.parse("crash:node=0")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultError, match="bad prob"):
            FaultPlan.parse("loss:prob=lots")
        with pytest.raises(FaultError, match="key=value"):
            FaultPlan.parse("loss:prob")

    def test_roundtrip_determinism(self):
        spec = "crash:node=3,at=1e-4;loss:prob=0.5;seed=42"
        assert FaultPlan.parse(spec) == FaultPlan.parse(spec)
