"""S4: fault-injected runs are seed-reproducible and seed-transparent.

Two guarantees:

* the same seed + the same FaultPlan produces a byte-identical
  :meth:`StatsCollector.snapshot` (and identical app results);
* ``faults=None``, ``faults=""`` and an empty plan are all exactly the
  seed behaviour — fault plumbing has zero effect until a plan is armed.
"""

from repro.faults import FaultPlan
from repro.upc import UpcProgram

from tests.upc.conftest import make_program

#: mixed crash + loss + degradation: exercises every injection site
SPEC = ("crash:node=1,at=6e-5;loss:prob=0.3,end=2e-4;"
        "degrade:node=0,start=0,end=1e-4,factor=0.5;seed=13")


def chatty_main(upc):
    """All-to-all puts + AM lock rounds: plenty of message fates drawn."""
    me = upc.MYTHREAD
    for rounds in range(3):
        for peer in range(upc.THREADS):
            if peer == me:
                continue
            try:
                yield from upc.memput(peer, 2048)
            except Exception:
                pass  # dead peers are expected under the crash plan
        yield from upc.compute(1e-6)
    return me


def run_once(faults):
    prog = make_program(threads=4, nodes=2, threads_per_node=2, faults=faults)
    res = prog.run(chatty_main)
    return prog, res


class TestSeedReproducibility:
    def test_snapshots_byte_identical(self):
        prog_a, res_a = run_once(SPEC)
        prog_b, res_b = run_once(SPEC)
        snap_a = prog_a.stats.snapshot()
        assert snap_a == prog_b.stats.snapshot()
        assert res_a.elapsed == res_b.elapsed
        assert res_a.returns == res_b.returns
        # the plan actually did something — this is not a vacuous check
        assert prog_a.stats.get_count("faults.crashes") == 1
        assert prog_a.stats.get_count("net.messages_lost") > 0

    def test_different_plan_seed_diverges(self):
        # aggregate counters can coincide by luck, so compare the full
        # observable outcome: snapshot plus the run's finish time
        _prog_a, res_a = run_once("loss:prob=0.3;seed=1")
        _prog_b, res_b = run_once("loss:prob=0.3;seed=2")
        assert res_a.elapsed != res_b.elapsed


class TestSeedTransparency:
    def test_empty_plan_matches_no_faults(self):
        baseline, res_base = run_once(None)
        for faults in ("", FaultPlan()):
            prog, res = run_once(faults)
            assert prog.faults is None  # empty plans are normalized away
            assert prog.stats.snapshot() == baseline.stats.snapshot()
            assert res.elapsed == res_base.elapsed
            assert res.returns == res_base.returns

    def test_armed_but_quiet_plan_still_diverges(self):
        # A plan with rules (prob=0 loss) engages the timeout/retransmit
        # machinery even though no fault ever fires; that path is allowed
        # to cost differently from seed — which is exactly why empty
        # plans must be normalized to None instead of armed.
        baseline, _ = run_once(None)
        prog, res = run_once("loss:prob=0.0")
        assert prog.faults is not None
        assert res is not None  # runs fine; timings may legitimately differ


class TestSnapshotFormat:
    def test_snapshot_is_sorted_text(self):
        prog, _ = run_once(SPEC)
        snap = prog.stats.snapshot()
        lines = snap.splitlines()
        counts = [ln for ln in lines if ln.startswith("count ")]
        assert counts and counts == sorted(counts)  # canonical key order
        assert any(ln.startswith("count faults.crashes ") for ln in lines)


class TestTraceDeterminism:
    """Traces under fault injection are part of the determinism
    contract: same seed and plan, byte-identical export."""

    def _trace_once(self, faults):
        from repro.obs.export import dump_chrome_trace
        from repro.obs.session import trace_session

        with trace_session("det") as sess:
            prog = make_program(
                threads=4, nodes=2, threads_per_node=2, faults=faults
            )
            prog.run(chatty_main)
        return dump_chrome_trace(sess.tracers)

    def test_traced_faulty_runs_byte_identical(self):
        assert self._trace_once(SPEC) == self._trace_once(SPEC)

    def test_tracing_does_not_perturb_stats(self):
        # Attaching a tracer must not change what the simulation does.
        from repro.obs.session import trace_session

        with trace_session("det"):
            traced = make_program(
                threads=4, nodes=2, threads_per_node=2, faults=SPEC
            )
            traced.run(chatty_main)
        bare = make_program(
            threads=4, nodes=2, threads_per_node=2, faults=SPEC
        )
        bare.run(chatty_main)
        assert traced.stats.snapshot() == bare.stats.snapshot()
