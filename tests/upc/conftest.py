"""Shared fixtures for UPC-layer tests."""

import pytest

from repro.machine.presets import generic_smp
from repro.upc import UpcProgram


def make_program(threads=4, nodes=2, threads_per_node=None, **kwargs):
    """A small generic program for unit tests."""
    preset = generic_smp(nodes=nodes, sockets=2, cores_per_socket=2, smt_per_core=1)
    return UpcProgram(
        preset,
        threads=threads,
        threads_per_node=threads_per_node,
        **kwargs,
    )


@pytest.fixture
def prog():
    return make_program()
