"""Unit tests for shared pointers, privatization and pointer tables."""

import pytest

from repro.errors import UpcError
from repro.upc.pointers import PointerTable, SharedPointer
from tests.upc.conftest import make_program


class TestSharedPointer:
    def test_owner_and_phase(self):
        prog = make_program(threads=4)

        def main(upc):
            arr = yield from upc.all_alloc(16, blocksize=2)
            p = SharedPointer(arr, 5)
            return (p.owner, p.phase)

        res = prog.run(main)
        # index 5: block 2 -> thread 2, phase 1
        assert res.returns[0] == (2, 1)

    def test_arithmetic(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(8)
            p = SharedPointer(arr, 2)
            q = p + 3
            r = q - 1
            return (q.index, r.index)

        assert prog.run(main).returns[0] == (5, 4)

    def test_out_of_range_rejected(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(4)
            SharedPointer(arr, 4)

        with pytest.raises(Exception):
            prog.run(main)

    def test_arithmetic_bounds_checked(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(8)
            p = SharedPointer(arr, 6)
            try:
                p + 2  # index 8: one past the end
            except UpcError as exc:
                assert "out of bounds" in str(exc)
            else:
                raise AssertionError("overflow unchecked")
            try:
                p - 7
            except UpcError:
                return "checked"
            raise AssertionError("underflow unchecked")

        assert prog.run(main).returns[0] == "checked"

    def test_arithmetic_keeps_phase_consistent(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(12, blocksize=3)
            p = SharedPointer(arr, 0)
            # walking the pointer re-derives phase from the index, so it
            # wraps at the blocksize exactly like upc_phaseof
            return [((p + i).owner, (p + i).phase) for i in range(7)]

        walk = prog.run(main).returns[0]
        assert walk == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (0, 0)]

    def test_costed_deref_roundtrip(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(4)
            if upc.MYTHREAD == 0:
                yield from SharedPointer(arr, 3).put(upc, 2.5)
            yield from upc.barrier()
            v = yield from SharedPointer(arr, 3).get(upc)
            return v

        assert prog.run(main).returns == [2.5, 2.5]

    def test_deref_charges_translation(self):
        prog = make_program(threads=1)
        per = prog.preset.memory.pointer_translation_time

        def main(upc):
            arr = yield from upc.all_alloc(4)
            t0 = upc.wtime()
            for _ in range(100):
                yield from SharedPointer(arr, 0).get(upc)
            return upc.wtime() - t0

        elapsed = prog.run(main).returns[0]
        assert elapsed >= 100 * per


class TestPrivatization:
    def test_cast_within_supernode(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            arr = yield from upc.all_alloc(8, blocksize="block")
            p = SharedPointer(arr, 2)  # owned by thread 1 (same node as 0)
            if upc.MYTHREAD == 0:
                lp = p.privatize(upc)
                return lp.owner
            yield from upc.compute(0.0)

        assert prog.run(main).returns[0] == 1

    def test_cast_across_nodes_rejected(self):
        prog = make_program(threads=2, nodes=2, threads_per_node=1)

        def main(upc):
            arr = yield from upc.all_alloc(4, blocksize="block")
            if upc.MYTHREAD == 0:
                SharedPointer(arr, 3).privatize(upc)  # thread 1, other node
            yield from upc.compute(0.0)

        with pytest.raises(Exception, match="cannot cast"):
            prog.run(main)

    def test_privatized_deref_is_cheaper(self):
        prog = make_program(threads=2, nodes=1, threads_per_node=2)

        def main(upc):
            arr = yield from upc.all_alloc(1000, blocksize="block")
            yield from upc.barrier()
            if upc.MYTHREAD != 0:
                return None
            p = SharedPointer(arr, 600)  # thread 1's data, same node
            t0 = upc.wtime()
            for i in range(200):
                yield from (p + i).get(upc)
            shared_time = upc.wtime() - t0
            lp = p.privatize(upc)
            t0 = upc.wtime()
            for i in range(200):
                yield from (lp + i).get(upc)
            cast_time = upc.wtime() - t0
            return (shared_time, cast_time)

        shared_time, cast_time = prog.run(main).returns[0]
        assert cast_time < shared_time

    def test_local_pointer_sub_and_base_owner(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(8, blocksize="block")
            lp = SharedPointer(arr, 4 * upc.MYTHREAD + 2).privatize(upc)
            back = (lp + 1) - 2
            return (back.index, back.base_owner)

        res = prog.run(main)
        assert res.returns[0] == (1, 0)
        assert res.returns[1] == (5, 1)

    def test_local_pointer_arithmetic_bounds(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(4, blocksize="block")
            # privatize a pointer into my own block (always castable)
            lp = SharedPointer(arr, 2 * upc.MYTHREAD).privatize(upc)
            try:
                lp + 10
            except UpcError:
                return "checked"
            return "unchecked"

        assert prog.run(main).returns[0] == "checked"


class TestPointerTable:
    def test_table_flags_match_topology(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            table = yield from PointerTable.build(upc)
            return [table.castable(t) for t in range(4)]

        res = prog.run(main)
        assert res.returns[0] == [True, True, False, False]
        assert res.returns[2] == [False, False, True, True]

    def test_reachable_peers_excludes_self(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            table = yield from PointerTable.build(upc)
            return table.reachable_peers()

        res = prog.run(main)
        assert res.returns[0] == [1]
        assert res.returns[3] == [2]

    def test_unknown_thread_rejected(self):
        table = PointerTable(0, {0: True})
        with pytest.raises(UpcError):
            table.castable(5)
