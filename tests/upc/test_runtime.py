"""Unit tests for UpcProgram / Upc context."""

import pytest

from repro.errors import UpcError
from repro.gasnet import BackendConfig
from repro.upc import UpcProgram
from tests.upc.conftest import make_program


class TestLaunch:
    def test_spmd_identity(self):
        prog = make_program(threads=4)

        def main(upc):
            yield from upc.compute(1e-6)
            return (upc.MYTHREAD, upc.THREADS)

        res = prog.run(main)
        assert res.returns == [(t, 4) for t in range(4)]
        assert res.elapsed > 0

    def test_args_passed_through(self):
        prog = make_program(threads=2)

        def main(upc, a, b=0):
            yield from upc.compute(0.0)
            return a + b + upc.MYTHREAD

        res = prog.run(main, 10, b=5)
        assert res.returns == [15, 16]

    def test_bad_thread_count_rejected(self):
        with pytest.raises(UpcError):
            make_program(threads=0)

    def test_indivisible_pthreads_rejected(self):
        with pytest.raises(UpcError):
            make_program(threads=5, threads_per_process=2)

    def test_deadlock_detected(self):
        prog = make_program(threads=2)

        def main(upc):
            if upc.MYTHREAD == 0:
                yield from upc.barrier()  # thread 1 never arrives
            else:
                yield from upc.compute(1e-9)

        with pytest.raises(UpcError, match="deadlock"):
            prog.run(main)

    def test_failure_propagates(self):
        prog = make_program(threads=2)

        def main(upc):
            yield from upc.compute(0.0)
            if upc.MYTHREAD == 1:
                raise ValueError("app bug")

        with pytest.raises(Exception, match="app bug"):
            prog.run(main)


class TestPlacement:
    def test_compact_distinct_pus(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)
        pus = [prog.gasnet.location(t).pu for t in range(4)]
        assert len(set(pus)) == 4
        assert prog.gasnet.location(0).node == 0
        assert prog.gasnet.location(2).node == 1

    def test_processes_mode_unique_process_ids(self):
        prog = make_program(threads=4)
        procs = {prog.gasnet.location(t).process_id for t in range(4)}
        assert len(procs) == 4

    def test_pthreads_mode_groups_processes(self):
        prog = make_program(
            threads=4, nodes=1, threads_per_node=4, threads_per_process=2
        )
        locs = [prog.gasnet.location(t) for t in range(4)]
        assert locs[0].process_id == locs[1].process_id
        assert locs[0].process_id != locs[2].process_id

    def test_pthreads_threads_stay_on_process_socket(self):
        prog = make_program(
            threads=4, nodes=1, threads_per_node=4, threads_per_process=2
        )
        topo = prog.topo
        for p in (0, 1):
            socks = {
                topo.pu(prog.gasnet.location(p * 2 + i).pu).socket_index
                for i in range(2)
            }
            assert len(socks) == 1

    def test_backend_inferred_from_tpp(self):
        assert make_program(threads=2).backend.mode == "processes"
        assert (
            make_program(threads=4, nodes=1, threads_per_node=4,
                         threads_per_process=2).backend.mode
            == "pthreads"
        )

    def test_unknown_binding_rejected(self):
        with pytest.raises(UpcError, match="binding"):
            make_program(threads=2, binding="diagonal")


class TestBarrier:
    def test_all_threads_synchronize(self):
        prog = make_program(threads=4)

        def main(upc):
            yield from upc.compute(upc.MYTHREAD * 1e-3)
            yield from upc.barrier()
            return upc.wtime()

        res = prog.run(main)
        assert len(set(res.returns)) == 1
        assert res.returns[0] >= 3e-3

    def test_barrier_cost_grows_with_nodes(self):
        one = make_program(threads=2, nodes=1, threads_per_node=2)
        four = make_program(threads=4, nodes=4, threads_per_node=1)
        assert four.barrier_cost() > one.barrier_cost()


class TestCharging:
    def test_compute_advances_clock(self):
        prog = make_program(threads=1)

        def main(upc):
            yield from upc.compute(2.5e-3)
            return upc.wtime()

        assert prog.run(main).returns[0] == pytest.approx(2.5e-3)

    def test_compute_flops(self):
        prog = make_program(threads=1)
        rate = prog.preset.memory.core_flops

        def main(upc):
            yield from upc.compute_flops(rate, efficiency=1.0)
            return upc.wtime()

        assert prog.run(main).returns[0] == pytest.approx(1.0)

    def test_local_stream_charges_bandwidth(self):
        prog = make_program(threads=1)
        mem = prog.preset.memory

        def main(upc):
            # one core is port-limited: core_stream_bw bytes take 1 s
            yield from upc.local_stream(mem.core_stream_bw, 0)
            return upc.wtime()

        assert prog.run(main).returns[0] == pytest.approx(1.0, rel=0.01)

    def test_charge_shared_accesses(self):
        prog = make_program(threads=1)
        per = prog.preset.memory.pointer_translation_time

        def main(upc):
            yield from upc.charge_shared_accesses(1000)
            return upc.wtime()

        assert prog.run(main).returns[0] == pytest.approx(1000 * per)


class TestMemops:
    def test_memput_between_nodes(self):
        prog = make_program(threads=2, nodes=2, threads_per_node=1)

        def main(upc):
            if upc.MYTHREAD == 0:
                yield from upc.memput(1, 1 << 20)
            yield from upc.barrier()
            return upc.wtime()

        res = prog.run(main)
        assert res.elapsed >= prog.net_params.message_time(1 << 20)

    def test_memput_nb_overlaps(self):
        prog = make_program(threads=2, nodes=2, threads_per_node=1)

        def main(upc):
            if upc.MYTHREAD == 0:
                h = upc.memput_nb(1, 1 << 20)
                yield from upc.compute(1.0)
                yield from h.wait()
            else:
                yield from upc.compute(0.0)
            return upc.wtime()

        res = prog.run(main)
        assert res.returns[0] == pytest.approx(1.0, rel=0.05)

    def test_can_cast_same_node_with_pshm(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            yield from upc.compute(0.0)
            return [upc.can_cast(t) for t in range(4)]

        res = prog.run(main)
        assert res.returns[0] == [True, True, False, False]


class TestCollectiveGate:
    def test_all_alloc_returns_same_array(self):
        prog = make_program(threads=4)

        def main(upc):
            arr = yield from upc.all_alloc(100, dtype="f8", blocksize=5)
            return id(arr)

        res = prog.run(main)
        assert len(set(res.returns)) == 1

    def test_two_sequential_allocs(self):
        prog = make_program(threads=2)

        def main(upc):
            a = yield from upc.all_alloc(10)
            b = yield from upc.all_alloc(20)
            return (a.nelems, b.nelems, a is b)

        res = prog.run(main)
        assert res.returns == [(10, 20, False)] * 2


class TestRng:
    def test_per_thread_rng_deterministic_and_distinct(self):
        prog1 = make_program(threads=2, seed=7)
        prog2 = make_program(threads=2, seed=7)

        def main(upc):
            yield from upc.compute(0.0)
            return upc.rng.random()

        r1, r2 = prog1.run(main).returns, prog2.run(main).returns
        assert r1 == r2
        assert r1[0] != r1[1]
