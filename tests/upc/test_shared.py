"""Unit and property tests for shared arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UpcError
from repro.upc.shared import SharedArray
from tests.upc.conftest import make_program


def make_array(prog, nelems=24, blocksize=None, backing="real", dtype=None):
    return SharedArray(prog, nelems=nelems, dtype=dtype, blocksize=blocksize,
                       backing=backing)


class TestLayout:
    def test_default_is_cyclic(self):
        prog = make_program(threads=4)
        arr = make_array(prog, nelems=8)
        assert [arr.owner(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_distribution(self):
        prog = make_program(threads=4)
        arr = make_array(prog, nelems=8, blocksize="block")
        assert arr.blocksize == 2
        assert [arr.owner(i) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_cyclic(self):
        prog = make_program(threads=2)
        arr = make_array(prog, nelems=8, blocksize=2)
        assert [arr.owner(i) for i in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_local_size_sums_to_total(self):
        prog = make_program(threads=4)
        arr = make_array(prog, nelems=23, blocksize=3)
        assert sum(arr.local_size(t) for t in range(4)) == 23

    def test_local_indices_match_owner(self):
        prog = make_program(threads=4)
        arr = make_array(prog, nelems=23, blocksize=3)
        for t in range(4):
            idx = arr.local_indices(t)
            assert all(arr.owner(int(i)) == t for i in idx)
            assert len(idx) == arr.local_size(t)

    def test_out_of_range_rejected(self):
        prog = make_program(threads=2)
        arr = make_array(prog, nelems=4)
        with pytest.raises(UpcError, match="out of range"):
            arr.owner(4)

    def test_bad_params_rejected(self):
        prog = make_program(threads=2)
        with pytest.raises(UpcError):
            make_array(prog, nelems=0)
        with pytest.raises(UpcError):
            make_array(prog, blocksize=0)
        with pytest.raises(UpcError):
            make_array(prog, backing="papier")

    @given(
        nelems=st.integers(1, 200),
        blocksize=st.integers(1, 16),
        threads=st.sampled_from([1, 2, 3, 4]),
    )
    @settings(max_examples=50, deadline=None)
    def test_layout_partition_property(self, nelems, blocksize, threads):
        """local_size/local_indices partition the array exactly."""
        prog = make_program(threads=threads, nodes=2)
        arr = SharedArray(prog, nelems=nelems, blocksize=blocksize, backing="virtual")
        all_idx = np.concatenate([arr.local_indices(t) for t in range(threads)])
        assert sorted(all_idx.tolist()) == list(range(nelems))
        assert sum(arr.local_size(t) for t in range(threads)) == nelems


class TestAffinityRuns:
    def test_runs_cover_range(self):
        prog = make_program(threads=4)
        arr = make_array(prog, nelems=20, blocksize=3)
        runs = list(arr.affinity_runs(2, 15))
        covered = []
        for owner, start, length in runs:
            assert all(arr.owner(i) == owner for i in range(start, start + length))
            covered.extend(range(start, start + length))
        assert covered == list(range(2, 17))

    def test_empty_run(self):
        prog = make_program(threads=2)
        arr = make_array(prog)
        assert list(arr.affinity_runs(0, 0)) == []

    def test_negative_count_rejected(self):
        prog = make_program(threads=2)
        arr = make_array(prog)
        with pytest.raises(UpcError):
            list(arr.affinity_runs(0, -1))

    @given(
        nelems=st.integers(1, 100),
        blocksize=st.integers(1, 8),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_runs_are_maximal_and_exact(self, nelems, blocksize, data):
        prog = make_program(threads=3, nodes=2)
        arr = SharedArray(prog, nelems=nelems, blocksize=blocksize, backing="virtual")
        start = data.draw(st.integers(0, nelems - 1))
        count = data.draw(st.integers(0, nelems - start))
        runs = list(arr.affinity_runs(start, count))
        assert sum(r[2] for r in runs) == count
        pos = start
        for owner, s, ln in runs:
            assert s == pos
            pos += ln


class TestData:
    def test_real_backing_read_write(self):
        prog = make_program(threads=2)
        arr = make_array(prog, nelems=10)
        arr[3] = 7.5
        assert arr[3] == 7.5
        assert arr.view().shape == (10,)

    def test_virtual_backing_has_no_data(self):
        prog = make_program(threads=2)
        arr = make_array(prog, backing="virtual")
        with pytest.raises(UpcError, match="virtual"):
            arr.view()
        with pytest.raises(UpcError):
            arr[0]

    def test_dtype_respected(self):
        prog = make_program(threads=2)
        arr = make_array(prog, dtype=np.complex128)
        assert arr.itemsize == 16
        assert arr.nbytes == 24 * 16


class TestCostedOps:
    def test_get_block_returns_data_and_takes_time(self):
        prog = make_program(threads=4)
        arrs = {}

        def main(upc):
            arr = yield from upc.all_alloc(16, blocksize="block")
            if upc.MYTHREAD == 0:
                arr[:] = np.arange(16.0)
            yield from upc.barrier()
            data = yield from arr.get_block(upc, 2, 10)
            return data.tolist()

        res = prog.run(main)
        assert res.returns[0] == list(np.arange(2.0, 12.0))
        assert res.elapsed > 0

    def test_put_block_writes_data(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(8, blocksize="block")
            if upc.MYTHREAD == 1:
                yield from arr.put_block(upc, 0, np.full(8, 3.0))
            yield from upc.barrier()
            return arr[0], arr[7]

        res = prog.run(main)
        assert res.returns[0] == (3.0, 3.0)

    def test_elem_ops_roundtrip(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(4)
            if upc.MYTHREAD == 0:
                yield from arr.write_elem(upc, 1, 9.0)  # owned by thread 1
            yield from upc.barrier()
            v = yield from arr.read_elem(upc, 1)
            return v

        res = prog.run(main)
        assert res.returns == [9.0, 9.0]

    def test_put_block_rejects_scalar_data(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(8)
            yield from arr.put_block(upc, 0, 8)  # value or count? neither.

        with pytest.raises(Exception, match="scalar"):
            prog.run(main)

    def test_put_block_count_must_match_data(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(8)
            yield from arr.put_block(upc, 0, [1.0, 2.0], count=3)

        with pytest.raises(Exception, match="disagrees"):
            prog.run(main)

    def test_virtual_put_block_needs_explicit_count(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(8, backing="virtual")
            yield from arr.put_block(upc, 0, 8)

        with pytest.raises(Exception, match="explicit count="):
            prog.run(main)

    def test_virtual_put_block_with_count_charges_time(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(64, backing="virtual",
                                           blocksize="block")
            if upc.MYTHREAD == 0:
                t0 = upc.wtime()
                yield from arr.put_block(upc, 0, count=64)
                return upc.wtime() - t0
            yield from upc.compute(0.0)

        assert prog.run(main).returns[0] > 0

    def test_remote_block_slower_than_local(self):
        def timed(local):
            prog = make_program(threads=2, nodes=2, threads_per_node=1)

            def main(upc):
                arr = yield from upc.all_alloc(1 << 16, blocksize="block")
                yield from upc.barrier()
                if upc.MYTHREAD != 0:
                    return None
                start = upc.wtime()
                src = 0 if local else (1 << 15)
                yield from arr.get_block(upc, src, 1 << 15)
                return upc.wtime() - start

            return prog.run(main).returns[0]

        assert timed(local=False) > timed(local=True)
