"""PointerTable: build cost accounting and castability across topologies."""

import pytest

from repro.errors import UpcError
from repro.upc.pointers import PointerTable
from tests.upc.conftest import make_program


def build_table(prog):
    """Run PointerTable.build on every thread; return (tables, elapsed)."""
    def main(upc):
        t0 = upc.wtime()
        table = yield from PointerTable.build(upc)
        return table, upc.wtime() - t0

    res = prog.run(main)
    return [r[0] for r in res.returns], [r[1] for r in res.returns]


class TestBuildCost:
    def test_cost_is_one_round_per_reachable_peer(self):
        # two nodes x two threads: each thread reaches itself + 1 peer
        prog = make_program(threads=4, nodes=2, threads_per_node=2)
        rt = prog.backend.shm_roundtrip
        _tables, elapsed = build_table(prog)
        assert elapsed == [pytest.approx(2 * rt)] * 4

    def test_cost_scales_with_supernode_size(self):
        prog = make_program(threads=4, nodes=1, threads_per_node=4)
        rt = prog.backend.shm_roundtrip
        _tables, elapsed = build_table(prog)
        assert elapsed == [pytest.approx(4 * rt)] * 4

    def test_degenerate_single_thread(self):
        prog = make_program(threads=1, nodes=1, threads_per_node=1)
        rt = prog.backend.shm_roundtrip
        tables, elapsed = build_table(prog)
        assert elapsed == [pytest.approx(rt)]
        assert tables[0].castable(0) is True
        assert tables[0].reachable_peers() == []


class TestCastability:
    def test_multi_node_shape(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)
        tables, _ = build_table(prog)
        assert [tables[1].castable(t) for t in range(4)] == [
            True, True, False, False,
        ]
        assert tables[0].reachable_peers() == [1]
        assert tables[2].reachable_peers() == [3]

    def test_single_node_everyone_reachable(self):
        prog = make_program(threads=4, nodes=1, threads_per_node=4)
        tables, _ = build_table(prog)
        for t, table in enumerate(tables):
            assert all(table.castable(u) for u in range(4))
            assert table.reachable_peers() == [u for u in range(4) if u != t]

    def test_unknown_thread_raises(self):
        prog = make_program(threads=2)
        tables, _ = build_table(prog)
        with pytest.raises(UpcError, match="unknown to pointer table"):
            tables[0].castable(99)
