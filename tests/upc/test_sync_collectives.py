"""Unit tests for UPC locks, collectives, forall and thread groups."""

import operator

import pytest

from repro.errors import UpcError
from repro.upc import collectives, forall, groups
from tests.upc.conftest import make_program


class TestLocks:
    def test_mutual_exclusion(self):
        prog = make_program(threads=4)
        log = []

        def main(upc):
            lock = upc.lock("L")
            yield from lock.acquire(upc)
            log.append(("enter", upc.MYTHREAD, upc.wtime()))
            yield from upc.compute(1e-3)
            log.append(("exit", upc.MYTHREAD, upc.wtime()))
            yield from lock.release(upc)

        prog.run(main)
        # critical sections must not overlap
        intervals = []
        entered = {}
        for kind, tid, t in sorted(log, key=lambda e: e[2]):
            if kind == "enter":
                entered[tid] = t
            else:
                intervals.append((entered[tid], t))
        intervals.sort()
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1

    def test_release_by_non_holder_rejected(self):
        prog = make_program(threads=2)

        def main(upc):
            lock = upc.lock("L")
            if upc.MYTHREAD == 0:
                yield from lock.acquire(upc)
            yield from upc.barrier()
            if upc.MYTHREAD == 1:
                yield from lock.release(upc)

        with pytest.raises(Exception, match="releasing lock"):
            prog.run(main)

    def test_same_key_same_lock(self):
        prog = make_program(threads=2)

        def main(upc):
            yield from upc.compute(0.0)
            return id(upc.lock("x"))

        res = prog.run(main)
        assert res.returns[0] == res.returns[1]

    def test_remote_lock_costs_more_than_local(self):
        def acquire_time(same_node):
            prog = make_program(threads=2, nodes=1 if same_node else 2,
                                threads_per_node=2 if same_node else 1)

            def main(upc):
                lock = upc.lock("L", affinity_thread=0)
                if upc.MYTHREAD == 1:
                    t0 = upc.wtime()
                    yield from lock.acquire(upc)
                    dt = upc.wtime() - t0
                    yield from lock.release(upc)
                    return dt
                yield from upc.compute(0.0)

            return prog.run(main).returns[1]

        assert acquire_time(same_node=False) > acquire_time(same_node=True)

    def test_bad_affinity_rejected(self):
        prog = make_program(threads=2)
        with pytest.raises(UpcError):
            prog.get_lock("bad", affinity_thread=9)


class TestBroadcast:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 4, 7, 8])
    def test_value_reaches_everyone(self, nthreads):
        prog = make_program(threads=nthreads, nodes=2)

        def main(upc):
            val = upc.MYTHREAD * 100 if upc.MYTHREAD == 0 else None
            out = yield from collectives.broadcast(
                upc, upc.program.world, 64, root_rank=0, value=val
            )
            return out

        assert prog.run(main).returns == [0] * nthreads

    def test_nonzero_root(self):
        prog = make_program(threads=4)

        def main(upc):
            val = "payload" if upc.MYTHREAD == 2 else None
            out = yield from collectives.broadcast(
                upc, upc.program.world, 8, root_rank=2, value=val
            )
            return out

        assert prog.run(main).returns == ["payload"] * 4

    def test_bad_root_rejected(self):
        prog = make_program(threads=2)

        def main(upc):
            yield from collectives.broadcast(upc, upc.program.world, 8, root_rank=5)

        with pytest.raises(Exception, match="root rank"):
            prog.run(main)

    def test_repeated_broadcasts(self):
        prog = make_program(threads=4)

        def main(upc):
            outs = []
            for k in range(3):
                v = k if upc.MYTHREAD == 0 else None
                out = yield from collectives.broadcast(
                    upc, upc.program.world, 8, value=v
                )
                outs.append(out)
            return outs

        assert prog.run(main).returns == [[0, 1, 2]] * 4


class TestReduce:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 5, 8])
    def test_sum_reduce(self, nthreads):
        prog = make_program(threads=nthreads, nodes=2)

        def main(upc):
            out = yield from collectives.reduce(
                upc, upc.program.world, upc.MYTHREAD + 1, operator.add
            )
            return out

        res = prog.run(main)
        expected = nthreads * (nthreads + 1) // 2
        assert res.returns[0] == expected
        assert all(r is None for r in res.returns[1:])

    def test_allreduce_everyone_gets_result(self):
        prog = make_program(threads=4)

        def main(upc):
            out = yield from collectives.allreduce(
                upc, upc.program.world, upc.MYTHREAD, max
            )
            return out

        assert prog.run(main).returns == [3, 3, 3, 3]


class TestExchange:
    @pytest.mark.parametrize("asynchronous", [False, True])
    def test_exchange_completes(self, asynchronous):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            yield from collectives.exchange(
                upc, upc.program.world, 1 << 12, asynchronous=asynchronous
            )
            return upc.wtime()

        res = prog.run(main)
        assert len(set(res.returns)) == 1  # closing barrier aligned everyone
        puts = res.stats.get_count("gasnet.put")
        assert puts == 4 * 3

    def test_async_no_slower_than_blocking(self):
        def elapsed(asynchronous):
            prog = make_program(threads=4, nodes=2, threads_per_node=2)

            def main(upc):
                yield from collectives.exchange(
                    upc, upc.program.world, 1 << 16, asynchronous=asynchronous
                )

            return prog.run(main).elapsed

        assert elapsed(True) <= elapsed(False) * 1.01


class TestGatherScatter:
    def test_gather_counts_puts(self):
        prog = make_program(threads=4)

        def main(upc):
            yield from collectives.gather(upc, upc.program.world, 128)

        res = prog.run(main)
        assert res.stats.get_count("gasnet.put") == 3

    def test_scatter_counts_puts(self):
        prog = make_program(threads=4)

        def main(upc):
            yield from collectives.scatter(upc, upc.program.world, 128)

        res = prog.run(main)
        assert res.stats.get_count("gasnet.put") == 3


class TestForall:
    def test_round_robin_default(self):
        prog = make_program(threads=3)

        def main(upc):
            yield from upc.compute(0.0)
            return list(forall.indices(upc, 0, 10))

        res = prog.run(main)
        assert res.returns[0] == [0, 3, 6, 9]
        assert res.returns[1] == [1, 4, 7]

    def test_partition_is_exact(self):
        prog = make_program(threads=4)

        def main(upc):
            yield from upc.compute(0.0)
            return list(forall.indices(upc, 0, 21))

        res = prog.run(main)
        merged = sorted(i for r in res.returns for i in r)
        assert merged == list(range(21))

    def test_array_affinity(self):
        prog = make_program(threads=2)

        def main(upc):
            arr = yield from upc.all_alloc(8, blocksize=2)
            return list(forall.indices(upc, 0, 8, affinity=arr))

        res = prog.run(main)
        assert res.returns[0] == [0, 1, 4, 5]

    def test_fixed_thread_affinity(self):
        prog = make_program(threads=2)

        def main(upc):
            yield from upc.compute(0.0)
            return list(forall.indices(upc, 0, 4, affinity=1))

        res = prog.run(main)
        assert res.returns[0] == []
        assert res.returns[1] == [0, 1, 2, 3]

    def test_callable_affinity(self):
        prog = make_program(threads=2)

        def main(upc):
            yield from upc.compute(0.0)
            return list(forall.indices(upc, 0, 6, affinity=lambda i: (i // 3) % 2))

        res = prog.run(main)
        assert res.returns[0] == [0, 1, 2]
        assert res.returns[1] == [3, 4, 5]

    def test_bad_step_rejected(self):
        prog = make_program(threads=1)

        def main(upc):
            yield from upc.compute(0.0)
            return list(forall.indices(upc, 0, 4, step=0))

        with pytest.raises(Exception, match="step"):
            prog.run(main)


class TestThreadGroups:
    def test_shared_memory_group_is_node(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            g = yield from groups.shared_memory_group(upc)
            return (g.members, g.is_shared_memory, g.rank)

        res = prog.run(main)
        assert res.returns[0] == ((0, 1), True, 0)
        assert res.returns[3] == ((2, 3), True, 1)

    def test_socket_group(self):
        prog = make_program(threads=4, nodes=1, threads_per_node=4)

        def main(upc):
            g = yield from groups.socket_group(upc)
            return g.members

        res = prog.run(main)
        # generic node: 2 sockets x 2 cores; compact binding round-robins
        # sockets (numactl-style), so even threads share socket 0
        assert res.returns[0] == (0, 2)
        assert res.returns[1] == (1, 3)

    def test_groups_can_overlap(self):
        prog = make_program(threads=4, nodes=1, threads_per_node=4)

        def main(upc):
            node_g = yield from groups.node_group(upc)
            sock_g = yield from groups.socket_group(upc)
            return (node_g.members, sock_g.members)

        res = prog.run(main)
        assert res.returns[0][0] == (0, 1, 2, 3)
        assert res.returns[0][1] == (0, 2)

    def test_custom_split_by_parity(self):
        prog = make_program(threads=4)

        def main(upc):
            g = yield from groups.split(upc, color=upc.MYTHREAD % 2, build_table=False)
            return g.members

        res = prog.run(main)
        assert res.returns[0] == (0, 2)
        assert res.returns[1] == (1, 3)

    def test_group_barrier(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            g = yield from groups.shared_memory_group(upc, build_table=False)
            yield from upc.compute(upc.MYTHREAD * 1e-3)
            yield from g.barrier()
            return upc.wtime()

        res = prog.run(main)
        assert res.returns[0] == res.returns[1]
        assert res.returns[2] == res.returns[3]

    def test_pointer_table_built(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            g = yield from groups.shared_memory_group(upc)
            return g.pointer_table.reachable_peers()

        res = prog.run(main)
        assert res.returns[0] == [1]

    def test_peers_excludes_self(self):
        prog = make_program(threads=4, nodes=2, threads_per_node=2)

        def main(upc):
            g = yield from groups.shared_memory_group(upc, build_table=False)
            return g.peers()

        res = prog.run(main)
        assert res.returns[0] == (1,)
