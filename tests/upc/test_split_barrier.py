"""Unit tests for the split-phase barrier (upc_notify / upc_wait)."""

import pytest

from repro.errors import UpcError
from repro.sim import Simulator
from repro.upc.sync import SplitPhaseBarrier
from tests.upc.conftest import make_program


@pytest.fixture
def sim():
    return Simulator()


class TestSplitPhaseBarrier:
    def test_bad_parties(self, sim):
        with pytest.raises(UpcError):
            SplitPhaseBarrier(sim, 0)

    def test_thread_out_of_range(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        with pytest.raises(UpcError, match="out of range"):
            bar.notify(2)

    def test_wait_without_notify_rejected(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        with pytest.raises(UpcError, match="without"):
            bar.wait(0)

    def test_double_notify_rejected(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        bar.notify(0)
        with pytest.raises(UpcError, match="before matching"):
            bar.notify(0)

    def test_release_on_last_notify(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        bar.notify(0)
        ev = bar.wait(0)
        assert not ev.done
        bar.notify(1)
        assert ev.done

    def test_late_waiter_passes_through(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        bar.notify(0)
        bar.notify(1)
        assert bar.wait(0).done
        assert bar.wait(1).done

    def test_phases_are_independent(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        # phase 0
        bar.notify(0)
        bar.notify(1)
        bar.wait(0)
        bar.wait(1)
        # phase 1: thread 0 races ahead
        bar.notify(0)
        ev = bar.wait(0)
        assert not ev.done
        bar.notify(1)
        assert ev.done and ev.value == 1


class TestUpcNotifyWait:
    def test_compute_hides_barrier_latency(self):
        """Work placed between notify and wait overlaps the stragglers."""
        prog = make_program(threads=4)

        def main(upc):
            # thread 3 arrives very late
            if upc.MYTHREAD == 3:
                yield from upc.compute(10e-3)
            yield from upc.barrier_notify()
            yield from upc.compute(10e-3)  # everyone's useful work
            yield from upc.barrier_wait()
            return upc.wtime()

        res = prog.run(main)
        # the early threads' 10ms compute ran *during* thread 3's delay,
        # so the whole job ends ~20ms, not ~30ms
        assert max(res.returns) < 25e-3

    def test_blocking_barrier_cannot_hide_it(self):
        prog = make_program(threads=4)

        def main(upc):
            if upc.MYTHREAD == 3:
                yield from upc.compute(10e-3)
            yield from upc.barrier()
            yield from upc.compute(10e-3)
            return upc.wtime()

        res = prog.run(main)
        assert max(res.returns) >= 20e-3 - 1e-6

    def test_repeated_split_barriers(self):
        prog = make_program(threads=3)

        def main(upc):
            for _ in range(5):
                yield from upc.barrier_notify()
                yield from upc.compute(1e-4)
                yield from upc.barrier_wait()
            return upc.wtime()

        res = prog.run(main)
        assert len(set(res.returns)) <= 2  # all aligned within barrier costs

    def test_mismatched_use_fails_program(self):
        prog = make_program(threads=2)

        def main(upc):
            yield from upc.barrier_wait()  # no notify first

        with pytest.raises(Exception, match="without"):
            prog.run(main)


class TestSplitPhaseFailStop:
    """mark_dead: crashed threads must not strand a split-phase pair."""

    def test_dead_thread_that_never_notified(self, sim):
        bar = SplitPhaseBarrier(sim, 3)
        bar.notify(0)
        bar.notify(1)
        assert not bar.wait(0).done
        assert bar.mark_dead(2)
        assert bar.wait(1).done  # phase released by the drop

    def test_dead_thread_that_notified_current_phase(self, sim):
        bar = SplitPhaseBarrier(sim, 3)
        bar.notify(0)  # then dies while others compute
        bar.mark_dead(0)
        bar.notify(1)
        bar.notify(2)
        assert bar.wait(1).done  # 0's withdrawn notify was not counted

    def test_dead_thread_notify_from_released_phase_not_withdrawn(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        bar.notify(0)
        bar.notify(1)  # phase 0 releases here; both are "expecting wait"
        bar.mark_dead(1)
        assert bar.wait(0).done
        # next phase is thread 0 alone
        bar.notify(0)
        assert bar.wait(0).done

    def test_mark_dead_idempotent(self, sim):
        bar = SplitPhaseBarrier(sim, 3)
        assert bar.mark_dead(2)
        assert not bar.mark_dead(2)

    def test_program_crash_mid_barrier_releases_survivors(self):
        # End-to-end: half the job dies while everyone is blocked in
        # upc_barrier; the crash handler drops the dead seats and the
        # survivors cross instead of deadlocking.
        prog = make_program(threads=4, nodes=2, threads_per_node=2,
                            faults="crash:node=1,at=5e-5")

        def main(upc):
            # survivors are still computing when the crash fires, so the
            # dead threads are blocked *inside* the barrier at that point
            yield from upc.compute(1e-4 if upc.MYTHREAD < 2 else 1e-6)
            yield from upc.barrier()  # threads 2,3 die waiting here
            return upc.MYTHREAD

        res = prog.run(main)
        assert res.returns[0] == 0 and res.returns[1] == 1
        assert res.returns[2] is None and res.returns[3] is None
