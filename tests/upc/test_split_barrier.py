"""Unit tests for the split-phase barrier (upc_notify / upc_wait)."""

import pytest

from repro.errors import UpcError
from repro.sim import Simulator
from repro.upc.sync import SplitPhaseBarrier
from tests.upc.conftest import make_program


@pytest.fixture
def sim():
    return Simulator()


class TestSplitPhaseBarrier:
    def test_bad_parties(self, sim):
        with pytest.raises(UpcError):
            SplitPhaseBarrier(sim, 0)

    def test_thread_out_of_range(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        with pytest.raises(UpcError, match="out of range"):
            bar.notify(2)

    def test_wait_without_notify_rejected(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        with pytest.raises(UpcError, match="without"):
            bar.wait(0)

    def test_double_notify_rejected(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        bar.notify(0)
        with pytest.raises(UpcError, match="before matching"):
            bar.notify(0)

    def test_release_on_last_notify(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        bar.notify(0)
        ev = bar.wait(0)
        assert not ev.done
        bar.notify(1)
        assert ev.done

    def test_late_waiter_passes_through(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        bar.notify(0)
        bar.notify(1)
        assert bar.wait(0).done
        assert bar.wait(1).done

    def test_phases_are_independent(self, sim):
        bar = SplitPhaseBarrier(sim, 2)
        # phase 0
        bar.notify(0)
        bar.notify(1)
        bar.wait(0)
        bar.wait(1)
        # phase 1: thread 0 races ahead
        bar.notify(0)
        ev = bar.wait(0)
        assert not ev.done
        bar.notify(1)
        assert ev.done and ev.value == 1


class TestUpcNotifyWait:
    def test_compute_hides_barrier_latency(self):
        """Work placed between notify and wait overlaps the stragglers."""
        prog = make_program(threads=4)

        def main(upc):
            # thread 3 arrives very late
            if upc.MYTHREAD == 3:
                yield from upc.compute(10e-3)
            yield from upc.barrier_notify()
            yield from upc.compute(10e-3)  # everyone's useful work
            yield from upc.barrier_wait()
            return upc.wtime()

        res = prog.run(main)
        # the early threads' 10ms compute ran *during* thread 3's delay,
        # so the whole job ends ~20ms, not ~30ms
        assert max(res.returns) < 25e-3

    def test_blocking_barrier_cannot_hide_it(self):
        prog = make_program(threads=4)

        def main(upc):
            if upc.MYTHREAD == 3:
                yield from upc.compute(10e-3)
            yield from upc.barrier()
            yield from upc.compute(10e-3)
            return upc.wtime()

        res = prog.run(main)
        assert max(res.returns) >= 20e-3 - 1e-6

    def test_repeated_split_barriers(self):
        prog = make_program(threads=3)

        def main(upc):
            for _ in range(5):
                yield from upc.barrier_notify()
                yield from upc.compute(1e-4)
                yield from upc.barrier_wait()
            return upc.wtime()

        res = prog.run(main)
        assert len(set(res.returns)) <= 2  # all aligned within barrier costs

    def test_mismatched_use_fails_program(self):
        prog = make_program(threads=2)

        def main(upc):
            yield from upc.barrier_wait()  # no notify first

        with pytest.raises(Exception, match="without"):
            prog.run(main)
