"""Unit tests for the simulated MPI layer."""

import operator

import pytest

from repro.errors import MpiError
from repro.machine.presets import generic_smp
from repro.mpi import MpiParams, MpiProgram, collectives


def make_mpi(ranks=4, nodes=2, ranks_per_node=None, **kwargs):
    preset = generic_smp(nodes=nodes, sockets=2, cores_per_socket=2)
    return MpiProgram(preset, ranks=ranks, ranks_per_node=ranks_per_node, **kwargs)


class TestLaunch:
    def test_rank_identity(self):
        prog = make_mpi(ranks=4)

        def main(r):
            yield from r.compute(1e-6)
            return (r.rank, r.size)

        res = prog.run(main)
        assert res.returns == [(i, 4) for i in range(4)]

    def test_bad_rank_count(self):
        with pytest.raises(MpiError):
            make_mpi(ranks=0)

    def test_deadlock_detected(self):
        prog = make_mpi(ranks=2)

        def main(r):
            if r.rank == 0:
                yield from r.recv(1)  # never sent
            else:
                yield from r.compute(0.0)

        with pytest.raises(MpiError, match="deadlock"):
            prog.run(main)


class TestPointToPoint:
    def test_eager_roundtrip(self):
        prog = make_mpi(ranks=2, nodes=2, ranks_per_node=1)

        def main(r):
            if r.rank == 0:
                yield from r.send(1, 1024)
                return None
            n = yield from r.recv(0)
            return n

        res = prog.run(main)
        assert res.returns[1] == 1024
        assert res.stats.get_count("mpi.sends") == 1

    def test_rendezvous_roundtrip(self):
        prog = make_mpi(ranks=2, nodes=2, ranks_per_node=1)
        big = prog.params.eager_threshold * 4

        def main(r):
            if r.rank == 0:
                t0 = r.wtime()
                yield from r.send(1, big)
                return r.wtime() - t0
            yield from r.compute(5e-3)  # receiver arrives late
            n = yield from r.recv(0)
            return n

        res = prog.run(main)
        # rendezvous sender blocks for the late receiver
        assert res.returns[0] >= 5e-3
        assert res.returns[1] == big

    def test_eager_sender_does_not_block_on_receiver(self):
        prog = make_mpi(ranks=2, nodes=2, ranks_per_node=1)

        def main(r):
            if r.rank == 0:
                t0 = r.wtime()
                yield from r.send(1, 1024)
                return r.wtime() - t0
            yield from r.compute(10e-3)
            yield from r.recv(0)
            return None

        res = prog.run(main)
        assert res.returns[0] < 1e-3

    def test_messages_match_fifo_per_tag(self):
        prog = make_mpi(ranks=2, nodes=1, ranks_per_node=2)

        def main(r):
            if r.rank == 0:
                yield from r.send(1, 100, tag=7)
                yield from r.send(1, 200, tag=7)
                return None
            a = yield from r.recv(0, tag=7)
            b = yield from r.recv(0, tag=7)
            return (a, b)

        res = prog.run(main)
        assert res.returns[1] == (100, 200)

    def test_tags_do_not_cross_match(self):
        prog = make_mpi(ranks=2, nodes=1, ranks_per_node=2)

        def main(r):
            if r.rank == 0:
                yield from r.send(1, 111, tag=1)
                yield from r.send(1, 222, tag=2)
                return None
            b = yield from r.recv(0, tag=2)
            a = yield from r.recv(0, tag=1)
            return (a, b)

        res = prog.run(main)
        assert res.returns[1] == (111, 222)

    def test_invalid_peer_rejected(self):
        prog = make_mpi(ranks=2)

        def main(r):
            yield from r.send(5, 8)

        with pytest.raises(Exception, match="invalid rank"):
            prog.run(main)

    def test_sendrecv_bidirectional_overlap(self):
        """sendrecv between two ranks costs ~one message, not two."""
        big = 1 << 20

        def elapsed(use_sendrecv):
            prog = make_mpi(ranks=2, nodes=2, ranks_per_node=1)

            def main(r):
                other = 1 - r.rank
                if use_sendrecv:
                    yield from r.sendrecv(other, big, other)
                else:
                    if r.rank == 0:
                        yield from r.send(other, big)
                        yield from r.recv(other)
                    else:
                        yield from r.recv(other)
                        yield from r.send(other, big)
                return r.wtime()

            return max(prog.run(main).returns)

        assert elapsed(True) < elapsed(False)


class TestBarrier:
    def test_barrier_synchronizes(self):
        prog = make_mpi(ranks=4)

        def main(r):
            yield from r.compute(r.rank * 1e-3)
            yield from r.barrier()
            return r.wtime()

        res = prog.run(main)
        assert len(set(res.returns)) == 1


class TestCollectives:
    @pytest.mark.parametrize("ranks", [2, 4, 8])
    def test_alltoall_completes(self, ranks):
        prog = make_mpi(ranks=ranks, nodes=2)

        def main(r):
            yield from collectives.alltoall(r, 4096)
            return r.wtime()

        res = prog.run(main)
        assert res.stats.get_count("mpi.sends") == ranks * (ranks - 1)

    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 6, 8])
    def test_allreduce_sum(self, ranks):
        prog = make_mpi(ranks=ranks, nodes=2)

        def main(r):
            out = yield from collectives.allreduce(r, r.rank + 1, operator.add)
            return out

        res = prog.run(main)
        expected = ranks * (ranks + 1) // 2
        assert res.returns == [expected] * ranks

    @pytest.mark.parametrize("ranks,root", [(4, 0), (4, 2), (5, 3), (8, 7)])
    def test_bcast_value(self, ranks, root):
        prog = make_mpi(ranks=ranks, nodes=2)

        def main(r):
            v = "gold" if r.rank == root else None
            out = yield from collectives.bcast(r, 64, root=root, value=v)
            return out

        assert prog.run(main).returns == ["gold"] * ranks

    def test_bcast_bad_root(self):
        prog = make_mpi(ranks=2)

        def main(r):
            yield from collectives.bcast(r, 8, root=9)

        with pytest.raises(Exception, match="out of range"):
            prog.run(main)

    def test_repeated_allreduce(self):
        prog = make_mpi(ranks=4)

        def main(r):
            a = yield from collectives.allreduce(r, 1, operator.add)
            b = yield from collectives.allreduce(r, r.rank, max)
            return (a, b)

        assert prog.run(main).returns == [(4, 3)] * 4
