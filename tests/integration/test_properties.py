"""Property-based invariants across the stack (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SharedBandwidth, SimBarrier, Simulator
from repro.upc import UpcProgram, collectives
from repro.machine.presets import generic_smp


class TestBandwidthConservation:
    @given(
        transfers=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),    # start time
                st.floats(min_value=1.0, max_value=1e6),    # bytes
            ),
            min_size=1, max_size=12,
        ),
        rate=st.floats(min_value=10.0, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, transfers, rate):
        """A PS pipe never delivers faster than rate and never loses work:
        last completion >= total_bytes/rate + first_start, and every
        transfer completes."""
        sim = Simulator()
        pipe = SharedBandwidth(sim, rate=rate)
        done = []

        def proc(sim, pipe, start, nbytes):
            yield sim.delay(start)
            yield pipe.transfer(nbytes)
            done.append(sim.now)

        for start, nbytes in transfers:
            sim.spawn(proc(sim, pipe, start, nbytes))
        sim.run()
        sim.raise_failures()
        assert len(done) == len(transfers)
        total = sum(n for _s, n in transfers)
        first = min(s for s, _n in transfers)
        assert max(done) >= first + total / rate * (1 - 1e-9)

    @given(
        nbytes=st.floats(min_value=1.0, max_value=1e9),
        n_streams=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_equal_streams_finish_together(self, nbytes, n_streams):
        sim = Simulator()
        pipe = SharedBandwidth(sim, rate=1e6)
        ends = []

        def proc(sim, pipe):
            yield pipe.transfer(nbytes)
            ends.append(sim.now)

        for _ in range(n_streams):
            sim.spawn(proc(sim, pipe))
        sim.run()
        assert max(ends) - min(ends) <= 1e-9 * max(ends)
        assert max(ends) == pytest.approx(n_streams * nbytes / 1e6, rel=1e-6)


class TestBarrierProperties:
    @given(
        parties=st.integers(min_value=1, max_value=12),
        rounds=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_barrier_generations_never_mix(self, parties, rounds, data):
        """No process observes a generation out of order, for arbitrary
        arrival skews."""
        sim = Simulator()
        bar = SimBarrier(sim, parties=parties)
        observed = {p: [] for p in range(parties)}
        delays = [
            [data.draw(st.floats(min_value=0.0, max_value=3.0)) for _ in range(rounds)]
            for _ in range(parties)
        ]

        def worker(sim, bar, p):
            for r in range(rounds):
                yield sim.delay(delays[p][r])
                gen = yield bar.arrive()
                observed[p].append(gen)

        for p in range(parties):
            sim.spawn(worker(sim, bar, p))
        sim.run()
        sim.raise_failures()
        for p in range(parties):
            assert observed[p] == list(range(rounds))


class TestCollectiveProperties:
    @given(
        nthreads=st.integers(min_value=1, max_value=8),
        values=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_allreduce_equals_python_reduce(self, nthreads, values):
        vals = [values.draw(st.integers(-1000, 1000)) for _ in range(nthreads)]
        prog = UpcProgram(generic_smp(nodes=2), threads=nthreads)

        def main(upc):
            out = yield from collectives.allreduce(
                upc, upc.program.world, vals[upc.MYTHREAD], lambda a, b: a + b
            )
            return out

        res = prog.run(main)
        assert res.returns == [sum(vals)] * nthreads

    @given(
        nthreads=st.integers(min_value=2, max_value=8),
        root=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_broadcast_from_any_root(self, nthreads, root):
        r = root.draw(st.integers(0, nthreads - 1))
        prog = UpcProgram(generic_smp(nodes=2), threads=nthreads)

        def main(upc):
            payload = ("gold", upc.MYTHREAD) if upc.MYTHREAD == r else None
            out = yield from collectives.broadcast(
                upc, upc.program.world, 32, root_rank=r, value=payload
            )
            return out

        res = prog.run(main)
        assert res.returns == [("gold", r)] * nthreads
