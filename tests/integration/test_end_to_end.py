"""Cross-module integration tests: whole programs through the full stack."""

import numpy as np
import pytest

from repro.apps.ft import run_ft
from repro.apps.uts import count_tree, run_uts, small_tree
from repro.machine.presets import lehman, pyramid
from repro.subthreads import OpenMP, ThreadSafety
from repro.upc import UpcProgram, collectives, forall, groups


class TestDeterminism:
    """Identical configurations must give bit-identical simulated results."""

    def test_ft_run_is_deterministic(self):
        a = run_ft("T", threads=4, threads_per_node=2, iterations=1)
        b = run_ft("T", threads=4, threads_per_node=2, iterations=1)
        assert a["elapsed_s"] == b["elapsed_s"]
        assert a["phases"] == b["phases"]
        assert a["checksums"] == b["checksums"]

    def test_uts_run_is_deterministic(self):
        kw = dict(tree=small_tree("tiny"), threads=8, threads_per_node=4)
        a = run_uts("local+diffusion", **kw)
        b = run_uts("local+diffusion", **kw)
        assert a == b


class TestWholeStackPrograms:
    def test_groups_plus_subthreads_plus_collectives(self):
        """The thesis's combined pattern (§4.4): sub-threads on the chip,
        a node-level thread group above them, a global reduction on top."""
        prog = UpcProgram(lehman(nodes=2), threads=4, threads_per_node=2,
                          binding="sockets")

        def main(upc):
            node_g = yield from groups.node_group(upc)
            omp = OpenMP(upc, num_threads=4, safety=ThreadSafety.FUNNELED)
            partial = []

            def body(st):
                yield from st.compute(1e-6)
                partial.append(st.index)

            yield from omp.parallel(body)
            yield from node_g.barrier()
            total = yield from collectives.allreduce(
                upc, upc.program.world, sum(partial), lambda a, b: a + b
            )
            return (node_g.members, total)

        res = prog.run(main)
        members, total = res.returns[0]
        assert members == (0, 1)
        # each of 4 threads contributed 0+1+2+3
        assert all(r[1] == 4 * 6 for r in res.returns)

    def test_shared_array_survives_mixed_traffic(self):
        """Concurrent forall writes + bulk reads keep data consistent."""
        prog = UpcProgram(lehman(nodes=2), threads=4, threads_per_node=2)
        N = 128

        def main(upc):
            A = yield from upc.all_alloc(N, blocksize=4)
            for i in forall.indices(upc, 0, N, affinity=A):
                A[i] = i * 1.5
            yield from upc.barrier()
            data = yield from A.get_block(upc, 0, N)
            return float(np.abs(data - np.arange(N) * 1.5).max())

        res = prog.run(main)
        assert all(err == 0.0 for err in res.returns)

    def test_uts_on_lehman_smt(self):
        """UTS over SMT hardware threads (2 per core) still conserves work."""
        tree = small_tree("tiny")
        r = run_uts("local", tree=tree, threads=32, threads_per_node=16,
                    preset=lehman(nodes=2), conduit="ib-qdr")
        assert r["tree_nodes"] == count_tree(tree)[0]

    def test_ft_iterations_accumulate_checksums(self):
        r = run_ft("T", threads=2, threads_per_node=2, iterations=3)
        assert len(r["checksums"]) == 3
        assert len({str(c) for c in r["checksums"]}) == 3  # all differ


class TestCrossPlatform:
    def test_same_program_both_platforms(self):
        """One FT config on both thesis machines: Pyramid (slower fabric,
        no SMT) must be slower than Lehman at equal thread counts."""
        le = run_ft("T", threads=4, threads_per_node=2,
                    preset=lehman(nodes=2), iterations=2)
        py = run_ft("T", threads=4, threads_per_node=2,
                    preset=pyramid(nodes=2), iterations=2)
        assert le["verified"] and py["verified"]
        assert py["elapsed_s"] > le["elapsed_s"]

    def test_conduit_override(self):
        """Running Pyramid's FT over its Ethernet fabric hurts comm time."""
        ib = run_ft("T", threads=4, threads_per_node=2,
                    preset=pyramid(nodes=2), conduit="ib-ddr", iterations=2)
        eth = run_ft("T", threads=4, threads_per_node=2,
                     preset=pyramid(nodes=2), conduit="gige", iterations=2)
        assert eth["comm_s"] > 2 * ib["comm_s"]


class TestResourceAccounting:
    def test_exchange_moves_expected_bytes(self):
        """Fabric statistics account for every byte the exchange sends."""
        prog = UpcProgram(lehman(nodes=2), threads=4, threads_per_node=2)
        nbytes = 1 << 14

        def main(upc):
            yield from collectives.exchange(upc, upc.program.world, nbytes)

        res = prog.run(main)
        # 4 threads x 3 peers; intra-node pairs bypass the fabric (PSHM)
        total_pairs = 4 * 3
        bypassed = res.stats.get_count("gasnet.bypass")
        net_msgs = res.stats.get_count("net.messages")
        assert bypassed + net_msgs == total_pairs
        assert res.stats.get_sum("net.bytes") == pytest.approx(
            net_msgs * nbytes
        )

    def test_no_simulated_time_without_cost(self):
        """Pure data-plane operations don't advance the clock."""
        prog = UpcProgram(lehman(nodes=1), threads=1, threads_per_node=1)

        def main(upc):
            A = yield from upc.all_alloc(1000)
            A[:] = 1.0  # raw data write: free
            return upc.wtime()

        res = prog.run(main)
        assert res.returns[0] == 0.0
