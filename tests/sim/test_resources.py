"""Unit tests for Resource, Store and SharedBandwidth."""

import pytest

from repro.sim import Resource, SharedBandwidth, Simulator, Store
from repro.sim.engine import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_immediate_grant_when_free(self, sim):
        res = Resource(sim, capacity=1)
        ev = res.acquire()
        assert ev.done
        assert res.in_use == 1

    def test_fifo_ordering(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(sim, res, name, hold):
            yield res.acquire()
            order.append((name, sim.now))
            yield sim.delay(hold)
            res.release()

        sim.spawn(user(sim, res, "a", 2.0))
        sim.spawn(user(sim, res, "b", 1.0))
        sim.spawn(user(sim, res, "c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_capacity_two_allows_two_holders(self, sim):
        res = Resource(sim, capacity=2)
        starts = []

        def user(sim, res):
            yield res.acquire()
            starts.append(sim.now)
            yield sim.delay(1.0)
            res.release()

        for _ in range(4):
            sim.spawn(user(sim, res))
        sim.run()
        assert starts == [0.0, 0.0, 1.0, 1.0]

    def test_release_idle_rejected(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError, match="idle"):
            res.release()

    def test_cancelled_waiter_skipped(self, sim):
        res = Resource(sim, capacity=1)
        first = res.acquire()
        assert first.done
        waiter = res.acquire()
        waiter.cancel()
        third = res.acquire()
        res.release()
        sim.run()
        assert third.done
        assert res.in_use == 1

    def test_wait_time_statistics(self, sim):
        res = Resource(sim, capacity=1)

        def user(sim, res, hold):
            yield res.acquire()
            yield sim.delay(hold)
            res.release()

        sim.spawn(user(sim, res, 2.0))
        sim.spawn(user(sim, res, 2.0))
        sim.run()
        assert res.total_acquisitions == 2
        assert res.total_wait_time == pytest.approx(2.0)

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        ev = store.get()
        assert ev.done and ev.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter(sim, store):
            val = yield store.get()
            return (sim.now, val)

        p = sim.spawn(getter(sim, store))
        sim.schedule_at(3.0, store.put, "late")
        sim.run()
        assert p.result == (3.0, "late")

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2

    def test_try_get(self, sim):
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put(9)
        ok, item = store.try_get()
        assert ok and item == 9

    def test_len(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2

    def test_cancelled_getter_skipped(self, sim):
        store = Store(sim)
        g1 = store.get()
        g1.cancel()
        g2 = store.get()
        store.put("only")
        assert g2.done and g2.value == "only"


class TestSharedBandwidth:
    def test_single_transfer_time(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0)

        def proc(sim, pipe):
            yield pipe.transfer(500.0)
            return sim.now

        p = sim.spawn(proc(sim, pipe))
        sim.run()
        assert p.result == pytest.approx(5.0)

    def test_two_equal_transfers_share_rate(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0)
        ends = []

        def proc(sim, pipe):
            yield pipe.transfer(500.0)
            ends.append(sim.now)

        sim.spawn(proc(sim, pipe))
        sim.spawn(proc(sim, pipe))
        sim.run()
        # both progress at 50 B/s -> both finish at 10s
        assert ends == [pytest.approx(10.0), pytest.approx(10.0)]

    def test_late_arrival_slows_first(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0)
        ends = {}

        def proc(sim, pipe, name, start, nbytes):
            yield sim.delay(start)
            yield pipe.transfer(nbytes)
            ends[name] = sim.now

        # A: 1000 B at t=0. Alone until t=5 (500 B done). B arrives with
        # 250 B; both at 50 B/s. B done at t=10; A has 250 B left, alone
        # again at 100 B/s -> done at t=12.5.
        sim.spawn(proc(sim, pipe, "a", 0.0, 1000.0))
        sim.spawn(proc(sim, pipe, "b", 5.0, 250.0))
        sim.run()
        assert ends["b"] == pytest.approx(10.0)
        assert ends["a"] == pytest.approx(12.5)

    def test_per_stream_cap(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0, per_stream_rate=25.0)

        def proc(sim, pipe):
            yield pipe.transfer(100.0)
            return sim.now

        p = sim.spawn(proc(sim, pipe))
        sim.run()
        assert p.result == pytest.approx(4.0)  # capped at 25 B/s

    def test_zero_byte_transfer_completes(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0)

        def proc(sim, pipe):
            yield pipe.transfer(0.0)
            return sim.now

        p = sim.spawn(proc(sim, pipe))
        sim.run()
        assert p.result == pytest.approx(0.0)

    def test_negative_transfer_rejected(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0)
        with pytest.raises(ValueError):
            pipe.transfer(-1.0)

    def test_bad_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            SharedBandwidth(sim, rate=0.0)

    def test_fifo_mode_serializes(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0, fifo=True)
        ends = []

        def proc(sim, pipe):
            yield pipe.transfer(500.0)
            ends.append(sim.now)

        sim.spawn(proc(sim, pipe))
        sim.spawn(proc(sim, pipe))
        sim.run()
        assert ends == [pytest.approx(5.0), pytest.approx(10.0)]

    def test_statistics(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0)

        def proc(sim, pipe):
            yield pipe.transfer(200.0)

        sim.spawn(proc(sim, pipe))
        sim.spawn(proc(sim, pipe))
        sim.run()
        assert pipe.total_transfers == 2
        assert pipe.total_bytes == pytest.approx(400.0)
        assert pipe.busy_time == pytest.approx(4.0)

    def test_time_for_analytic(self, sim):
        pipe = SharedBandwidth(sim, rate=100.0, per_stream_rate=40.0)
        assert pipe.time_for(80.0) == pytest.approx(2.0)

    def test_many_staggered_transfers_conserve_bytes(self, sim):
        """Total bytes delivered never exceeds rate * elapsed (work conservation)."""
        pipe = SharedBandwidth(sim, rate=64.0)
        done_times = []

        def proc(sim, pipe, start, nbytes):
            yield sim.delay(start)
            yield pipe.transfer(nbytes)
            done_times.append(sim.now)

        sizes = [100.0, 37.0, 256.0, 8.0, 512.0, 64.0]
        starts = [0.0, 0.5, 1.0, 2.25, 3.0, 3.0]
        for st, nb in zip(starts, sizes):
            sim.spawn(proc(sim, pipe, st, nb))
        sim.run()
        total = sum(sizes)
        # the pipe started at t=0 and is never idle between 0 and last end
        assert max(done_times) >= total / 64.0
        assert pipe.busy_time <= max(done_times) + 1e-9
        assert pipe.total_bytes == pytest.approx(total)
