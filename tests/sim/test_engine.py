"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Delay,
    Event,
    ProcessFailure,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_empty_returns_now(self, sim):
        assert sim.run() == 0.0

    def test_schedule_at_orders_by_time(self, sim):
        order = []
        sim.schedule_at(2.0, order.append, "b")
        sim.schedule_at(1.0, order.append, "a")
        sim.schedule_at(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_broken_by_priority_then_fifo(self, sim):
        order = []
        sim.schedule_at(1.0, order.append, "first")
        sim.schedule_at(1.0, order.append, "second")
        sim.schedule_at(1.0, order.append, "urgent", priority=-1)
        sim.run()
        assert order == ["urgent", "first", "second"]

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule_at(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError, match="before now"):
            sim.run()
            sim.raise_failures()
        # the error escapes from run() because the callback raised directly
        # (callbacks are not processes); assert clock stopped at 5.0
        assert sim.now == 5.0

    def test_run_until_stops_clock(self, sim):
        fired = []
        sim.schedule_at(10.0, fired.append, 1)
        assert sim.run(until=4.0) == 4.0
        assert fired == []
        assert sim.run() == 10.0
        assert fired == [1]

    def test_run_until_beyond_last_event_advances_clock(self, sim):
        sim.schedule_at(1.0, lambda: None)
        assert sim.run(until=9.0) == 9.0

    def test_step_executes_one_event(self, sim):
        order = []
        sim.schedule_at(1.0, order.append, "a")
        sim.schedule_at(2.0, order.append, "b")
        assert sim.step() is True
        assert order == ["a"]
        assert sim.step() is True
        assert sim.step() is False


class TestProcesses:
    def test_plain_return_value(self, sim):
        def proc(sim):
            yield sim.delay(1.0)
            return 42

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.result == 42
        assert sim.now == 1.0

    def test_yield_bare_number_is_delay(self, sim):
        def proc(sim):
            yield 2.5
            return sim.now

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.result == 2.5

    def test_yield_from_composition(self, sim):
        def inner(sim):
            yield sim.delay(1.0)
            return "inner-done"

        def outer(sim):
            val = yield from inner(sim)
            yield sim.delay(1.0)
            return val

        p = sim.spawn(outer(sim))
        sim.run()
        assert p.result == "inner-done"
        assert sim.now == 2.0

    def test_join_other_process(self, sim):
        def worker(sim):
            yield sim.delay(3.0)
            return "payload"

        def boss(sim):
            w = sim.spawn(worker(sim))
            val = yield w
            return val

        p = sim.spawn(boss(sim))
        sim.run()
        assert p.result == "payload"

    def test_join_already_finished_process(self, sim):
        def worker(sim):
            yield sim.delay(1.0)
            return 7

        def boss(sim, w):
            yield sim.delay(5.0)
            val = yield w
            return val

        w = sim.spawn(worker(sim))
        p = sim.spawn(boss(sim, w))
        sim.run()
        assert p.result == 7
        assert sim.now == 5.0

    def test_failure_propagates_to_joiner(self, sim):
        def bad(sim):
            yield sim.delay(1.0)
            raise ValueError("boom")

        def boss(sim):
            try:
                yield sim.spawn(bad(sim))
            except ProcessFailure as e:
                return ("caught", str(e.__cause__))

        p = sim.spawn(boss(sim))
        sim.run()
        assert p.result == ("caught", "boom")

    def test_unjoined_failure_recorded(self, sim):
        def bad(sim):
            yield sim.delay(1.0)
            raise RuntimeError("lost")

        sim.spawn(bad(sim))
        sim.run()
        assert len(sim.failures) == 1
        with pytest.raises(ProcessFailure):
            sim.raise_failures()

    def test_result_before_done_raises(self, sim):
        def proc(sim):
            yield sim.delay(1.0)

        p = sim.spawn(proc(sim))
        with pytest.raises(SimulationError, match="not finished"):
            _ = p.result

    def test_spawn_non_generator_rejected(self, sim):
        def not_a_gen(sim):
            return 42

        with pytest.raises(TypeError, match="generator"):
            sim.spawn(not_a_gen(sim))

    def test_yield_garbage_fails_process(self, sim):
        def proc(sim):
            yield "nonsense"

        p = sim.spawn(proc(sim))
        sim.run()
        assert isinstance(p.exc, TypeError)

    def test_kill_stops_process(self, sim):
        ran = []

        def proc(sim):
            yield sim.delay(1.0)
            ran.append("mid")
            yield sim.delay(10.0)
            ran.append("end")

        p = sim.spawn(proc(sim))
        sim.run(until=1.5)
        p.kill()
        sim.run()
        assert ran == ["mid"]
        assert p.done

    def test_zero_delay_runs_in_order(self, sim):
        order = []

        def a(sim):
            order.append("a1")
            yield sim.delay(0.0)
            order.append("a2")

        def b(sim):
            order.append("b1")
            yield sim.delay(0.0)
            order.append("b2")

        sim.spawn(a(sim))
        sim.spawn(b(sim))
        sim.run()
        assert order == ["a1", "b1", "a2", "b2"]


class TestEvents:
    def test_succeed_wakes_waiter_with_value(self, sim):
        ev = sim.event()

        def waiter(sim, ev):
            val = yield ev
            return val

        p = sim.spawn(waiter(sim, ev))
        sim.schedule_at(2.0, ev.succeed, "hello")
        sim.run()
        assert p.result == "hello"
        assert sim.now == 2.0

    def test_fail_throws_into_waiter(self, sim):
        ev = sim.event()

        def waiter(sim, ev):
            try:
                yield ev
            except KeyError as e:
                return ("caught", e.args[0])

        p = sim.spawn(waiter(sim, ev))
        sim.schedule_at(1.0, ev.fail, KeyError("k"))
        sim.run()
        assert p.result == ("caught", "k")

    def test_double_succeed_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError, match="already"):
            ev.succeed(2)

    def test_wait_on_completed_event_is_immediate(self, sim):
        ev = sim.event()
        ev.succeed("early")

        def waiter(sim, ev):
            yield sim.delay(3.0)
            val = yield ev
            return (sim.now, val)

        p = sim.spawn(waiter(sim, ev))
        sim.run()
        assert p.result == (3.0, "early")

    def test_cancelled_event_never_fires(self, sim):
        ev = sim.event()
        fired = []
        ev.add_callback(lambda e: fired.append(e.value))
        ev.cancel()
        ev._complete(value="late")
        assert fired == []


class TestCombinators:
    def test_all_of_waits_for_slowest(self, sim):
        def proc(sim):
            vals = yield sim.all_of([sim.delay(1.0), sim.delay(5.0), sim.delay(3.0)])
            return (sim.now, vals)

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.result == (5.0, [1.0, 5.0, 3.0])

    def test_all_of_empty(self, sim):
        def proc(sim):
            vals = yield sim.all_of([])
            return vals

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.result == []

    def test_any_of_returns_first(self, sim):
        def proc(sim):
            idx, val = yield sim.any_of([sim.delay(4.0), sim.delay(2.0)])
            return (sim.now, idx, val)

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.result == (2.0, 1, 2.0)

    def test_any_of_cancels_losers(self, sim):
        ev = sim.event()

        def proc(sim, ev):
            idx, _ = yield sim.any_of([ev, sim.delay(1.0)])
            return idx

        p = sim.spawn(proc(sim, ev))
        sim.run()
        assert p.result == 1
        assert ev.cancelled

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            AnyOf(sim, [])

    def test_all_of_fails_fast(self, sim):
        ev = sim.event()

        def proc(sim, ev):
            try:
                yield sim.all_of([ev, sim.delay(100.0)])
            except RuntimeError as e:
                return (sim.now, str(e))

        p = sim.spawn(proc(sim, ev))
        sim.schedule_at(1.0, ev.fail, RuntimeError("bad"))
        sim.run()
        assert p.result == (1.0, "bad")


class TestDelays:
    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError, match="negative"):
            Delay(sim, -1.0)

    def test_reentrant_run_rejected(self, sim):
        def proc(sim):
            sim.run()
            yield sim.delay(1.0)

        p = sim.spawn(proc(sim))
        sim.run()
        assert isinstance(p.exc, SimulationError)
