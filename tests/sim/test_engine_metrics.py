"""Engine self-measurement: tallies exist only while a tracer is armed.

The simulator counts events popped, heap peak, context switches and
costed delay cycles — but only under ``tracer.enabled``, so the untraced
hot path stays tally-free.  Finalize harvests the tallies onto the
tracer (surviving simulator detachment) and publishes them as counter
samples on the meta track.
"""

from repro.obs import names
from repro.obs.session import trace_session
from repro.obs.tracer import META_TRACK
from repro.sim import Simulator
from repro.upc.runtime import UpcProgram


def _app(upc):
    yield from upc.compute(1e-6)
    yield from upc.barrier()


def _traced_run():
    with trace_session("metrics") as sess:
        UpcProgram(threads=4).run(_app)
    (tracer,) = sess.tracers
    return tracer


class TestEngineMetrics:
    def test_untraced_sim_keeps_zero_tallies(self):
        prog = UpcProgram(threads=2)
        prog.run(_app)
        assert all(v == 0 for v in prog.sim.engine_metrics.values())

    def test_traced_run_tallies_everything(self):
        tracer = _traced_run()
        metrics = tracer.engine_metrics
        assert set(metrics) == set(names.ENGINE_METRICS)
        assert metrics[names.ENGINE_EVENTS_POPPED] > 0
        assert metrics[names.ENGINE_HEAP_PEAK] > 0
        assert metrics[names.ENGINE_CONTEXT_SWITCHES] > 0
        assert metrics[names.ENGINE_COSTED_CYCLES] > 0
        # more switches than pops is impossible: every switch is an event
        assert (metrics[names.ENGINE_CONTEXT_SWITCHES]
                <= metrics[names.ENGINE_EVENTS_POPPED])

    def test_metrics_published_as_meta_counters(self):
        tracer = _traced_run()
        samples = {s.name: s.value for s in tracer.samples
                   if s.track == META_TRACK and s.name in names.ENGINE_METRICS}
        assert samples == dict(tracer.engine_metrics)

    def test_metrics_survive_simulator_detach(self):
        tracer = _traced_run()
        tracer.sim = None  # what the parallel executor does before pickling
        assert tracer.engine_metrics[names.ENGINE_EVENTS_POPPED] > 0

    def test_same_seed_same_tallies(self):
        assert _traced_run().engine_metrics == _traced_run().engine_metrics

    def test_bare_simulator_counts_under_tracer(self):
        from repro.obs.tracer import Tracer

        sim = Simulator()
        sim.tracer = Tracer(sim, label="bare")

        def proc():
            yield sim.delay(1e-6)
            yield sim.delay(0.0)   # zero-cost: not a costed cycle

        sim.spawn(proc())
        sim.run()
        sim.tracer.finalize(sim.now)
        metrics = sim.tracer.engine_metrics
        assert metrics[names.ENGINE_COSTED_CYCLES] == 1
        assert metrics[names.ENGINE_EVENTS_POPPED] >= 2
