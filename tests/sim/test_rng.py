"""Unit and property tests for the splittable RNG."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import SplittableRNG, splitmix64


class TestSplitmix64:
    def test_known_sequence_is_deterministic(self):
        s, out1 = splitmix64(0)
        _, out2 = splitmix64(0)
        assert out1 == out2
        assert 0 <= out1 < 2**64
        assert s != 0

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_outputs_in_range(self, state):
        new_state, out = splitmix64(state)
        assert 0 <= new_state < 2**64
        assert 0 <= out < 2**64


@pytest.mark.parametrize("algorithm", ["sha1", "mix"])
class TestSplittableRNG:
    def test_same_seed_same_stream(self, algorithm):
        a = SplittableRNG(seed=7, algorithm=algorithm)
        b = SplittableRNG(seed=7, algorithm=algorithm)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_diverge(self, algorithm):
        a = SplittableRNG(seed=1, algorithm=algorithm)
        b = SplittableRNG(seed=2, algorithm=algorithm)
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_children_deterministic(self, algorithm):
        root = SplittableRNG(seed=3, algorithm=algorithm)
        c1 = root.child(5)
        c2 = SplittableRNG(seed=3, algorithm=algorithm).child(5)
        assert c1.fingerprint() == c2.fingerprint()

    def test_sibling_children_differ(self, algorithm):
        root = SplittableRNG(seed=3, algorithm=algorithm)
        fps = {root.child(i).fingerprint() for i in range(100)}
        assert len(fps) == 100

    def test_child_does_not_mutate_parent(self, algorithm):
        root = SplittableRNG(seed=3, algorithm=algorithm)
        before = root.fingerprint()
        root.child(0)
        assert root.fingerprint() == before

    def test_random_in_unit_interval(self, algorithm):
        rng = SplittableRNG(seed=11, algorithm=algorithm)
        vals = [rng.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in vals)
        # crude uniformity: mean near 0.5
        assert abs(sum(vals) / len(vals) - 0.5) < 0.05

    def test_randint_bounds(self, algorithm):
        rng = SplittableRNG(seed=11, algorithm=algorithm)
        vals = [rng.randint(2, 5) for _ in range(200)]
        assert set(vals) == {2, 3, 4, 5}

    def test_randint_single_point(self, algorithm):
        rng = SplittableRNG(seed=1, algorithm=algorithm)
        assert rng.randint(7, 7) == 7

    def test_randint_empty_range_rejected(self, algorithm):
        rng = SplittableRNG(seed=1, algorithm=algorithm)
        with pytest.raises(ValueError):
            rng.randint(5, 4)

    def test_choice(self, algorithm):
        rng = SplittableRNG(seed=1, algorithm=algorithm)
        seq = ["a", "b", "c"]
        assert rng.choice(seq) in seq
        with pytest.raises(ValueError):
            rng.choice([])

    def test_shuffle_is_permutation(self, algorithm):
        rng = SplittableRNG(seed=9, algorithm=algorithm)
        seq = list(range(50))
        rng.shuffle(seq)
        assert sorted(seq) == list(range(50))
        assert seq != list(range(50))  # astronomically unlikely to be identity


class TestRNGProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        path=st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_tree_path_determinism(self, seed, path):
        """Following the same child path twice yields the same state."""
        a = SplittableRNG(seed=seed)
        b = SplittableRNG(seed=seed)
        for idx in path:
            a = a.child(idx)
            b = b.child(idx)
        assert a.fingerprint() == b.fingerprint()

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_child_independent_of_parent_draws(self, seed):
        """child(i) depends only on the state at split time."""
        a = SplittableRNG(seed=seed)
        fp_before = a.child(3).fingerprint()
        a.random()  # advance parent
        fp_after = a.child(3).fingerprint()
        assert fp_before != fp_after  # state advanced -> child differs

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ValueError):
            SplittableRNG(seed=0, algorithm="xkcd")
