"""Unit tests for Condition and SimBarrier."""

import pytest

from repro.sim import Condition, SimBarrier, Simulator
from repro.sim.engine import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestCondition:
    def test_notify_wakes_all(self, sim):
        cond = Condition(sim)
        woken = []

        def waiter(sim, cond, name):
            val = yield cond.wait()
            woken.append((name, val, sim.now))

        sim.spawn(waiter(sim, cond, "a"))
        sim.spawn(waiter(sim, cond, "b"))
        sim.schedule_at(2.0, cond.notify_all, "ping")
        sim.run()
        assert sorted(woken) == [("a", "ping", 2.0), ("b", "ping", 2.0)]

    def test_notify_returns_count(self, sim):
        cond = Condition(sim)
        cond.wait()
        cond.wait()
        sim.run()
        assert cond.notify_all() == 2
        assert cond.notify_all() == 0

    def test_wait_after_notify_needs_new_notify(self, sim):
        cond = Condition(sim)
        cond.notify_all()
        ev = cond.wait()
        assert not ev.done
        cond.notify_all()
        assert ev.done

    def test_cancelled_waiter_not_counted(self, sim):
        cond = Condition(sim)
        ev = cond.wait()
        ev.cancel()
        assert cond.notify_all() == 0


class TestSimBarrier:
    def test_all_released_together(self, sim):
        bar = SimBarrier(sim, parties=3)
        times = []

        def worker(sim, bar, arrive_at):
            yield sim.delay(arrive_at)
            yield bar.arrive()
            times.append(sim.now)

        for t in (1.0, 2.0, 5.0):
            sim.spawn(worker(sim, bar, t))
        sim.run()
        assert times == [5.0, 5.0, 5.0]
        assert bar.crossings == 1

    def test_reusable_generations(self, sim):
        bar = SimBarrier(sim, parties=2)
        log = []

        def worker(sim, bar, name, pace):
            for i in range(3):
                yield sim.delay(pace)
                gen = yield bar.arrive()
                log.append((name, i, gen))

        sim.spawn(worker(sim, bar, "fast", 1.0))
        sim.spawn(worker(sim, bar, "slow", 2.0))
        sim.run()
        gens = [g for (_, _, g) in log]
        assert gens == [0, 0, 1, 1, 2, 2]

    def test_single_party_never_blocks(self, sim):
        bar = SimBarrier(sim, parties=1)

        def worker(sim, bar):
            yield bar.arrive()
            return sim.now

        p = sim.spawn(worker(sim, bar))
        sim.run()
        assert p.result == 0.0

    def test_wait_time_accumulates(self, sim):
        bar = SimBarrier(sim, parties=2)

        def worker(sim, bar, arrive_at):
            yield sim.delay(arrive_at)
            yield bar.arrive()

        sim.spawn(worker(sim, bar, 0.0))
        sim.spawn(worker(sim, bar, 4.0))
        sim.run()
        assert bar.total_wait_time == pytest.approx(4.0)

    def test_bad_parties_rejected(self, sim):
        with pytest.raises(ValueError):
            SimBarrier(sim, parties=0)

    def test_over_arrival_detected(self, sim):
        bar = SimBarrier(sim, parties=2)
        bar.arrive()
        bar._arrived = 2  # simulate a missed release bug
        with pytest.raises(SimulationError, match="arrivals"):
            bar.arrive()
