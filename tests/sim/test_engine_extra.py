"""Additional engine edge cases: combinators over processes, stores under
simultaneous events, failure bookkeeping."""

import pytest

from repro.sim import AnyOf, ProcessFailure, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestCombinatorsOverProcesses:
    def test_any_of_races_processes(self, sim):
        def fast(sim):
            yield sim.delay(1.0)
            return "fast"

        def slow(sim):
            yield sim.delay(5.0)
            return "slow"

        def boss(sim):
            idx, val = yield sim.any_of([sim.spawn(slow(sim)), sim.spawn(fast(sim))])
            return (idx, val, sim.now)

        p = sim.spawn(boss(sim))
        sim.run()
        assert p.result == (1, "fast", 1.0)

    def test_any_of_losing_process_keeps_running(self, sim):
        """AnyOf cancels its *observation*, not the process itself."""
        finished = []

        def worker(sim, name, dur):
            yield sim.delay(dur)
            finished.append(name)
            return name

        def boss(sim):
            a = sim.spawn(worker(sim, "a", 1.0))
            b = sim.spawn(worker(sim, "b", 3.0))
            yield sim.any_of([a, b])
            return sim.now

        sim.spawn(boss(sim))
        sim.run()
        assert finished == ["a", "b"]  # b still completed at t=3

    def test_all_of_mixed_awaitables(self, sim):
        ev = sim.event()

        def worker(sim):
            yield sim.delay(2.0)
            return "w"

        def boss(sim, ev):
            vals = yield sim.all_of([sim.spawn(worker(sim)), ev, sim.delay(1.0)])
            return vals

        p = sim.spawn(boss(sim, ev))
        sim.schedule_at(0.5, ev.succeed, "e")
        sim.run()
        assert p.result == ["w", "e", 1.0]

    def test_nested_process_failure_chain(self, sim):
        def inner(sim):
            yield sim.delay(1.0)
            raise KeyError("deep")

        def middle(sim):
            yield sim.spawn(inner(sim))

        def outer(sim):
            try:
                yield sim.spawn(middle(sim))
            except ProcessFailure as e:
                # middle failed because inner failed
                assert isinstance(e.__cause__, ProcessFailure)
                return "caught-chain"

        p = sim.spawn(outer(sim))
        sim.run()
        assert p.result == "caught-chain"


class TestStoreOrdering:
    def test_getters_served_fifo(self, sim):
        store = Store(sim)
        got = []

        def getter(sim, store, name):
            item = yield store.get()
            got.append((name, item))

        sim.spawn(getter(sim, store, "first"))
        sim.spawn(getter(sim, store, "second"))
        sim.schedule_at(1.0, store.put, "x")
        sim.schedule_at(2.0, store.put, "y")
        sim.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_interleaved_put_get(self, sim):
        store = Store(sim)

        def producer(sim, store):
            for i in range(5):
                yield sim.delay(1.0)
                store.put(i)

        def consumer(sim, store):
            out = []
            for _ in range(5):
                item = yield store.get()
                out.append(item)
            return out

        sim.spawn(producer(sim, store))
        c = sim.spawn(consumer(sim, store))
        sim.run()
        assert c.result == [0, 1, 2, 3, 4]


class TestFailureBookkeeping:
    def test_multiple_failures_recorded_in_order(self, sim):
        def bad(sim, when, msg):
            yield sim.delay(when)
            raise RuntimeError(msg)

        sim.spawn(bad(sim, 2.0, "second"))
        sim.spawn(bad(sim, 1.0, "first"))
        sim.run()
        assert [str(e) for _p, e in sim.failures] == ["first", "second"]

    def test_failure_hook_invoked(self, sim):
        seen = []
        sim.failure_hook = lambda proc, exc: seen.append(str(exc))

        def bad(sim):
            yield sim.delay(1.0)
            raise ValueError("hooked")

        sim.spawn(bad(sim))
        sim.run()
        assert seen == ["hooked"]
