"""Unit tests for StatsCollector and PhaseTimer."""

import pytest

from repro.sim import Simulator, StatsCollector
from repro.sim.trace import summarize


@pytest.fixture
def sim():
    return Simulator()


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s["n"] == 0 and s["mean"] == 0.0

    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["n"] == 4
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)
        assert s["median"] == pytest.approx(2.5)

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0])["median"] == 2.0


class TestCounters:
    def test_count_and_get(self):
        st = StatsCollector()
        st.count("steals")
        st.count("steals", 4)
        assert st.get_count("steals") == 5
        assert st.get_count("missing") == 0

    def test_add_and_get_sum(self):
        st = StatsCollector()
        st.add("bytes", 100.0)
        st.add("bytes", 50.0)
        assert st.get_sum("bytes") == pytest.approx(150.0)

    def test_record_series(self):
        st = StatsCollector()
        st.record("lat", 1.0)
        st.record("lat", 3.0)
        assert st.get_series("lat") == [1.0, 3.0]
        assert st.summary("lat")["mean"] == pytest.approx(2.0)


class TestTimers:
    def test_timer_accumulates_sim_time(self, sim):
        st = StatsCollector(sim)

        def proc(sim, st):
            st.timer_enter("phase", key=0)
            yield sim.delay(2.0)
            st.timer_exit("phase", key=0)
            yield sim.delay(1.0)
            st.timer_enter("phase", key=0)
            yield sim.delay(3.0)
            st.timer_exit("phase", key=0)

        sim.spawn(proc(sim, st))
        sim.run()
        assert st.timer_total("phase", key=0) == pytest.approx(5.0)

    def test_timer_max_across_keys(self, sim):
        st = StatsCollector(sim)

        def proc(sim, st, key, dur):
            st.timer_enter("p", key=key)
            yield sim.delay(dur)
            st.timer_exit("p", key=key)

        sim.spawn(proc(sim, st, 0, 2.0))
        sim.spawn(proc(sim, st, 1, 7.0))
        sim.run()
        assert st.timer_max("p") == pytest.approx(7.0)
        assert st.timer_total("p", key=Ellipsis) == pytest.approx(9.0)

    def test_phase_timer_helper(self, sim):
        st = StatsCollector(sim)

        def proc(sim, st):
            t = st.phase("fft", key=3).start()
            yield sim.delay(4.0)
            t.stop()

        sim.spawn(proc(sim, st))
        sim.run()
        assert st.timer_total("fft", key=3) == pytest.approx(4.0)

    def test_double_enter_rejected(self, sim):
        st = StatsCollector(sim)
        st.timer_enter("x")
        with pytest.raises(ValueError, match="already open"):
            st.timer_enter("x")

    def test_exit_without_enter_rejected(self, sim):
        st = StatsCollector(sim)
        with pytest.raises(ValueError, match="not opened"):
            st.timer_exit("nope")

    def test_timer_without_sim_rejected(self):
        st = StatsCollector()
        with pytest.raises(ValueError, match="Simulator"):
            st.timer_enter("x")


class TestMerge:
    def test_merge_combines_everything(self, sim):
        a = StatsCollector(sim)
        b = StatsCollector(sim)
        a.count("c", 1)
        b.count("c", 2)
        a.add("s", 1.0)
        b.add("s", 2.0)
        a.record("r", 1.0)
        b.record("r", 2.0)
        b.timers[("t", 0)] = 5.0
        a.merge(b)
        assert a.get_count("c") == 3
        assert a.get_sum("s") == pytest.approx(3.0)
        assert a.get_series("r") == [1.0, 2.0]
        assert a.timer_total("t", key=0) == pytest.approx(5.0)
