"""Satellite tests: stalled-process detection, post-cancel Event rules,
and barrier fail-stop recovery."""

import pytest

from repro.sim import Event, SimBarrier, Simulator, StalledProcessError
from repro.sim.engine import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestEventCompletionAfterCancel:
    """Completing a cancelled event is a documented no-op; completing a
    completed event is an error (S2)."""

    def test_succeed_after_cancel_is_noop(self, sim):
        ev = Event(sim)
        woken = []
        ev.add_callback(woken.append)
        ev.cancel()
        assert ev.succeed(42) is ev  # chains, but wakes nobody
        assert woken == []
        assert not ev.done
        assert ev.cancelled
        assert ev.value is None  # the completion value is discarded

    def test_fail_after_cancel_is_noop(self, sim):
        ev = Event(sim)
        ev.cancel()
        assert ev.fail(RuntimeError("late")) is ev
        assert not ev.done
        assert ev.exc is None

    def test_succeed_after_succeed_raises(self, sim):
        ev = Event(sim).succeed(1)
        with pytest.raises(SimulationError, match="already completed"):
            ev.succeed(2)
        with pytest.raises(SimulationError, match="already completed"):
            ev.fail(RuntimeError())

    def test_cancel_after_complete_is_noop(self, sim):
        ev = Event(sim).succeed(1)
        ev.cancel()
        assert ev.done and not ev.cancelled

    def test_lost_anyof_racer_may_fire_unconditionally(self, sim):
        # the pattern the no-op exists for: a completer that lost an
        # AnyOf race fires without tracking whether anyone still waits
        ev = Event(sim)
        winner = sim.delay(1e-6)
        got = []
        def waiter():
            got.append((yield sim.any_of([winner, ev])))
        sim.spawn(waiter())
        sim.schedule_at(2e-6, lambda: ev.succeed("late"))
        sim.run()
        assert got and got[0][0] == 0  # the delay won; the late succeed is moot
        assert ev.cancelled and not ev.done


class TestStalledProcesses:
    """Quiescence/deadlock detection once the heap drains (S1)."""

    def test_finished_run_has_no_stalled(self, sim):
        def work():
            yield sim.delay(1e-6)
        sim.spawn(work())
        sim.run()
        assert sim.stalled_processes() == []
        sim.raise_failures(check_stalled=True)  # no-op

    def test_orphaned_waiter_is_stalled(self, sim):
        never = Event(sim)
        def waiter():
            yield never
        proc = sim.spawn(waiter(), name="orphan")
        sim.run()
        assert not proc.done
        assert sim.stalled_processes() == [proc]

    def test_raise_failures_reports_stall_when_asked(self, sim):
        def waiter():
            yield Event(sim)
        proc = sim.spawn(waiter(), name="stuck-waiter")
        sim.run()
        sim.raise_failures()  # default: stalls tolerated
        with pytest.raises(StalledProcessError, match="stuck-waiter") as ei:
            sim.raise_failures(check_stalled=True)
        assert ei.value.processes == [proc]

    def test_killed_process_is_not_stalled(self, sim):
        def waiter():
            yield Event(sim)
        proc = sim.spawn(waiter())
        sim.run()
        proc.kill()
        assert sim.stalled_processes() == []

    def test_unhandled_failure_reported_before_stall(self, sim):
        def boom():
            yield sim.delay(0.0)
            raise ValueError("bug")
        def waiter():
            yield Event(sim)
        sim.spawn(boom())
        sim.spawn(waiter())
        sim.run()
        with pytest.raises(Exception, match="bug"):
            sim.raise_failures(check_stalled=True)

    def test_forgive_failure_clears_supervised_crash(self, sim):
        def boom():
            yield sim.delay(0.0)
            raise ValueError("supervised")
        proc = sim.spawn(boom())
        sim.run()
        assert sim.failures
        sim.forgive_failure(proc)
        assert not sim.failures
        sim.raise_failures(check_stalled=True)

    def test_error_message_caps_listed_names(self, sim):
        procs = []
        for i in range(12):
            def waiter():
                yield Event(sim)
            procs.append(sim.spawn(waiter(), name=f"w{i}"))
        sim.run()
        err = StalledProcessError(sim.stalled_processes())
        assert "12 stalled" in str(err)
        assert "+4 more" in str(err)


class TestBarrierFailStop:
    """drop_party: a crashed participant must not strand barrier waiters."""

    def test_drop_missing_party_releases_waiters(self, sim):
        bar = SimBarrier(sim, parties=3)
        crossed = []
        def member(i):
            yield bar.arrive(party=i)
            crossed.append(i)
        sim.spawn(member(0))
        sim.spawn(member(1))  # party 2 never arrives: it is dead
        sim.schedule_at(1.0, bar.drop_party, 2)
        sim.run()
        assert sorted(crossed) == [0, 1]
        assert bar.parties == 2

    def test_drop_arrived_party_withdraws_its_arrival(self, sim):
        bar = SimBarrier(sim, parties=3)
        crossed = []
        def member(i):
            yield bar.arrive(party=i)
            crossed.append(i)
        dead = sim.spawn(member(0))  # arrives, then dies while blocked
        def crash():
            dead.kill()  # fail-stop order: kill the process...
            bar.drop_party(0)  # ...then withdraw its barrier seat
        sim.schedule_at(1.0, crash)
        sim.run()
        assert crossed == []  # 0's arrival was withdrawn with it
        # the two survivors now complete a generation on their own
        sim.spawn(member(1))
        sim.spawn(member(2))
        sim.run()
        assert sorted(crossed) == [1, 2]

    def test_next_generation_uses_reduced_parties(self, sim):
        bar = SimBarrier(sim, parties=3)
        bar.drop_party(2)
        crossed = []
        def member(i):
            for _ in range(2):  # two generations back to back
                yield bar.arrive(party=i)
            crossed.append(i)
        sim.spawn(member(0))
        sim.spawn(member(1))
        sim.run()
        assert sorted(crossed) == [0, 1]
        assert bar.generation == 2

    def test_cannot_drop_last_party(self, sim):
        bar = SimBarrier(sim, parties=1)
        with pytest.raises(SimulationError, match="last party"):
            bar.drop_party(0)

    def test_killing_one_waiter_does_not_strand_the_others(self, sim):
        # regression: waiters used to share the release event, so one
        # kill cancelled the generation for everyone still blocked
        bar = SimBarrier(sim, parties=3)
        crossed = []
        def member(i):
            yield bar.arrive(party=i)
            crossed.append(i)
        victim = sim.spawn(member(0))
        sim.spawn(member(1))
        def crash():
            victim.kill()
            bar.drop_party(0)
        sim.schedule_at(1.0, crash)
        def late_member():
            yield sim.delay(2.0)
            yield bar.arrive(party=2)
            crossed.append(2)
        sim.spawn(late_member())
        sim.run()
        assert sorted(crossed) == [1, 2]
