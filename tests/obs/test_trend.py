"""Cross-revision trend tracking: ordering, crossings, bisect hints, CLI."""

import json

import pytest

from repro.obs import names
from repro.obs.analytics import canonical_dumps
from repro.obs.analytics.__main__ import main as analytics_main
from repro.obs.analytics.trend import load_trend_points, trend_report


def _bench(rev, generated, normalized, wall_s=1.0, events=1000):
    return {
        "schema": 1, "rev": rev, "generated": generated,
        "calibration": {"ops_per_s": 1.0},
        "experiments": {"t3_1": {"events": events, "wall_s": wall_s,
                                 "events_per_s": events / wall_s,
                                 "normalized": normalized}},
    }


def _summary(experiment="t3_1", elapsed=1.0, events=1000, switches=500,
             fingerprint="d" * 64):
    return {
        "schema": 1,
        "campaign": {"experiment": experiment, "scale": "quick",
                     "fingerprint": fingerprint},
        "points": [{"elapsed_s": elapsed,
                    "engine": {names.ENGINE_EVENTS_POPPED: events,
                               names.ENGINE_CONTEXT_SWITCHES: switches}}],
    }


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestLoading:
    def test_baselines_order_by_generated_then_summaries(self, tmp_path):
        # written out of order on purpose; generated timestamps decide
        newer = _write(tmp_path, "BENCH_bbb.json",
                       _bench("bbb", "2026-02-01T00:00:00Z", 2.0))
        older = _write(tmp_path, "BENCH_aaa.json",
                       _bench("aaa", "2026-01-01T00:00:00Z", 1.0))
        summ = _write(tmp_path, "campaign-summary.json", _summary())
        points = load_trend_points([newer, summ, older])
        assert [p.label for p in points] == ["aaa", "bbb", "t3_1@dddddddddddd"]
        assert [p.kind for p in points] == ["baseline", "baseline", "summary"]

    def test_directory_expands_to_bench_files(self, tmp_path):
        _write(tmp_path, "BENCH_b.json", _bench("b", "2026-02-01", 2.0))
        _write(tmp_path, "BENCH_a.json", _bench("a", "2026-01-01", 1.0))
        points = load_trend_points([str(tmp_path)])
        assert [p.label for p in points] == ["a", "b"]

    def test_campaign_dir_falls_back_to_its_summary(self, tmp_path):
        _write(tmp_path, "campaign-summary.json", _summary())
        (points,) = load_trend_points([str(tmp_path)])
        assert points.kind == "summary"
        assert points.metrics["t3_1 sim_s"] == 1.0
        assert points.metrics["t3_1 engine_events"] == 1000.0

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="no BENCH"):
            load_trend_points([str(tmp_path)])

    def test_unknown_shape_is_an_error(self, tmp_path):
        path = _write(tmp_path, "junk.json", {"neither": 1})
        with pytest.raises(ValueError, match="neither"):
            load_trend_points([path])

    def test_fewer_than_two_points_is_an_error(self, tmp_path):
        path = _write(tmp_path, "BENCH_a.json", _bench("a", "t", 1.0))
        with pytest.raises(ValueError, match="at least 2"):
            trend_report([path])


class TestCrossings:
    def _three(self, tmp_path, normalized):
        return [_write(tmp_path, f"BENCH_{i}.json",
                       _bench(f"r{i}", f"2026-0{i + 1}-01", value))
                for i, value in enumerate(normalized)]

    def test_steady_trend_is_clean(self, tmp_path):
        report = trend_report(self._three(tmp_path, (1.0, 0.95, 1.05)),
                              rel=0.2)
        assert report.ok
        assert report.crossings == []

    def test_throughput_drop_names_first_bad_revision(self, tmp_path):
        # normalized is higher-better: r1 drops 40% below the reference
        report = trend_report(self._three(tmp_path, (1.0, 0.6, 0.5)), rel=0.2)
        assert not report.ok
        (crossing,) = [c for c in report.crossings
                       if c.metric == "t3_1 normalized"]
        assert crossing.first_bad == "r1"
        assert crossing.latest_crossed
        rendered = report.render()
        assert "REGRESSED" in rendered and "r1" in rendered

    def test_recovered_dip_is_history_not_regression(self, tmp_path):
        report = trend_report(self._three(tmp_path, (1.0, 0.5, 0.98)), rel=0.2)
        assert report.ok  # latest point is back within threshold
        (crossing,) = [c for c in report.crossings
                       if c.metric == "t3_1 normalized"]
        assert crossing.first_bad == "r1"
        assert not crossing.latest_crossed
        assert "recovered" in report.render()

    def test_lower_better_metric_flags_on_increase(self, tmp_path):
        paths = [
            _write(tmp_path, "BENCH_a.json",
                   _bench("a", "2026-01-01", 1.0, wall_s=1.0)),
            _write(tmp_path, "BENCH_b.json",
                   _bench("b", "2026-02-01", 1.0, wall_s=2.0)),
        ]
        report = trend_report(paths, rel=0.2)
        crossed = {c.metric for c in report.crossings if c.latest_crossed}
        assert "t3_1 wall_s" in crossed

    def test_zero_reference_guard(self, tmp_path):
        # events 0 -> 100 (lower-better): flags; normalized 0 -> 1
        # (higher-better): never flags, there is nothing to drop from
        paths = [
            _write(tmp_path, "BENCH_a.json",
                   _bench("a", "2026-01-01", 0.0, events=0)),
            _write(tmp_path, "BENCH_b.json",
                   _bench("b", "2026-02-01", 1.0, events=100)),
        ]
        report = trend_report(paths, rel=0.2)
        crossed = {c.metric for c in report.crossings}
        assert "t3_1 events" in crossed
        assert "t3_1 normalized" not in crossed

    def test_mixed_baselines_and_summary_share_no_metrics(self, tmp_path):
        # disjoint metric names: each series needs >= 2 anchored values,
        # so nothing crosses and the table shows '-' holes
        paths = self._three(tmp_path, (1.0, 1.0, 1.0))[:2]
        paths.append(_write(tmp_path, "campaign-summary.json", _summary()))
        report = trend_report(paths, rel=0.2)
        assert report.ok
        assert "-" in report.render()


class TestCli:
    def _pair(self, tmp_path, second_normalized):
        _write(tmp_path, "BENCH_a.json", _bench("a", "2026-01-01", 1.0))
        _write(tmp_path, "BENCH_b.json",
               _bench("b", "2026-02-01", second_normalized))
        return str(tmp_path)

    def test_trend_renders_table(self, tmp_path, capsys):
        root = self._pair(tmp_path, 1.0)
        assert analytics_main(["trend", root]) == 0
        out = capsys.readouterr().out
        assert "perf trend across 2 point(s): a -> b" in out
        assert "t3_1 normalized" in out and "CLEAN" in out

    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        root = self._pair(tmp_path, 0.4)
        assert analytics_main(["trend", root]) == 0  # report-only
        assert analytics_main(["trend", root, "--check"]) == 1
        assert "first bad revision(s): b" in capsys.readouterr().out

    def test_rel_loosens_the_gate(self, tmp_path):
        root = self._pair(tmp_path, 0.6)
        assert analytics_main(["trend", root, "--check", "--rel", "0.2"]) == 1
        assert analytics_main(["trend", root, "--check", "--rel", "0.5"]) == 0

    def test_json_output_is_canonical(self, tmp_path, capsys):
        root = self._pair(tmp_path, 1.0)
        assert analytics_main(["trend", root, "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["ok"] is True
        assert out == canonical_dumps(doc)

    def test_bad_input_is_a_clean_error(self, tmp_path, capsys):
        assert analytics_main(["trend", str(tmp_path / "nope.json"),
                               str(tmp_path / "nope2.json")]) == 2
        assert "error:" in capsys.readouterr().err
