"""Unit tests for the span/instant/counter recorder."""

import pytest

from repro.obs import names
from repro.obs.tracer import (
    META_TRACK,
    NULL_TRACER,
    NullTracer,
    Tracer,
    link_track,
    thread_track,
)
from repro.sim import Simulator


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_all_hooks_are_noops(self):
        n = NullTracer()
        assert n.begin(thread_track(0), "x") == -1
        n.end(-1)
        n.instant(META_TRACK, "i")
        n.counter(link_track("l"), "c", 1.0)
        n.comm(0, 1, 8.0)
        n.declare_track(thread_track(0))
        n.process_spawned(None)
        n.process_blocked(None, None)
        n.process_resumed(None)
        n.process_killed(None)
        n.process_failed(None, ValueError())
        n.quiescence([])
        n.finalize(1.0)


class TestTracer:
    def _tracer(self):
        sim = Simulator()
        return sim, Tracer(sim, label="t", run_index=1)

    def test_span_records_interval(self):
        sim, tr = self._tracer()
        sid = tr.begin(thread_track(0), "work", names.CAT_COMPUTE)
        sim.schedule_at(2.5, lambda: None)
        sim.run()
        tr.end(sid)
        (span,) = tr.spans
        assert span.t0 == 0.0 and span.t1 == 2.5
        assert span.duration == 2.5
        assert span.category == names.CAT_COMPUTE

    def test_double_end_raises(self):
        _, tr = self._tracer()
        sid = tr.begin(thread_track(0), "work")
        tr.end(sid)
        with pytest.raises(ValueError, match="already ended"):
            tr.end(sid)

    def test_end_after_finalize_is_tolerated(self):
        # Generators torn down after the run re-run their finally
        # clauses; their end() must not raise on finalize-closed spans.
        _, tr = self._tracer()
        sid = tr.begin(thread_track(0), "work")
        tr.finalize(5.0)
        tr.end(sid)
        assert tr.spans[0].t1 == 5.0

    def test_end_merges_args(self):
        _, tr = self._tracer()
        sid = tr.begin(thread_track(0), "b", args={"a": 1})
        tr.end(sid, args={"releaser": 3})
        assert tr.spans[0].args == {"a": 1, "releaser": 3}

    def test_finalize_closes_open_spans(self):
        _, tr = self._tracer()
        open_sid = tr.begin(thread_track(0), "open")
        closed_sid = tr.begin(thread_track(0), "closed")
        tr.end(closed_sid)
        tr.finalize(7.0)
        assert tr.spans[open_sid].t1 == 7.0
        assert tr.spans[closed_sid].t1 == 0.0
        assert tr.end_time == 7.0

    def test_tracks_keep_declaration_order(self):
        _, tr = self._tracer()
        tr.declare_track(thread_track(1))
        tr.declare_track(link_track("nic.tx0"))
        tr.declare_track(thread_track(0))
        assert list(tr.tracks) == [
            thread_track(1), link_track("nic.tx0"), thread_track(0)
        ]
        assert tr.thread_tracks() == [thread_track(1), thread_track(0)]
        assert tr.link_tracks() == [link_track("nic.tx0")]

    def test_comm_matrix_sorted_and_accumulated(self):
        _, tr = self._tracer()
        tr.comm(1, 0, 10.0)
        tr.comm(0, 1, 100.0)
        tr.comm(0, 1, 24.0)
        assert tr.comm_matrix() == [
            {"src_node": 0, "dst_node": 1, "messages": 2, "bytes": 124.0},
            {"src_node": 1, "dst_node": 0, "messages": 1, "bytes": 10.0},
        ]

    def test_engine_hooks_fire(self):
        sim = Simulator()
        tr = Tracer(sim, label="t")
        sim.tracer = tr

        def child():
            yield sim.delay(1.0)

        def parent():
            p = sim.spawn(child())
            yield p

        sim.spawn(parent())
        sim.run()
        assert tr.hook_counts["spawned"] == 2
        assert tr.hook_counts["blocked"] >= 1
        assert tr.hook_counts["resumed"] >= 1

    def test_kill_emits_fault_instant(self):
        sim = Simulator()
        tr = Tracer(sim, label="t")
        sim.tracer = tr

        def forever():
            yield sim.delay(100.0)

        p = sim.spawn(forever(), name="victim")
        sim.schedule_at(1.0, p.kill)
        sim.run()
        assert tr.hook_counts["killed"] == 1
        kills = [i for i in tr.instants if i.name == "kill victim"]
        assert len(kills) == 1
        assert kills[0].category == names.CAT_FAULT
