"""Campaign analytics: summaries, diff verdicts, scaling checks.

Unit-level coverage of :mod:`repro.obs.analytics` — real traced runs
feed the summarizer; the diff and check engines are also exercised on
synthetic summaries where the expected verdict is known by construction.
"""

import copy
import json

import pytest

from repro.obs import names
from repro.obs.analytics import (
    SCHEMA_VERSION,
    canonical_dumps,
    check_summary,
    diff_summaries,
    find_campaign_dirs,
    load_summary,
    merge_campaign,
    point_summary,
    summarize_campaign_dir,
    summarize_tracers,
    write_campaign,
)
from repro.obs.analytics.__main__ import main as analytics_main
from repro.obs.session import trace_session
from repro.upc.runtime import UpcProgram


def _app(upc):
    yield from upc.compute(1e-6)
    yield from upc.memput((upc.MYTHREAD + 1) % upc.THREADS, 1 << 14)
    yield from upc.barrier()


def _tracers(threads=4):
    with trace_session("test") as sess:
        UpcProgram(threads=threads).run(_app)
    return list(sess.tracers)


def _point(index=0, threads=4, elapsed=None, app="uts", **spec_extra):
    """A synthetic point summary with a known shape."""
    point = {
        "schema": SCHEMA_VERSION, "index": index, "app": app,
        "fingerprint": f"f{index:063x}",
        "spec": {"app": app, "threads": threads, "scale": "quick",
                 "extras": {}, **spec_extra},
        "runs": 1,
        "elapsed_s": elapsed if elapsed is not None else 1.0 / threads,
        "breakdown": {"categories": {names.CAT_COMPUTE: 0.8,
                                     names.CAT_NETWORK: 0.2},
                      "total_seconds": 1.0},
        "phases": {"search": {"count": 1, "seconds": 0.5}},
        "comm": [{"src_node": 0, "dst_node": 1,
                  "messages": 100, "bytes": 4096.0}],
        "links": [{"link": "nic.tx0", "busy_seconds": 0.1,
                   "utilization": 0.1}],
        "barriers": {"waits": 4, "wait_seconds": 0.05,
                     "max_wait_seconds": 0.02,
                     "by_name": {"barrier": {"count": 4, "seconds": 0.05}}},
        "steals": {"count": 2, "seconds": 0.01},
        "engine": {names.ENGINE_EVENTS_POPPED: 1000,
                   names.ENGINE_HEAP_PEAK: 40,
                   names.ENGINE_CONTEXT_SWITCHES: 500,
                   names.ENGINE_COSTED_CYCLES: 300},
    }
    return point


def _summary(points, experiment="f3_3"):
    header = {"fingerprint": "a" * 64, "experiment": experiment,
              "scale": "quick", "points": len(points), "version": "0"}
    return merge_campaign(header, points)


class TestSummarizeTracers:
    def test_covers_every_section(self):
        summary = summarize_tracers(_tracers())
        assert summary["runs"] == 1
        assert summary["elapsed_s"] > 0
        assert set(summary["breakdown"]["categories"]) == set(
            names.BREAKDOWN_CATEGORIES)
        assert summary["comm"], "inter-node puts must land in the matrix"
        assert summary["links"], "NIC pipes must report busy time"
        assert summary["barriers"]["waits"] > 0
        assert summary["engine"][names.ENGINE_EVENTS_POPPED] > 0
        assert summary["engine"]["spans"] > 0

    def test_breakdown_consistent_with_elapsed(self):
        summary = summarize_tracers(_tracers())
        parts = sum(summary["breakdown"]["categories"].values())
        assert parts == pytest.approx(summary["elapsed_s"], rel=0.01)

    def test_deterministic_across_runs(self):
        a = canonical_dumps(summarize_tracers(_tracers()))
        b = canonical_dumps(summarize_tracers(_tracers()))
        assert a == b


class TestCampaignArtifacts:
    def _write(self, root):
        points = [point_summary(i, {"app": "uts",
                                    "fingerprint": f"f{i:063x}",
                                    "spec": {"app": "uts"}},
                                _tracers())
                  for i in range(2)]
        header = {"fingerprint": "b" * 64, "experiment": "t3_1",
                  "scale": "quick", "points": 2, "version": "0"}
        return write_campaign(root, header, points)

    def test_layout_and_roundtrip(self, tmp_path):
        directory = self._write(tmp_path)
        assert directory == tmp_path / ("b" * 16)
        assert (directory / "campaign.json").exists()
        assert len(list((directory / "points").glob("*.json"))) == 2
        summary = load_summary(directory)
        assert summary["schema"] == SCHEMA_VERSION
        assert len(summary["points"]) == 2
        assert summary["totals"]["runs"] == 2

    def test_resummarize_is_byte_identical(self, tmp_path):
        directory = self._write(tmp_path)
        first = (directory / "campaign-summary.json").read_bytes()
        summarize_campaign_dir(directory)
        assert (directory / "campaign-summary.json").read_bytes() == first

    def test_find_campaign_dirs(self, tmp_path):
        directory = self._write(tmp_path)
        assert find_campaign_dirs(tmp_path) == [directory]
        assert find_campaign_dirs(directory) == [directory]
        assert find_campaign_dirs(tmp_path / "nope") == []

    def test_load_summary_rejects_other_schema(self, tmp_path):
        directory = self._write(tmp_path)
        path = directory / "campaign-summary.json"
        doc = json.loads(path.read_text())
        doc["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            load_summary(path)

    def test_load_summary_missing_is_helpful(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="summarize"):
            load_summary(tmp_path)


class TestDiff:
    def test_self_diff_clean(self):
        summary = _summary([_point(0), _point(1, threads=8)])
        report = diff_summaries(summary, copy.deepcopy(summary))
        assert report.ok
        assert report.deltas == []
        assert report.compared > 0

    def test_localizes_regressed_phase(self):
        base = _summary([_point(0), _point(1, threads=8)])
        worse = copy.deepcopy(base)
        worse["points"][1]["phases"]["search"]["seconds"] = 0.9
        report = diff_summaries(base, worse)
        assert not report.ok
        assert [(d.point, d.metric) for d in report.regressions] == [
            (1, "phase 'search'")]

    def test_small_changes_below_floor_ignored(self):
        base = _summary([_point(0)])
        near = copy.deepcopy(base)
        near["points"][0]["phases"]["search"]["seconds"] += 1e-6
        assert diff_summaries(base, near).ok

    def test_improvement_is_not_a_regression(self):
        base = _summary([_point(0)])
        better = copy.deepcopy(base)
        better["points"][0]["elapsed_s"] *= 0.5
        report = diff_summaries(base, better)
        assert report.ok
        assert [d.metric for d in report.improvements] == ["time"]

    def test_count_metric_uses_absolute_floor(self):
        base = _summary([_point(0)])
        worse = copy.deepcopy(base)
        worse["points"][0]["engine"][names.ENGINE_EVENTS_POPPED] += 10
        assert diff_summaries(base, worse).ok  # +10 < count floor
        worse["points"][0]["engine"][names.ENGINE_EVENTS_POPPED] += 500
        report = diff_summaries(base, worse)
        assert [d.metric for d in report.regressions] == ["engine events"]

    def test_zero_baseline_seconds_does_not_autoflag_noise(self):
        # elapsed 0 on both sides degenerates the share floor to 0; the
        # absolute fallback must still swallow sub-floor noise on a
        # metric whose baseline is exactly 0.
        base = _summary([_point(0, elapsed=0.0)])
        base["points"][0]["phases"]["search"]["seconds"] = 0.0
        near = copy.deepcopy(base)
        near["points"][0]["phases"]["search"]["seconds"] = 0.005
        assert diff_summaries(base, near).ok

    def test_zero_baseline_flags_only_above_floor(self):
        # 0 -> 0.5s is a real regression ("new" cost), not a divide-by-
        # zero crash or a silently skipped cell.
        base = _summary([_point(0)])
        base["points"][0]["phases"]["search"]["seconds"] = 0.0
        worse = copy.deepcopy(base)
        worse["points"][0]["phases"]["search"]["seconds"] = 0.5
        report = diff_summaries(base, worse)
        assert [d.metric for d in report.regressions] == ["phase 'search'"]
        assert "new" in report.regressions[0].render()

    def test_metric_collapsing_to_zero_is_improvement(self):
        # the opposite direction: X -> 0 is an improvement, never an error
        base = _summary([_point(0)])
        gone = copy.deepcopy(base)
        gone["points"][0]["phases"]["search"]["seconds"] = 0.0
        report = diff_summaries(base, gone)
        assert report.ok
        assert [d.metric for d in report.improvements] == ["phase 'search'"]

    def test_structural_mismatch_is_an_error(self):
        a = _summary([_point(0)], experiment="t3_1")
        b = _summary([_point(0)], experiment="f3_3")
        report = diff_summaries(a, b)
        assert not report.ok
        assert any("experiments differ" in e for e in report.errors)

    def test_render_names_the_verdict(self):
        summary = _summary([_point(0)])
        assert "CLEAN" in diff_summaries(summary, summary).render()
        worse = copy.deepcopy(summary)
        worse["points"][0]["elapsed_s"] *= 10
        assert "REGRESSED" in diff_summaries(summary, worse).render()


class TestCheck:
    def test_healthy_scaling_is_ok(self):
        # halving time per doubling: monotone speedup, gentle efficiency
        points = [_point(i, threads=t, elapsed=1.0 / t ** 0.8)
                  for i, t in enumerate((4, 8, 16))]
        report = check_summary(_summary(points))
        assert report.ok
        assert len(report.series) == 1

    def test_non_monotone_speedup_flagged(self):
        points = [_point(0, threads=4, elapsed=1.0),
                  _point(1, threads=8, elapsed=0.5),
                  _point(2, threads=16, elapsed=0.8)]   # slower again
        report = check_summary(_summary(points))
        assert [a.kind for a in report.anomalies] == ["non-monotone-speedup"]
        assert report.anomalies[0].threads_after == 16

    def test_efficiency_cliff_flagged(self):
        # 4->8 scales well (eff 0.91); 8->16 collapses: speedup 1.82 ->
        # 1.43 (within rel_tol=0.5) but efficiency 0.91 -> 0.36 < 0.4x.
        points = [_point(0, threads=4, elapsed=1.0),
                  _point(1, threads=8, elapsed=0.55),
                  _point(2, threads=16, elapsed=0.70)]
        report = check_summary(_summary(points), rel_tol=0.5)
        assert [a.kind for a in report.anomalies] == ["efficiency-cliff"]

    def test_short_series_skipped_not_silent(self):
        points = [_point(0, threads=4), _point(1, threads=8)]
        report = check_summary(_summary(points))
        assert report.ok
        assert report.skipped

    def test_distinct_configs_make_distinct_series(self):
        points = ([_point(i, threads=t, policy="local")
                   for i, t in enumerate((4, 8, 16))]
                  + [_point(i + 3, threads=t, policy="baseline")
                     for i, t in enumerate((4, 8, 16))])
        report = check_summary(_summary(points))
        assert len(report.series) == 2
        assert len({s["key"] for s in report.series}) == 2


class TestCli:
    def _campaign(self, tmp_path, points):
        header = {"fingerprint": "c" * 64, "experiment": "f3_3",
                  "scale": "quick", "points": len(points), "version": "0"}
        return write_campaign(tmp_path, header, points)

    def test_summarize_diff_check_roundtrip(self, tmp_path, capsys):
        directory = self._campaign(
            tmp_path, [_point(i, threads=t, elapsed=1.0 / t)
                       for i, t in enumerate((4, 8, 16))])
        assert analytics_main(["summarize", str(tmp_path)]) == 0
        assert analytics_main(["diff", str(directory), str(directory)]) == 0
        assert analytics_main(["check", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "CLEAN" in out and "OK" in out

    def test_diff_exits_nonzero_on_regression(self, tmp_path, capsys):
        base = self._campaign(tmp_path / "a", [_point(0)])
        worse_points = [_point(0, elapsed=10.0)]
        worse = self._campaign(tmp_path / "b", worse_points)
        assert analytics_main(["diff", str(base), str(worse)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_json_output_is_canonical(self, tmp_path, capsys):
        directory = self._campaign(tmp_path, [_point(0)])
        assert analytics_main(
            ["diff", str(directory), str(directory), "--json"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["ok"] is True
        assert out == canonical_dumps(json.loads(out))

    def test_missing_summary_is_a_clean_error(self, tmp_path, capsys):
        assert analytics_main(["summarize", str(tmp_path / "nope")]) == 2
        assert analytics_main(["check", str(tmp_path / "nope")]) == 2
