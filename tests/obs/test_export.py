"""Unit tests for the Chrome trace-event exporter."""

import json

from repro.obs import names
from repro.obs.export import (
    _assign_lanes,
    chrome_trace_events,
    dump_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import Span, Tracer, link_track, thread_track
from repro.obs.validate import validate_document
from repro.sim import Simulator


def _span(t0, t1, seq, name="s"):
    s = Span(thread_track(0), name, names.CAT_COMPUTE, t0, seq)
    s.t1 = t1
    return s


class TestAssignLanes:
    def test_disjoint_spans_share_lane_zero(self):
        spans = [_span(0, 1, 1), _span(2, 3, 2), _span(4, 5, 3)]
        assert _assign_lanes(spans) == [0, 0, 0]

    def test_nested_spans_share_a_lane(self):
        spans = [_span(0, 10, 1), _span(2, 5, 2), _span(6, 8, 3)]
        assert _assign_lanes(spans) == [0, 0, 0]

    def test_partial_overlap_opens_new_lane(self):
        spans = [_span(0, 4, 1), _span(2, 6, 2)]
        assert _assign_lanes(spans) == [0, 1]

    def test_lane_reuse_after_drain(self):
        spans = [_span(0, 4, 1), _span(2, 6, 2), _span(5, 7, 3)]
        # Third span starts after the first ends: lane 0 is free again.
        assert _assign_lanes(spans) == [0, 1, 0]

    def test_deterministic_regardless_of_emission_order(self):
        a = [_span(0, 4, 1), _span(2, 6, 2)]
        b = [a[1], a[0]]
        la, lb = _assign_lanes(a), _assign_lanes(b)
        assert [la[0], la[1]] == [lb[1], lb[0]]


class TestChromeExport:
    def _tracer(self):
        sim = Simulator()
        tr = Tracer(sim, label="prog", run_index=1)
        sim.tracer = tr
        return sim, tr

    def test_events_validate_and_roundtrip(self):
        sim, tr = self._tracer()
        tr.declare_track(thread_track(0))
        sid = tr.begin(thread_track(0), "work", names.CAT_COMPUTE)
        tr.end(sid)
        tr.instant(thread_track(0), "mark", names.CAT_FAULT)
        tr.counter(link_track("nic.tx0"), "inflight", 2)
        tr.finalize(1e-3)
        doc = json.loads(dump_chrome_trace([tr]))
        assert validate_document(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_process_and_thread_metadata(self):
        _, tr = self._tracer()
        tr.declare_track(thread_track(0))
        tr.declare_track(thread_track(1))
        events = chrome_trace_events([tr])
        meta = [e for e in events if e["ph"] == "M"]
        names_ = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names_ == {"thread 0", "thread 1"}
        procs = [e for e in meta if e["name"] == "process_name"]
        assert procs == [{"ph": "M", "pid": 1, "name": "process_name",
                          "args": {"name": "prog"}}]

    def test_overflow_lane_gets_tilde_name(self):
        sim, tr = self._tracer()
        a = tr.begin(thread_track(0), "a")
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        b = tr.begin(thread_track(0), "b")  # overlaps a: t0=1
        tr.spans[a].t1 = 2.0
        tr.spans[b].t1 = 3.0
        events = chrome_trace_events([tr])
        lane_names = [e["args"]["name"] for e in events
                      if e["ph"] == "M" and e["name"] == "thread_name"]
        assert lane_names == ["thread 0", "thread 0 ~2"]
        xs = {e["name"]: e["tid"] for e in events if e["ph"] == "X"}
        assert xs["a"] != xs["b"]

    def test_times_scaled_to_microseconds(self):
        sim, tr = self._tracer()
        sid = tr.begin(thread_track(0), "w")
        sim.schedule_at(2e-6, lambda: None)
        sim.run()
        tr.end(sid)
        (x,) = [e for e in chrome_trace_events([tr]) if e["ph"] == "X"]
        assert x["ts"] == 0.0
        assert x["dur"] == 2.0

    def test_dump_is_byte_deterministic(self):
        def build():
            sim = Simulator()
            tr = Tracer(sim, label="p", run_index=1)
            tr.begin(thread_track(0), "w", args={"b": 1, "a": 2})
            tr.comm(0, 1, 8)
            tr.finalize(1.0)
            return tr

        assert dump_chrome_trace([build()]) == dump_chrome_trace([build()])

    def test_write_chrome_trace(self, tmp_path):
        _, tr = self._tracer()
        tr.begin(thread_track(0), "w")
        tr.finalize(1.0)
        path = tmp_path / "t.json"
        write_chrome_trace(str(path), [tr])
        doc = json.loads(path.read_text())
        assert validate_document(doc) == []

    def test_multiple_tracers_get_distinct_pids(self):
        tracers = []
        for i in (1, 2):
            sim = Simulator()
            tr = Tracer(sim, label=f"run{i}", run_index=i)
            tr.begin(thread_track(0), "w")
            tr.finalize(1.0)
            tracers.append(tr)
        pids = {e["pid"] for e in chrome_trace_events(tracers)}
        assert pids == {1, 2}
