"""Unit tests for critical-path attribution and derived reports."""

import pytest

from repro.obs import names
from repro.obs.critical_path import (
    _timeline,
    _union_length,
    attribute_run,
    breakdown_rows,
    comm_matrix_rows,
    link_utilization_rows,
)
from repro.obs.tracer import Span, Tracer, link_track, thread_track
from repro.sim import Simulator


def _tracer(run_index=1):
    return Tracer(Simulator(), label="t", run_index=run_index)


def _add_span(tr, track, name, cat, t0, t1, args=None):
    s = Span(track, name, cat, t0, len(tr.spans) + 1, args)
    s.t1 = t1
    tr.spans.append(s)
    tr._ensure_track(track)
    return s


class TestTimeline:
    def test_empty_is_all_compute(self):
        (seg,) = _timeline([], 10.0)
        assert (seg.t0, seg.t1, seg.category) == (0.0, 10.0, names.CAT_COMPUTE)

    def test_partitions_exactly(self):
        tr = _tracer()
        _add_span(tr, thread_track(0), "x", names.CAT_NETWORK, 2.0, 5.0)
        segs = _timeline(tr.spans, 10.0)
        assert segs[0].t0 == 0.0 and segs[-1].t1 == 10.0
        for a, b in zip(segs, segs[1:]):
            assert a.t1 == b.t0
        cats = [(s.t0, s.t1, s.category) for s in segs]
        assert cats == [
            (0.0, 2.0, names.CAT_COMPUTE),
            (2.0, 5.0, names.CAT_NETWORK),
            (5.0, 10.0, names.CAT_COMPUTE),
        ]

    def test_priority_steal_over_network(self):
        tr = _tracer()
        _add_span(tr, thread_track(0), "n", names.CAT_NETWORK, 0.0, 10.0)
        _add_span(tr, thread_track(0), "s", names.CAT_STEAL, 4.0, 6.0)
        segs = _timeline(tr.spans, 10.0)
        assert [s.category for s in segs] == [
            names.CAT_NETWORK, names.CAT_STEAL, names.CAT_NETWORK
        ]

    def test_phase_and_lock_spans_transparent(self):
        tr = _tracer()
        _add_span(tr, thread_track(0), "p", names.CAT_PHASE, 0.0, 10.0)
        _add_span(tr, thread_track(0), "l", names.CAT_LOCK, 2.0, 4.0)
        (seg,) = _timeline(tr.spans, 10.0)
        assert seg.category == names.CAT_COMPUTE

    def test_barrier_releaser_from_innermost(self):
        tr = _tracer()
        _add_span(tr, thread_track(0), "b", names.CAT_BARRIER, 1.0, 9.0,
                  args={"releaser": 2})
        segs = _timeline(tr.spans, 10.0)
        barrier = [s for s in segs if s.category == names.CAT_BARRIER]
        assert [s.releaser for s in barrier] == [2]


class TestAttributeRun:
    def test_no_threads_all_compute(self):
        tr = _tracer()
        tr.finalize(4.0)
        totals = attribute_run(tr)
        assert totals[names.CAT_COMPUTE] == 4.0

    def test_single_thread_partition_sums_to_total(self):
        tr = _tracer()
        tr.declare_track(thread_track(0))
        _add_span(tr, thread_track(0), "n", names.CAT_NETWORK, 1.0, 3.0)
        _add_span(tr, thread_track(0), "s", names.CAT_STEAL, 5.0, 6.0)
        tr.finalize(10.0)
        totals = attribute_run(tr)
        assert totals[names.CAT_NETWORK] == pytest.approx(2.0)
        assert totals[names.CAT_STEAL] == pytest.approx(1.0)
        assert sum(totals.values()) == pytest.approx(10.0)

    def test_barrier_wait_charged_to_straggler(self):
        # Thread 0 waits in a barrier [2,8] released by thread 1, which
        # was doing network until t=8.  The walk must charge [2,8] to
        # network (the straggler's activity), not barrier.
        tr = _tracer()
        tr.declare_track(thread_track(0))
        tr.declare_track(thread_track(1))
        _add_span(tr, thread_track(0), "bar", names.CAT_BARRIER, 2.0, 8.0,
                  args={"releaser": 1})
        _add_span(tr, thread_track(1), "net", names.CAT_NETWORK, 2.0, 8.0)
        tr.finalize(8.0)
        totals = attribute_run(tr)
        assert totals[names.CAT_NETWORK] == pytest.approx(6.0)
        assert totals[names.CAT_BARRIER] == pytest.approx(0.0)
        assert sum(totals.values()) == pytest.approx(8.0)

    def test_barrier_without_releaser_stays_barrier(self):
        tr = _tracer()
        tr.declare_track(thread_track(0))
        _add_span(tr, thread_track(0), "bar", names.CAT_BARRIER, 2.0, 8.0)
        tr.finalize(8.0)
        totals = attribute_run(tr)
        assert totals[names.CAT_BARRIER] == pytest.approx(6.0)

    def test_mutual_barrier_cycle_terminates(self):
        # Two threads each in a barrier naming the other as releaser at
        # the same instant: the visited guard must break the cycle.
        tr = _tracer()
        tr.declare_track(thread_track(0))
        tr.declare_track(thread_track(1))
        _add_span(tr, thread_track(0), "b0", names.CAT_BARRIER, 0.0, 5.0,
                  args={"releaser": 1})
        _add_span(tr, thread_track(1), "b1", names.CAT_BARRIER, 0.0, 5.0,
                  args={"releaser": 0})
        tr.finalize(5.0)
        totals = attribute_run(tr)
        assert sum(totals.values()) == pytest.approx(5.0)


class TestReports:
    def test_breakdown_rows_sum_and_share(self):
        tr = _tracer()
        tr.declare_track(thread_track(0))
        _add_span(tr, thread_track(0), "n", names.CAT_NETWORK, 0.0, 4.0)
        tr.finalize(10.0)
        rows = breakdown_rows([tr])
        by_cat = {r["category"]: r for r in rows}
        assert by_cat["total"]["seconds"] == pytest.approx(10.0)
        parts = sum(r["seconds"] for r in rows if r["category"] != "total")
        assert parts == pytest.approx(10.0)
        assert by_cat["network"]["share"] == pytest.approx(0.4)

    def test_breakdown_rows_empty(self):
        rows = breakdown_rows([])
        assert all(r["seconds"] == 0.0 for r in rows)

    def test_comm_matrix_rows_merge_runs(self):
        a, b = _tracer(1), _tracer(2)
        a.comm(0, 1, 10)
        b.comm(0, 1, 5)
        b.comm(2, 0, 7)
        rows = comm_matrix_rows([a, b])
        assert rows == [
            {"src_node": 0, "dst_node": 1, "messages": 2, "bytes": 15.0},
            {"src_node": 2, "dst_node": 0, "messages": 1, "bytes": 7.0},
        ]

    def test_union_length_merges_overlaps(self):
        assert _union_length([(0, 2), (1, 3), (5, 6)]) == pytest.approx(4.0)

    def test_link_utilization(self):
        tr = _tracer()
        _add_span(tr, link_track("nic.tx0"), "x", names.CAT_NETWORK, 0.0, 2.0)
        _add_span(tr, link_track("nic.tx0"), "x", names.CAT_NETWORK, 1.0, 3.0)
        tr.finalize(10.0)
        (row,) = link_utilization_rows([tr])
        assert row["link"] == "nic.tx0"
        assert row["busy_seconds"] == pytest.approx(3.0)
        assert row["utilization"] == pytest.approx(0.3)
