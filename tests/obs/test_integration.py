"""End-to-end tracing of simulated programs and the leak-proofing
satellites (open phase timers must be loud, not silently lost)."""

import json

import pytest

from repro.errors import UpcError
from repro.obs import names
from repro.obs.critical_path import attribute_run, breakdown_rows
from repro.obs.export import dump_chrome_trace
from repro.obs.session import trace_session
from repro.obs.validate import validate_document
from repro.sim import Simulator, StatsCollector
from repro.upc.runtime import UpcProgram


def _app(upc):
    yield from upc.compute(1e-6)
    yield from upc.memput((upc.MYTHREAD + 1) % upc.THREADS, 1 << 16)
    yield from upc.barrier()
    if upc.MYTHREAD == 0:
        lock = upc.lock("tally")
        yield from lock.acquire(upc)
        yield from upc.compute(5e-7)
        yield from lock.release(upc)
    yield from upc.barrier()


def _traced_run(threads=4):
    with trace_session("test") as sess:
        UpcProgram(threads=threads).run(_app)
    (tracer,) = sess.tracers
    return tracer


class TestTracedUpcRun:
    def test_thread_and_link_tracks_present(self):
        tracer = _traced_run()
        assert len(tracer.thread_tracks()) == 4
        assert tracer.link_tracks()  # NIC pipes declared by the fabric

    def test_span_categories_cover_the_stack(self):
        tracer = _traced_run()
        cats = {s.category for s in tracer.spans}
        assert names.CAT_NETWORK in cats
        assert names.CAT_BARRIER in cats
        assert names.CAT_LOCK in cats

    def test_barrier_spans_carry_releaser(self):
        tracer = _traced_run()
        barriers = [s for s in tracer.spans
                    if s.category == names.CAT_BARRIER and s.args]
        assert barriers
        assert all("releaser" in s.args for s in barriers)

    def test_all_spans_closed(self):
        tracer = _traced_run()
        assert all(s.t1 is not None for s in tracer.spans)

    def test_comm_matrix_populated(self):
        tracer = _traced_run()
        # Only inter-node puts traverse the fabric (same-node neighbours
        # use the shared-memory bypass), so 2 of the 4 ring puts appear.
        total = sum(r["bytes"] for r in tracer.comm_matrix())
        assert total >= 2 * (1 << 16)
        assert tracer.comm_matrix()

    def test_same_seed_traces_byte_identical(self):
        a = dump_chrome_trace([_traced_run()])
        b = dump_chrome_trace([_traced_run()])
        assert a == b
        assert validate_document(json.loads(a)) == []

    def test_breakdown_sums_within_one_percent(self):
        tracer = _traced_run()
        totals = attribute_run(tracer)
        assert sum(totals.values()) == pytest.approx(
            tracer.end_time, rel=0.01
        )
        rows = breakdown_rows([tracer])
        total_row = [r for r in rows if r["category"] == "total"][0]
        parts = sum(r["seconds"] for r in rows if r["category"] != "total")
        assert parts == pytest.approx(total_row["seconds"], rel=0.01)

    def test_untraced_run_attaches_null_tracer(self):
        prog = UpcProgram(threads=2)
        assert prog.sim.tracer.enabled is False
        prog.run(_app)  # still runs clean


class TestOpenTimerLeaks:
    """Satellites: dead processes must not silently lose phase time."""

    def _sim_stats(self):
        sim = Simulator()
        return sim, StatsCollector(sim)

    def test_open_timers_listed(self):
        sim, st = self._sim_stats()

        def proc():
            st.timer_enter("fft", key=0)
            yield sim.delay(1.0)
            st.timer_exit("fft", key=0)

        sim.spawn(proc())
        assert st.open_timers() == []
        sim.run(until=0.5)
        assert st.open_timers() == [("fft", 0)]
        sim.run()
        assert st.open_timers() == []

    def test_snapshot_raises_on_open_timer(self):
        sim, st = self._sim_stats()
        st.timer_enter("fft", key=1)
        with pytest.raises(ValueError, match="in-flight phase timers"):
            st.snapshot()
        st.timer_exit("fft", key=1)
        assert st.snapshot()  # clean afterwards

    def test_merge_rejects_open_timers(self):
        sim, a = self._sim_stats()
        b = StatsCollector(sim)
        b.timer_enter("fft", key=2)
        with pytest.raises(ValueError, match=r"fft.*2"):
            a.merge(b)
        b.timer_exit("fft", key=2)
        a.merge(b)  # clean afterwards

    def test_killed_phase_fails_loud_at_end_of_run(self):
        # A thread dies mid-phase: the run must raise instead of
        # silently dropping the phase's elapsed time.
        def app(upc):
            if upc.MYTHREAD == 0:
                upc.stats.timer_enter("doomed", key=0)
                yield from upc.compute(1.0)  # killed before this ends
                upc.stats.timer_exit("doomed", key=0)
            else:
                yield from upc.compute(1e-6)

        prog = UpcProgram(threads=2)
        prog.sim.schedule_at(
            5e-7, lambda: prog._thread_procs[0].kill()
        )
        with pytest.raises(UpcError, match="phase timers still open"):
            prog.run(app)
