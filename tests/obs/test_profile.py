"""The engine profiling subsystem: sites, both profilers, reports, CLI.

The determinism contracts under test are the ones DESIGN.md §13 promises:
host-profile *call counts* and cost-profile *tallies* are pure functions
of the simulation, so identical programs yield identical rankings (host)
and identical bytes (cost); wall nanoseconds are auxiliary and jitter.
"""

import json

import pytest

from repro.obs import names
from repro.obs.analytics import canonical_dumps
from repro.obs.profile import (
    KNOWN_SITES,
    NO_PHASE,
    NULL_PROFILER,
    PROFILE_SCHEMA,
    SITE_OTHER,
    CostProfiler,
    cost_document,
    folded_lines,
    host_document,
    merge_snapshots,
    profile_session,
    profiler_for,
    site_for_callable,
    site_for_code,
    validate_profile,
    write_profiles,
)
from repro.obs.profile.__main__ import main as profile_main
from repro.obs.profile.session import active_profile_session
from repro.sim.engine import Simulator
from repro.upc.runtime import UpcProgram


def _app(upc):
    timer = upc.stats.phase("work", key=upc.MYTHREAD).start()
    yield from upc.compute(1e-6)
    yield from upc.memput((upc.MYTHREAD + 1) % upc.THREADS, 1 << 14)
    timer.stop()
    yield from upc.barrier()


def _run_profiled(threads=4):
    with profile_session("test") as session:
        UpcProgram(threads=threads).run(_app)
        return session.snapshot()


class TestSites:
    def test_engine_functions_split_by_name(self):
        assert site_for_code(Simulator.schedule_at.__code__) == "engine.heap.push"
        assert site_for_code(Simulator.run.__code__) == "engine.run"

    def test_layer_rules_match_path_fragments(self):
        code = compile("pass", "/x/src/repro/gasnet/core.py", "exec")
        assert site_for_code(code) == "gasnet"
        code = compile("pass", "/x/src/repro/apps/randomaccess/bench.py", "exec")
        assert site_for_code(code) == "app.gups"

    def test_stdlib_and_synthetic_frames_transparent(self):
        assert site_for_code(json.dumps.__code__) is None
        assert site_for_code(compile("pass", "<string>", "exec")) is None

    def test_callable_fallback_never_none(self):
        assert site_for_callable(len) == SITE_OTHER
        assert site_for_callable(json.dumps) == SITE_OTHER
        sched = Simulator().schedule_at
        assert site_for_callable(sched) == "engine.heap.push"

    def test_every_resolvable_site_is_known(self):
        assert SITE_OTHER in KNOWN_SITES
        assert list(KNOWN_SITES) == sorted(set(KNOWN_SITES))

    def test_resolution_is_cached_and_stable(self):
        code = Simulator.schedule_at.__code__
        assert site_for_code(code) is site_for_code(code)


class TestCostProfiler:
    def test_phase_bucketing(self):
        prof = CostProfiler()
        assert prof.current_phase == NO_PHASE
        prof.phase_started("warm")
        prof.event_scheduled(lambda: None, costed=True)
        prof.phase_ended("warm")
        prof.event_scheduled(lambda: None, costed=False)
        # the test file is outside repro/, so attribution falls through
        # the stack walk to the callback's own site: host.other
        assert prof.tallies[("warm", SITE_OTHER)] == [1, 1, 0]
        assert prof.tallies[(NO_PHASE, SITE_OTHER)] == [1, 0, 0]

    def test_interleaved_phase_ends_remove_matching_entry(self):
        prof = CostProfiler()
        prof.phase_started("a")
        prof.phase_started("b")
        prof.phase_ended("a")   # parallel threads end out of order
        assert prof.current_phase == "b"
        prof.phase_ended("b")
        assert prof.current_phase == NO_PHASE

    def test_context_switch_attributes_to_generator(self):
        prof = CostProfiler()

        class FakeProcess:
            gen = _app(None)

        prof.context_switch(FakeProcess())
        assert prof.tallies[(NO_PHASE, SITE_OTHER)] == [0, 0, 1]

    def test_null_profiler_is_inert(self):
        assert not NULL_PROFILER.enabled
        NULL_PROFILER.event_scheduled(None, True)
        NULL_PROFILER.context_switch(None)
        NULL_PROFILER.phase_started("x")
        NULL_PROFILER.phase_ended("x")


class TestEndToEndDeterminism:
    def test_cost_snapshot_byte_identical_across_runs(self):
        _run_profiled()  # warmup: settle lazy imports
        a = _run_profiled()
        b = _run_profiled()
        assert canonical_dumps(a["cost"]) == canonical_dumps(b["cost"])
        assert a["cost"], "a real run must charge cost tallies"

    def test_cost_sites_and_phases_are_curated(self):
        snap = _run_profiled()
        phases = {row[0] for row in snap["cost"]}
        sites = {row[1] for row in snap["cost"]}
        assert "work" in phases, "the app's phase timer must bucket work"
        assert sites <= set(KNOWN_SITES)
        assert "upc" in sites

    def test_host_call_counts_reproduce_across_runs(self):
        _run_profiled()  # warmup
        a = _run_profiled()
        b = _run_profiled()
        calls_a = [(tuple(row[0]), row[1]) for row in a["host"]]
        calls_b = [(tuple(row[0]), row[1]) for row in b["host"]]
        assert calls_a == calls_b
        assert any(calls for _, calls in calls_a)

    def test_host_paths_are_site_paths(self):
        snap = _run_profiled()
        for row in snap["host"]:
            assert all(site in KNOWN_SITES for site in row[0])


class TestSession:
    def test_profiler_for_null_outside_session(self):
        assert active_profile_session() is None
        assert profiler_for(Simulator()) is NULL_PROFILER

    def test_profiler_for_shared_inside_session(self):
        with profile_session("s") as session:
            assert active_profile_session() is session
            assert profiler_for(Simulator()) is session.cost
        assert active_profile_session() is None

    def test_sessions_do_not_nest(self):
        with profile_session("outer"):
            with pytest.raises(RuntimeError, match="already active"):
                with profile_session("inner"):
                    pass

    def test_constructed_program_attaches_session_profiler(self):
        with profile_session("s") as session:
            program = UpcProgram(threads=2)
            assert program.sim.profiler is session.cost
        assert UpcProgram(threads=2).sim.profiler is NULL_PROFILER


class TestReport:
    def _snap(self, phase="work", site="upc", events=3, cycles=2, switches=1,
              host_path=("upc",), calls=10, wall_ns=5000):
        return {"host": [[list(host_path), calls, wall_ns]],
                "cost": [[phase, site, events, cycles, switches]]}

    def test_merge_skips_none_and_sums(self):
        host, cost, runs = merge_snapshots(
            [self._snap(), None, self._snap(cycles=5)])
        assert runs == 2
        assert host[("upc",)] == [20, 10000]
        assert cost[("work", "upc")] == [6, 7, 2]

    def test_empty_host_path_renders_as_other(self):
        doc = host_document("x", {(): [0, 123]}, runs=1)
        assert doc["stacks"][0]["stack"] == [SITE_OTHER]
        assert validate_profile(doc) == []

    def test_top_ranks_by_deterministic_weight(self):
        host, cost, runs = merge_snapshots(
            [self._snap(), self._snap(site="fabric", cycles=9,
                                      host_path=("upc", "fabric"), calls=99)])
        hdoc = host_document("x", host, runs)
        assert hdoc["top"][0] == ["fabric", 99]
        cdoc = cost_document("x", cost, runs)
        assert cdoc["top"][0] == ["fabric", 9]

    def test_folded_lines_host_and_cost(self):
        host, cost, runs = merge_snapshots([self._snap()])
        hdoc = host_document("x", host, runs)
        assert folded_lines(hdoc) == ["upc 10"]
        cdoc = cost_document("x", cost, runs)
        assert folded_lines(cdoc) == [
            "cycles;work;upc 2", "events;work;upc 3", "switches;work;upc 1"]

    def test_folded_skips_zero_weights(self):
        host, cost, runs = merge_snapshots(
            [self._snap(events=0, cycles=0, switches=0, calls=0)])
        assert folded_lines(host_document("x", host, runs)) == []
        assert folded_lines(cost_document("x", cost, runs)) == []

    def test_validate_catches_each_defect(self):
        host, cost, runs = merge_snapshots([self._snap()])
        good = cost_document("x", cost, runs)
        assert validate_profile(good) == []
        assert validate_profile("nope") == ["document is not an object"]
        bad = dict(good, schema=PROFILE_SCHEMA + 1)
        assert any("schema" in p for p in validate_profile(bad))
        bad = dict(good, mode="wat")
        assert any("mode" in p for p in validate_profile(bad))
        bad = json.loads(canonical_dumps(good))
        bad["phases"][0]["site"] = "made.up"
        assert any("unknown site" in p for p in validate_profile(bad))
        bad = json.loads(canonical_dumps(good))
        bad["phases"][0][names.PROF_COST_CYCLES] = -1
        assert any(names.PROF_COST_CYCLES in p for p in validate_profile(bad))
        bad = json.loads(canonical_dumps(good))
        bad["top"] = [["made.up", 1]]
        assert any("top[0]" in p for p in validate_profile(bad))

    def test_write_profiles_emits_canonical_pairs(self, tmp_path):
        written = write_profiles(tmp_path, "lbl", [self._snap(), None])
        assert [p.name for p in written] == [
            "lbl-host.json", "lbl-host.folded",
            "lbl-cost.json", "lbl-cost.folded"]
        for path in written:
            if path.suffix == ".json":
                doc = json.loads(path.read_text())
                assert validate_profile(doc) == []
                assert doc["runs"] == 1
                assert path.read_text() == canonical_dumps(doc)


class TestCli:
    def _write(self, tmp_path):
        return write_profiles(
            tmp_path, "x",
            [{"host": [[["upc"], 10, 5000]],
              "cost": [["work", "upc", 3, 2, 1]]}])

    def test_validate_ok(self, tmp_path, capsys):
        written = self._write(tmp_path)
        jsons = [str(p) for p in written if p.suffix == ".json"]
        assert profile_main(["validate"] + jsons) == 0
        out = capsys.readouterr().out
        assert out.count(": ok (") == 2

    def test_validate_rejects_bad_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 1, "mode": "wat"}')
        assert profile_main(["validate", str(bad)]) == 2
        assert "mode" in capsys.readouterr().out

    def test_top_is_ranked_and_diffable(self, tmp_path, capsys):
        written = self._write(tmp_path)
        cost_json = next(str(p) for p in written if p.name == "x-cost.json")
        assert profile_main(["top", cost_json, "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# x [cost] runs=1 weight=cycles")
        assert "  1  upc" in out

    def test_top_on_invalid_doc_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99}')
        assert profile_main(["top", str(bad)]) == 2
