"""Unit tests for trace-session scoping."""

import pytest

from repro.obs.session import active_session, trace_session, tracer_for
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim import Simulator


class TestTracerFor:
    def test_null_without_session(self):
        assert active_session() is None
        assert tracer_for(Simulator(), label="x") is NULL_TRACER

    def test_real_tracer_inside_session(self):
        with trace_session("s") as sess:
            tr = tracer_for(Simulator(), label="x")
            assert isinstance(tr, Tracer) and tr.enabled
            assert sess.tracers == [tr]
        assert active_session() is None

    def test_run_indices_sequential(self):
        with trace_session("s") as sess:
            a = tracer_for(Simulator(), label="a")
            b = tracer_for(Simulator(), label="b")
        assert (a.run_index, b.run_index) == (1, 2)
        assert [t.label for t in sess.tracers] == ["a", "b"]

    def test_nesting_rejected(self):
        with trace_session("outer"):
            with pytest.raises(RuntimeError):
                with trace_session("inner"):
                    pass

    def test_session_cleared_after_error(self):
        with pytest.raises(KeyError):
            with trace_session("s"):
                raise KeyError("boom")
        assert active_session() is None
        assert tracer_for(Simulator(), label="x") is NULL_TRACER
