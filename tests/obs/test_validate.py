"""Unit tests for the trace-event schema validator."""

from repro.obs.validate import validate_document, validate_events


def _x(**kw):
    ev = {"ph": "X", "name": "w", "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 1}
    ev.update(kw)
    return ev


class TestValidateEvents:
    def test_valid_minimal(self):
        events = [
            {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "p"}},
            _x(),
            {"ph": "i", "name": "mark", "ts": 0.0, "pid": 1, "s": "t"},
            {"ph": "C", "name": "c", "ts": 0.0, "pid": 1, "args": {"value": 2}},
        ]
        assert validate_events(events) == []

    def test_not_a_list(self):
        assert validate_events({"ph": "X"})

    def test_empty(self):
        assert validate_events([])

    def test_unknown_phase(self):
        assert any("ph" in p for p in validate_events([_x(ph="Q")]))

    def test_missing_required_field(self):
        ev = _x()
        del ev["dur"]
        assert validate_events([ev])

    def test_negative_duration(self):
        assert validate_events([_x(dur=-1.0)])

    def test_non_numeric_ts(self):
        assert validate_events([_x(ts="zero")])

    def test_problem_list_truncated(self):
        events = [_x(dur=-1.0) for _ in range(200)]
        assert len(validate_events(events)) <= 52


class TestValidateDocument:
    def test_document_shape(self):
        assert validate_document({"traceEvents": [_x()]}) == []
        assert validate_document([_x()])  # bare list is not a document
        assert validate_document({"events": []})

    def test_problems_propagate(self):
        assert validate_document({"traceEvents": [_x(dur=-1)]})
